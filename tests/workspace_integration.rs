//! Cross-crate integration tests: the full pipeline from graph
//! generation through the MapReduce runtime to flow validation, exercised
//! through the facade crate's public API only.

use ffmr::prelude::*;
use ffmr::{ffmr_core, maxflow, swgraph};

#[test]
fn full_pipeline_generation_to_validated_flow() {
    // Generate → attach terminals → FFMR → extract → validate → min-cut.
    let n = 600;
    let edges = swgraph::gen::barabasi_albert(n, 3, 21);
    let net = FlowNetwork::from_undirected_unit(n, &edges);
    let st = swgraph::super_st::attach_super_terminals(&net, 6, 3, 5).unwrap();

    let mut rt = MrRuntime::new(ClusterConfig::paper_cluster(20));
    let config = FfConfig::new(st.source, st.sink).variant(FfVariant::ff5());
    let run = ffmr_core::run_max_flow(&mut rt, &st.network, &config).unwrap();

    let extracted = ffmr_core::verify::extract_flow(
        rt.dfs(),
        &run.final_graph_path,
        &run.pending_deltas,
        &st.network,
    )
    .unwrap();
    let result = FlowResult {
        value: extracted.value_from(&st.network, st.source),
        flows: extracted.flows.clone(),
    };
    maxflow::validate::check_flow(&st.network, st.source, st.sink, &result).unwrap();

    let oracle = maxflow::dinic::max_flow(&st.network, st.source, st.sink);
    assert_eq!(run.max_flow_value, oracle.value);

    let cut = maxflow::min_cut::extract_min_cut(&st.network, st.source, &oracle);
    assert_eq!(cut.value, oracle.value, "max-flow = min-cut end to end");
}

#[test]
fn edge_list_io_round_trips_through_ffmr() {
    // Serialize a graph to the text interchange format, read it back, and
    // confirm the flow is unchanged.
    let edges = swgraph::gen::watts_strogatz(120, 4, 0.2, 9);
    let net = FlowNetwork::from_undirected_unit(120, &edges);
    let mut text = Vec::new();
    swgraph::io::write_edge_list(&net, &mut text).unwrap();
    let reparsed = swgraph::io::read_edge_list(text.as_slice())
        .unwrap()
        .build();

    let (s, t) = (VertexId::new(0), VertexId::new(60));
    let before = maxflow::dinic::max_flow(&net, s, t).value;
    let after = maxflow::dinic::max_flow(&reparsed, s, t).value;
    assert_eq!(before, after);

    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    let config = FfConfig::new(s, t).variant(FfVariant::ff3());
    let run = ffmr_core::run_max_flow(&mut rt, &reparsed, &config).unwrap();
    assert_eq!(run.max_flow_value, before);
}

#[test]
fn all_sequential_algorithms_agree_with_ffmr() {
    let edges = swgraph::gen::erdos_renyi(80, 200, 4);
    let net = FlowNetwork::from_undirected_unit(80, &edges);
    let (s, t) = (VertexId::new(0), VertexId::new(79));

    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    let config = FfConfig::new(s, t).variant(FfVariant::ff5());
    let mr_value = ffmr_core::run_max_flow(&mut rt, &net, &config)
        .unwrap()
        .max_flow_value;
    for algo in Algorithm::ALL {
        assert_eq!(algo.run(&net, s, t).value, mr_value, "{algo}");
    }
}

#[test]
fn mr_bfs_matches_in_memory_bfs_through_facade() {
    let edges = swgraph::gen::barabasi_albert(250, 3, 8);
    let net = FlowNetwork::from_undirected_unit(250, &edges);
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    let run = ffmr_core::mr_bfs::run_bfs(&mut rt, &net, VertexId::new(0), "bfs", 4).unwrap();
    let dists = swgraph::bfs::bfs_distances(&net, VertexId::new(0));
    assert_eq!(
        run.eccentricity,
        dists.iter().flatten().copied().max().unwrap() as u64
    );
}

#[test]
fn mr_push_relabel_matches_oracle_through_facade() {
    let edges = swgraph::gen::watts_strogatz(60, 4, 0.3, 2);
    let net = FlowNetwork::from_undirected_unit(60, &edges);
    let (s, t) = (VertexId::new(0), VertexId::new(30));
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    let run =
        ffmr_core::mr_push_relabel::run_push_relabel(&mut rt, &net, s, t, "pr", 2, 10_000).unwrap();
    assert_eq!(
        run.max_flow_value,
        maxflow::dinic::max_flow(&net, s, t).value
    );
}

#[test]
fn chained_flows_on_one_runtime_share_the_dfs() {
    // Two independent max-flow chains on one runtime must not collide.
    let edges = swgraph::gen::barabasi_albert(150, 3, 3);
    let net = FlowNetwork::from_undirected_unit(150, &edges);
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));

    let c1 = FfConfig::new(VertexId::new(0), VertexId::new(100)).base_path("run-a");
    let c2 = FfConfig::new(VertexId::new(5), VertexId::new(90)).base_path("run-b");
    let v1 = ffmr_core::run_max_flow(&mut rt, &net, &c1)
        .unwrap()
        .max_flow_value;
    let v2 = ffmr_core::run_max_flow(&mut rt, &net, &c2)
        .unwrap()
        .max_flow_value;
    assert_eq!(
        v1,
        maxflow::dinic::max_flow(&net, VertexId::new(0), VertexId::new(100)).value
    );
    assert_eq!(
        v2,
        maxflow::dinic::max_flow(&net, VertexId::new(5), VertexId::new(90)).value
    );
    // Both chains' final outputs coexist.
    assert!(rt.dfs().list().iter().any(|p| p.starts_with("run-a/")));
    assert!(rt.dfs().list().iter().any(|p| p.starts_with("run-b/")));
}

#[test]
fn simulated_time_accumulates_across_jobs() {
    let edges = swgraph::gen::barabasi_albert(100, 3, 6);
    let net = FlowNetwork::from_undirected_unit(100, &edges);
    let mut rt = MrRuntime::new(ClusterConfig::paper_cluster(10));
    assert_eq!(rt.total_sim_seconds(), 0.0);
    let config = FfConfig::new(VertexId::new(0), VertexId::new(99));
    let run = ffmr_core::run_max_flow(&mut rt, &net, &config).unwrap();
    assert!(rt.total_sim_seconds() >= run.total_sim_seconds * 0.99);
}

#[test]
fn mr_algorithm_suite_through_facade() {
    // The full substrate family on one graph: components, HADI diameter,
    // Boruvka MST — each validated against its in-memory oracle.
    let n = 250u64;
    let edges = swgraph::gen::rmat(8, 900, 0.57, 0.19, 0.19, 0.05, 12);
    let edges: Vec<(u64, u64)> = edges.into_iter().filter(|&(u, v)| u < n && v < n).collect();
    let net = FlowNetwork::from_undirected_unit(n, &edges);

    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    let cc = ffmr_core::mr_components::run_components(&mut rt, &net, "cc", 4).unwrap();
    let isolated = (0..n)
        .filter(|&v| net.degree(VertexId::new(v)) == 0)
        .count();
    assert_eq!(
        cc.component_count + isolated,
        swgraph::props::component_sizes(&net).len()
    );

    let hadi = ffmr_core::mr_hadi::run_hadi(&mut rt, &net, "hadi", 4).unwrap();
    assert!(hadi.effective_diameter >= 1);

    let weights: Vec<i64> = (0..net.num_edge_pairs() as i64)
        .map(|i| 1 + i * 31 % 997)
        .collect();
    let mst = ffmr_core::mr_mst::run_mst(&mut rt, &net, &weights, "mst", 4).unwrap();
    let oracle_edges: Vec<(u64, u64, i64)> = (0..net.num_edge_pairs())
        .map(|p| {
            let e = EdgeId::new(2 * p as u64);
            (net.tail(e).raw(), net.head(e).raw(), weights[p])
        })
        .collect();
    assert_eq!(mst.forest, swgraph::mst::kruskal(n, &oracle_edges));
}
