//! Distributed-mode acceptance tests: real `ffmr worker` OS processes
//! executing every map/reduce task over localhost TCP.
//!
//! The headline cross-check: a distributed run must be *byte-identical*
//! to the deterministic in-process run (`worker_threads = Some(1)`) —
//! same flow value, same per-round path counts, same final vertex-record
//! bytes — even though tasks execute in other processes in whatever
//! order the workers get to them. The driver replays worker-captured
//! service calls in task order, which pins the remaining nondeterminism.
//!
//! Plus the failure drill from the issue: `kill -9` one worker mid-job
//! and the run must still complete correctly via the retry path.

use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ffmr::prelude::*;
use ffmr::{ffmr_core, ffmr_worker, maxflow, swgraph};

fn test_network(n: u64, w: usize, seed: u64) -> (FlowNetwork, VertexId, VertexId) {
    let edges = swgraph::gen::barabasi_albert(n, 3, seed);
    let net = FlowNetwork::from_undirected_unit(n, &edges);
    let st = swgraph::super_st::attach_super_terminals(&net, w, 3, 1).expect("terminals");
    (st.network, st.source, st.sink)
}

/// A run's determinism fingerprint: flow value, per-round progress, the
/// final vertex-record bytes, and the still-pending deltas.
fn fingerprint(rt: &MrRuntime, run: &ffmr_core::FfRun) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(format!("value={}\n", run.max_flow_value).as_bytes());
    for r in &run.rounds {
        out.extend_from_slice(
            format!(
                "round={} a_paths={} gained={} map_out={} shuffle={}\n",
                r.round, r.a_paths, r.value_gained, r.map_out_records, r.shuffle_bytes
            )
            .as_bytes(),
        );
    }
    let file = rt.dfs().file(&run.final_graph_path).expect("final graph");
    for p in &file.partitions {
        out.extend_from_slice(&p.data);
    }
    out.extend_from_slice(&run.pending_deltas.to_blob());
    out
}

fn spawn_worker_process(addr: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_ffmr"))
        .args(["worker", "--connect", addr])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ffmr worker")
}

struct WorkerFleet {
    coordinator: Option<ffmr_worker::Coordinator>,
    children: Vec<Child>,
}

impl WorkerFleet {
    fn start(n: usize) -> Self {
        let coordinator =
            ffmr_worker::Coordinator::start(ffmr_worker::CoordinatorConfig::default())
                .expect("start coordinator");
        let addr = coordinator.local_addr().to_string();
        let children: Vec<Child> = (0..n).map(|_| spawn_worker_process(&addr)).collect();
        assert!(
            coordinator.wait_for_workers(n, Duration::from_secs(30)),
            "worker processes did not register"
        );
        Self {
            coordinator: Some(coordinator),
            children,
        }
    }

    fn coordinator(&self) -> &ffmr_worker::Coordinator {
        self.coordinator.as_ref().expect("fleet running")
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        if let Some(coordinator) = self.coordinator.take() {
            coordinator.shutdown();
        }
        for child in &mut self.children {
            // Workers exit on the coordinator's shutdown answer; reap
            // them (kill first in case one is wedged).
            let _ = child.wait();
        }
    }
}

#[test]
fn two_worker_processes_match_the_inprocess_fingerprint() {
    let (net, s, t) = test_network(250, 2, 11);
    let config = FfConfig::new(s, t).variant(FfVariant::ff5()).reducers(6);

    // Baseline: the deterministic serial in-process run.
    let mut rt_base = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt_base.set_worker_threads(Some(1));
    let run_base = ffmr_core::run_max_flow(&mut rt_base, &net, &config).expect("baseline run");
    let base_print = fingerprint(&rt_base, &run_base);

    // Distributed: two real worker processes, parallel dispatch.
    let fleet = WorkerFleet::start(2);
    let mut rt_dist = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt_dist.set_task_executor(Some(fleet.coordinator().executor()));
    let run_dist = ffmr_core::run_max_flow(&mut rt_dist, &net, &config).expect("distributed run");
    let dist_print = fingerprint(&rt_dist, &run_dist);

    assert_eq!(run_base.max_flow_value, run_dist.max_flow_value);
    assert_eq!(
        base_print, dist_print,
        "distributed run diverged from the serial in-process fingerprint"
    );

    // Simulated cost model is computed driver-side from task-reported
    // numbers, so the simulated clock must agree exactly too.
    assert!(
        (run_base.total_sim_seconds - run_dist.total_sim_seconds).abs() < 1e-9,
        "simulated cost diverged: {} vs {}",
        run_base.total_sim_seconds,
        run_dist.total_sim_seconds
    );

    // And the flow itself must be the true maximum.
    let oracle = maxflow::dinic::max_flow(&net, s, t);
    assert_eq!(run_dist.max_flow_value, oracle.value);
}

#[test]
fn kill_nine_mid_job_is_recovered_by_retry() {
    let (net, s, t) = test_network(700, 3, 23);
    let config = FfConfig::new(s, t).variant(FfVariant::ff5()).reducers(6);

    let mut fleet = WorkerFleet::start(2);
    let victim = fleet.children.remove(0);

    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt.set_task_executor(Some(fleet.coordinator().executor()));
    // Worker death fails the in-flight attempt; Hadoop's budget retries.
    rt.set_failure_policy(FailurePolicy::hadoop_default());

    // SIGKILL the victim shortly into the run, from another thread —
    // the driver never gets a chance to say goodbye on its behalf.
    let killer = std::thread::spawn(move || {
        let mut victim = victim;
        std::thread::sleep(Duration::from_millis(50));
        victim.kill().expect("kill -9 the worker");
        victim.wait().expect("reap the victim");
    });

    let run = ffmr_core::run_max_flow(&mut rt, &net, &config).expect("run survives the kill");
    killer.join().expect("killer thread");

    assert_eq!(
        fleet.coordinator().worker_deaths(),
        1,
        "the killed worker must be declared dead"
    );
    assert_eq!(fleet.coordinator().live_workers(), 1);

    let oracle = maxflow::dinic::max_flow(&net, s, t);
    assert_eq!(
        run.max_flow_value, oracle.value,
        "flow wrong after recovery"
    );

    // The fingerprint must still match a clean serial run: retries and
    // the lost worker must leave no trace in the output.
    let print_dist = fingerprint(&rt, &run);
    let mut rt_base = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt_base.set_worker_threads(Some(1));
    let run_base = ffmr_core::run_max_flow(&mut rt_base, &net, &config).expect("baseline");
    assert_eq!(print_dist, fingerprint(&rt_base, &run_base));
}
