//! Distributed-mode acceptance tests: real `ffmr worker` OS processes
//! executing every map/reduce task over localhost TCP.
//!
//! The headline cross-check: a distributed run must be *byte-identical*
//! to the deterministic in-process run (`worker_threads = Some(1)`) —
//! same flow value, same per-round path counts, same final vertex-record
//! bytes — even though tasks execute in other processes in whatever
//! order the workers get to them. The driver replays worker-captured
//! service calls in task order, which pins the remaining nondeterminism.
//!
//! Plus the failure drill from the issue: `kill -9` one worker mid-job
//! and the run must still complete correctly via the retry path.

use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ffmr::prelude::*;
use ffmr::{ffmr_core, ffmr_worker, maxflow, swgraph};

fn test_network(n: u64, w: usize, seed: u64) -> (FlowNetwork, VertexId, VertexId) {
    let edges = swgraph::gen::barabasi_albert(n, 3, seed);
    let net = FlowNetwork::from_undirected_unit(n, &edges);
    let st = swgraph::super_st::attach_super_terminals(&net, w, 3, 1).expect("terminals");
    (st.network, st.source, st.sink)
}

/// A run's determinism fingerprint: flow value, per-round progress, the
/// final vertex-record bytes, and the still-pending deltas.
fn fingerprint(rt: &MrRuntime, run: &ffmr_core::FfRun) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(format!("value={}\n", run.max_flow_value).as_bytes());
    for r in &run.rounds {
        out.extend_from_slice(
            format!(
                "round={} a_paths={} gained={} map_out={} shuffle={}\n",
                r.round, r.a_paths, r.value_gained, r.map_out_records, r.shuffle_bytes
            )
            .as_bytes(),
        );
    }
    let file = rt.dfs().file(&run.final_graph_path).expect("final graph");
    for p in &file.partitions {
        out.extend_from_slice(&p.data);
    }
    out.extend_from_slice(&run.pending_deltas.to_blob());
    out
}

fn spawn_worker_process(addr: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_ffmr"))
        .args(["worker", "--connect", addr])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ffmr worker")
}

struct WorkerFleet {
    coordinator: Option<ffmr_worker::Coordinator>,
    children: Vec<Child>,
}

impl WorkerFleet {
    fn start(n: usize) -> Self {
        let coordinator =
            ffmr_worker::Coordinator::start(ffmr_worker::CoordinatorConfig::default())
                .expect("start coordinator");
        let addr = coordinator.local_addr().to_string();
        let children: Vec<Child> = (0..n).map(|_| spawn_worker_process(&addr)).collect();
        assert!(
            coordinator.wait_for_workers(n, Duration::from_secs(30)),
            "worker processes did not register"
        );
        Self {
            coordinator: Some(coordinator),
            children,
        }
    }

    fn coordinator(&self) -> &ffmr_worker::Coordinator {
        self.coordinator.as_ref().expect("fleet running")
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        if let Some(coordinator) = self.coordinator.take() {
            coordinator.shutdown();
        }
        for child in &mut self.children {
            // Workers exit on the coordinator's shutdown answer; reap
            // them (kill first in case one is wedged).
            let _ = child.wait();
        }
    }
}

#[test]
fn two_worker_processes_match_the_inprocess_fingerprint() {
    let (net, s, t) = test_network(250, 2, 11);
    let config = FfConfig::new(s, t).variant(FfVariant::ff5()).reducers(6);

    // Baseline: the deterministic serial in-process run.
    let mut rt_base = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt_base.set_worker_threads(Some(1));
    let run_base = ffmr_core::run_max_flow(&mut rt_base, &net, &config).expect("baseline run");
    let base_print = fingerprint(&rt_base, &run_base);

    // Distributed: two real worker processes, parallel dispatch.
    let fleet = WorkerFleet::start(2);
    let mut rt_dist = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt_dist.set_task_executor(Some(fleet.coordinator().executor()));
    let run_dist = ffmr_core::run_max_flow(&mut rt_dist, &net, &config).expect("distributed run");
    let dist_print = fingerprint(&rt_dist, &run_dist);

    assert_eq!(run_base.max_flow_value, run_dist.max_flow_value);
    assert_eq!(
        base_print, dist_print,
        "distributed run diverged from the serial in-process fingerprint"
    );

    // Simulated cost model is computed driver-side from task-reported
    // numbers, so the simulated clock must agree exactly too.
    assert!(
        (run_base.total_sim_seconds - run_dist.total_sim_seconds).abs() < 1e-9,
        "simulated cost diverged: {} vs {}",
        run_base.total_sim_seconds,
        run_dist.total_sim_seconds
    );

    // And the flow itself must be the true maximum.
    let oracle = maxflow::dinic::max_flow(&net, s, t);
    assert_eq!(run_dist.max_flow_value, oracle.value);
}

/// The merged flight recorder must be complete and must not perturb the
/// computation: with telemetry on, a `--workers 2` run yields (a) a
/// round history whose dispatch notes cover every map/reduce attempt
/// exactly once with real worker attribution, (b) per-worker
/// clock-aligned windows consistent with sequential execution, and (c)
/// flow output byte-identical to the serial in-process baseline.
#[test]
fn merged_flight_recorder_is_complete_and_does_not_perturb_the_run() {
    use std::collections::HashMap;

    let (net, s, t) = test_network(250, 2, 17);
    let config = FfConfig::new(s, t).variant(FfVariant::ff5()).reducers(6);

    // Telemetry fully on: flight recorder + per-dispatch notes. The
    // recorder is process-global; this test reads history out of its
    // own runtime's DFS, so parallel tests sharing the ring don't leak
    // into the assertions.
    ffmr::ffmr_obs::events::recorder().set_enabled(true);

    let fleet = WorkerFleet::start(2);
    let mut rt_dist = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt_dist.set_task_executor(Some(fleet.coordinator().executor()));
    let run_dist = ffmr_core::run_max_flow(&mut rt_dist, &net, &config).expect("distributed run");
    let dist_print = fingerprint(&rt_dist, &run_dist);

    // (c) Byte-identical to the serial baseline, recorder still on.
    let mut rt_base = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt_base.set_worker_threads(Some(1));
    let run_base = ffmr_core::run_max_flow(&mut rt_base, &net, &config).expect("baseline run");
    assert_eq!(
        dist_print,
        fingerprint(&rt_base, &run_base),
        "telemetry must not perturb the distributed output"
    );

    // (a) + (b): parse the history blob the distributed run persisted.
    let history = rt_dist
        .dfs()
        .read_blob(&ffmr_core::history_path(&config.base_path))
        .expect("history blob");
    let text = String::from_utf8(history.to_vec()).expect("history is utf-8");
    let profiles: Vec<ffmr::ffmr_obs::RoundProfile> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| ffmr::ffmr_obs::RoundProfile::from_json(l).expect("parse profile"))
        .collect();
    assert!(!profiles.is_empty(), "no round profiles recorded");

    // Round 0's graph-prep job uses closures and always runs in
    // process (no wire spec), so it legitimately carries no dispatch
    // notes. Every augmenting round does go through the executor.
    let dist_profiles: Vec<_> = profiles
        .iter()
        .filter(|p| !p.dispatches.is_empty())
        .collect();
    assert!(
        !dist_profiles.is_empty(),
        "no round profile carries dispatch notes"
    );

    for p in &dist_profiles {
        // Every map/reduce attempt appears exactly once as a dispatch
        // note, attributed to a real worker of the 2-worker fleet.
        let mut noted: HashMap<(&str, usize), usize> = HashMap::new();
        for n in &p.dispatches {
            assert!(
                n.worker < 2,
                "round {}: bogus worker id {}",
                p.round,
                n.worker
            );
            assert!(n.ok, "round {}: unexpected failed dispatch", p.round);
            *noted.entry((n.phase.as_str(), n.task)).or_default() += 1;
        }
        let mut expected: HashMap<(&str, usize), usize> = HashMap::new();
        for e in p
            .events
            .iter()
            .filter(|e| e.phase == "map" || e.phase == "reduce")
        {
            assert!(
                e.worker.is_some(),
                "round {}: {} t{} lacks worker attribution",
                p.round,
                e.phase,
                e.task
            );
            *expected.entry((e.phase.as_str(), e.task)).or_default() += 1;
        }
        assert_eq!(
            noted, expected,
            "round {}: dispatch notes disagree with task events",
            p.round
        );
        assert!(p.dist_blame.is_some(), "round {}: no blame split", p.round);
        assert!(
            !p.critical_path_dist.is_empty(),
            "round {}: no dispatch-phase critical path",
            p.round
        );

        // Per-worker windows: well-formed, and consistent with a
        // worker executing one dispatch at a time once clock-aligned
        // (a small slack absorbs offset refinement between beats).
        let mut per_worker: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
        for n in &p.dispatches {
            assert!(
                n.started_us <= n.finished_us,
                "round {}: inverted window",
                p.round
            );
            per_worker
                .entry(n.worker)
                .or_default()
                .push((n.started_us, n.finished_us));
        }
        for (worker, mut windows) in per_worker {
            windows.sort_unstable();
            for pair in windows.windows(2) {
                let overlap = pair[0].1.saturating_sub(pair[1].0);
                assert!(
                    overlap <= 5_000,
                    "round {}: worker {worker} windows overlap by {overlap}us",
                    p.round
                );
            }
        }
    }

    // The dispatch notes exercised both workers at least once overall.
    let workers_seen: std::collections::HashSet<u64> = dist_profiles
        .iter()
        .flat_map(|p| p.dispatches.iter().map(|n| n.worker))
        .collect();
    assert_eq!(workers_seen.len(), 2, "both workers should run dispatches");
}

#[test]
fn kill_nine_mid_job_is_recovered_by_retry() {
    let (net, s, t) = test_network(700, 3, 23);
    let config = FfConfig::new(s, t).variant(FfVariant::ff5()).reducers(6);

    let mut fleet = WorkerFleet::start(2);
    let victim = fleet.children.remove(0);

    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt.set_task_executor(Some(fleet.coordinator().executor()));
    // Worker death fails the in-flight attempt; Hadoop's budget retries.
    rt.set_failure_policy(FailurePolicy::hadoop_default());

    // SIGKILL the victim shortly into the run, from another thread —
    // the driver never gets a chance to say goodbye on its behalf.
    let killer = std::thread::spawn(move || {
        let mut victim = victim;
        std::thread::sleep(Duration::from_millis(50));
        victim.kill().expect("kill -9 the worker");
        victim.wait().expect("reap the victim");
    });

    let run = ffmr_core::run_max_flow(&mut rt, &net, &config).expect("run survives the kill");
    killer.join().expect("killer thread");

    assert_eq!(
        fleet.coordinator().worker_deaths(),
        1,
        "the killed worker must be declared dead"
    );
    assert_eq!(fleet.coordinator().live_workers(), 1);

    let oracle = maxflow::dinic::max_flow(&net, s, t);
    assert_eq!(
        run.max_flow_value, oracle.value,
        "flow wrong after recovery"
    );

    // The fingerprint must still match a clean serial run: retries and
    // the lost worker must leave no trace in the output.
    let print_dist = fingerprint(&rt, &run);
    let mut rt_base = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt_base.set_worker_threads(Some(1));
    let run_base = ffmr_core::run_max_flow(&mut rt_base, &net, &config).expect("baseline");
    assert_eq!(print_dist, fingerprint(&rt_base, &run_base));
}
