//! Solver-agreement matrix: every solver the query daemon can route to —
//! the in-memory family (Dinic, Edmonds–Karp, push–relabel, capacity-
//! scaling, the bulk-synchronous parallel push–relabel) and the paper's
//! MapReduce variants (FF1, FF5) — must return the same max-flow value
//! on the paper's two graph families (Barabási–Albert and
//! Watts–Strogatz), and every returned flow assignment must pass
//! feasibility validation. The parallel solver is additionally required
//! to return the *identical per-edge assignment* for 1, 2 and 8 worker
//! threads.

use ffmr::prelude::*;
use ffmr::{ffmr_core, maxflow, swgraph};

/// Runs one MapReduce variant, extracts its edge flows, validates them,
/// and returns the flow value.
fn mr_flow_checked(net: &FlowNetwork, s: VertexId, t: VertexId, variant: FfVariant) -> i64 {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    let config = FfConfig::new(s, t).variant(variant).reducers(3);
    let run = ffmr_core::run_max_flow(&mut rt, net, &config).expect("ffmr run");
    let extracted =
        ffmr_core::verify::extract_flow(rt.dfs(), &run.final_graph_path, &run.pending_deltas, net)
            .expect("consistent flow extraction");
    let result = FlowResult {
        value: extracted.value_from(net, s),
        flows: extracted.flows.clone(),
    };
    maxflow::validate::check_flow(net, s, t, &result).expect("MR flow must be feasible");
    assert_eq!(result.value, run.max_flow_value, "declared vs extracted");
    assert!(
        !ffmr_core::verify::has_augmenting_path(net, &extracted, s, t),
        "MR flow left an augmenting path"
    );
    run.max_flow_value
}

/// Runs every sequential algorithm plus FF1 and FF5 on `net` and asserts
/// they agree; each flow assignment is validated for feasibility.
fn assert_all_solvers_agree(net: &FlowNetwork, s: VertexId, t: VertexId) {
    let reference = maxflow::dinic::max_flow(net, s, t);
    maxflow::validate::check_flow(net, s, t, &reference).expect("dinic flow must be feasible");

    for algo in Algorithm::ALL {
        let result = algo.run(net, s, t);
        maxflow::validate::check_flow(net, s, t, &result)
            .unwrap_or_else(|e| panic!("{algo} produced an infeasible flow: {e}"));
        assert_eq!(result.value, reference.value, "{algo} disagrees with dinic");
    }

    assert_eq!(
        mr_flow_checked(net, s, t, FfVariant::ff1()),
        reference.value,
        "ff1 disagrees with dinic"
    );
    assert_eq!(
        mr_flow_checked(net, s, t, FfVariant::ff5()),
        reference.value,
        "ff5 disagrees with dinic"
    );

    // The parallel solver must be deterministic across thread counts:
    // not just the value but the full per-edge flow assignment.
    let pr_config = |threads| maxflow::parallel_push_relabel::PrConfig {
        threads,
        ..maxflow::parallel_push_relabel::PrConfig::default()
    };
    let single = maxflow::parallel_push_relabel::max_flow_with(net, s, t, &pr_config(1));
    assert_eq!(single.result.value, reference.value);
    for threads in [2, 8] {
        let run = maxflow::parallel_push_relabel::max_flow_with(net, s, t, &pr_config(threads));
        assert_eq!(
            run.result, single.result,
            "parallel-pr with {threads} threads diverged from 1 thread"
        );
    }
}

#[test]
fn all_solvers_agree_on_barabasi_albert() {
    let n = 120;
    let edges = swgraph::gen::barabasi_albert(n, 3, 17);
    let net = FlowNetwork::from_undirected_unit(n, &edges);
    assert_all_solvers_agree(&net, VertexId::new(0), VertexId::new(n - 1));
}

#[test]
fn all_solvers_agree_on_watts_strogatz() {
    let n = 100;
    let edges = swgraph::gen::watts_strogatz(n, 4, 0.25, 23);
    let net = FlowNetwork::from_undirected_unit(n, &edges);
    assert_all_solvers_agree(&net, VertexId::new(0), VertexId::new(n / 2));
}

#[test]
fn all_solvers_agree_with_super_terminals() {
    // The service's `--w` path: Sec. V-A1 super source/sink attachment.
    let n = 150;
    let edges = swgraph::gen::barabasi_albert(n, 3, 31);
    let net = FlowNetwork::from_undirected_unit(n, &edges);
    let st = swgraph::super_st::attach_super_terminals(&net, 4, 3, 42).unwrap();
    assert_all_solvers_agree(&st.network, st.source, st.sink);
}
