//! Flight recorder: structured per-task-attempt events.
//!
//! The MapReduce runtime records one [`TaskEvent`] per task attempt
//! (map, reduce, speculative duplicates, failed retries) plus one
//! synthetic event for the shuffle barrier of each job. Events carry
//! both simulated-cluster timings (the paper's cost model) and host
//! wall-clock timings, so a job history can answer "which attempt
//! bounded this round" after the fact.
//!
//! Events flow through a global [`EventRecorder`]:
//!
//! * a bounded ring buffer keeps the most recent events in memory for
//!   live inspection (oldest entries are overwritten; a drop counter
//!   says how many were lost), and
//! * an optional [`EventSink`] receives every event as one JSON line,
//!   which is how `ffmr --events FILE` persists a JSONL trace.
//!
//! Recording is off by default; when disabled the runtime skips event
//! assembly entirely, so the recorder costs one atomic load per job.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::json::Value;

/// Default capacity of the global event ring. Overridable at process
/// start with the `FFMR_EVENT_RING_CAP` environment variable.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Environment variable overriding the global ring's capacity.
pub const RING_CAP_ENV: &str = "FFMR_EVENT_RING_CAP";

/// How a task attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskOutcome {
    /// The attempt completed and its output was used.
    Ok,
    /// The attempt crashed (fault injection or panic) and was retried
    /// or, for a speculative duplicate, discarded.
    Failed,
    /// A speculative duplicate that finished first and won the task.
    SpeculativeWon,
    /// An attempt that lost a speculative race: either the original
    /// that was killed when its duplicate won, or a duplicate that
    /// finished after the original.
    SpeculativeLost,
}

impl TaskOutcome {
    /// Stable wire spelling, used in JSON lines and reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TaskOutcome::Ok => "ok",
            TaskOutcome::Failed => "failed",
            TaskOutcome::SpeculativeWon => "speculative-won",
            TaskOutcome::SpeculativeLost => "speculative-lost",
        }
    }

    /// Inverse of [`TaskOutcome::as_str`].
    #[must_use]
    pub fn parse(text: &str) -> Option<TaskOutcome> {
        match text {
            "ok" => Some(TaskOutcome::Ok),
            "failed" => Some(TaskOutcome::Failed),
            "speculative-won" => Some(TaskOutcome::SpeculativeWon),
            "speculative-lost" => Some(TaskOutcome::SpeculativeLost),
            _ => None,
        }
    }
}

/// One task attempt as observed by the runtime.
///
/// Simulated times are seconds relative to the start of the round the
/// job ran in (0.0 = round start; the per-round scheduling overhead
/// precedes the first map attempt). They are a *reconstruction*: the
/// runtime charges phases via a makespan model, and the recorder lays
/// attempts onto slots with a greedy earliest-free-slot schedule that
/// reproduces that model's shape, not a byte-exact replay. Wall times
/// are microseconds since the job's `run()` entry on the host clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskEvent {
    /// Name of the MapReduce job this attempt belonged to.
    pub job: String,
    /// `"map"`, `"shuffle"` or `"reduce"`.
    pub phase: String,
    /// Task index within the phase (partition index for reducers).
    pub task: usize,
    /// Attempt number, starting at 0; speculative duplicates continue
    /// the numbering after any failed attempts.
    pub attempt: u32,
    /// Simulated cluster node the attempt was placed on.
    pub node: usize,
    /// Real worker-process id that executed the attempt in distributed
    /// mode (`None` for in-process execution and synthetic events).
    pub worker: Option<u64>,
    /// Reduce partition id (`None` for map and shuffle events).
    pub partition: Option<usize>,
    /// Simulated start, seconds from round start.
    pub sim_start: f64,
    /// Simulated end, seconds from round start. For an attempt that
    /// lost a speculative race this is the finish it *would* have had;
    /// the phase barrier is bounded by the winning attempts.
    pub sim_end: f64,
    /// Host wall-clock start, microseconds since job start.
    pub wall_start_us: u64,
    /// Host wall-clock end, microseconds since job start.
    pub wall_end_us: u64,
    /// Bytes read by the attempt (split bytes for maps, fetched
    /// segment + Schimmy partition bytes for reducers, total shuffle
    /// bytes for the shuffle event).
    pub bytes_in: u64,
    /// Bytes written by the attempt (spills for maps, final output for
    /// reducers, cross-node bytes for the shuffle event).
    pub bytes_out: u64,
    /// How the attempt ended.
    pub outcome: TaskOutcome,
}

impl TaskEvent {
    /// Simulated duration in seconds.
    #[must_use]
    pub fn sim_seconds(&self) -> f64 {
        (self.sim_end - self.sim_start).max(0.0)
    }

    /// Encodes the event as one single-line JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"job\":\"");
        push_escaped(&mut out, &self.job);
        out.push_str("\",\"phase\":\"");
        push_escaped(&mut out, &self.phase);
        out.push_str("\",\"task\":");
        out.push_str(&self.task.to_string());
        out.push_str(",\"attempt\":");
        out.push_str(&self.attempt.to_string());
        out.push_str(",\"node\":");
        out.push_str(&self.node.to_string());
        if let Some(w) = self.worker {
            out.push_str(",\"worker\":");
            out.push_str(&w.to_string());
        }
        if let Some(p) = self.partition {
            out.push_str(",\"partition\":");
            out.push_str(&p.to_string());
        }
        out.push_str(",\"sim_start\":");
        push_f64(&mut out, self.sim_start);
        out.push_str(",\"sim_end\":");
        push_f64(&mut out, self.sim_end);
        out.push_str(",\"wall_start_us\":");
        out.push_str(&self.wall_start_us.to_string());
        out.push_str(",\"wall_end_us\":");
        out.push_str(&self.wall_end_us.to_string());
        out.push_str(",\"bytes_in\":");
        out.push_str(&self.bytes_in.to_string());
        out.push_str(",\"bytes_out\":");
        out.push_str(&self.bytes_out.to_string());
        out.push_str(",\"outcome\":\"");
        out.push_str(self.outcome.as_str());
        out.push_str("\"}");
        out
    }

    /// Decodes an event from a parsed JSON object.
    ///
    /// # Errors
    /// Names the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<TaskEvent, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("event missing string field '{k}'"))
        };
        let num_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event missing numeric field '{k}'"))
        };
        let int_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event missing integer field '{k}'"))
        };
        let outcome_text = str_field("outcome")?;
        Ok(TaskEvent {
            job: str_field("job")?,
            phase: str_field("phase")?,
            task: usize::try_from(int_field("task")?).map_err(|_| "task overflows usize")?,
            attempt: u32::try_from(int_field("attempt")?).map_err(|_| "attempt overflows u32")?,
            node: usize::try_from(int_field("node")?).map_err(|_| "node overflows usize")?,
            worker: v.get("worker").and_then(Value::as_u64),
            partition: v.get("partition").and_then(Value::as_usize),
            sim_start: num_field("sim_start")?,
            sim_end: num_field("sim_end")?,
            wall_start_us: int_field("wall_start_us")?,
            wall_end_us: int_field("wall_end_us")?,
            bytes_in: int_field("bytes_in")?,
            bytes_out: int_field("bytes_out")?,
            outcome: TaskOutcome::parse(&outcome_text)
                .ok_or_else(|| format!("unknown outcome '{outcome_text}'"))?,
        })
    }

    /// Decodes an event from one JSON line.
    ///
    /// # Errors
    /// Propagates parse errors from the line or its fields.
    pub fn from_json(line: &str) -> Result<TaskEvent, String> {
        TaskEvent::from_value(&Value::parse(line)?)
    }
}

/// Appends `value` to `out` with JSON string escaping.
pub(crate) fn push_escaped(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends a finite decimal rendering of `v` (JSON has no NaN/inf).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push('0');
    }
}

/// Receives each recorded event as one JSON line.
pub trait EventSink: Send + Sync {
    /// Called once per event with a single-line JSON object.
    fn emit(&self, json_line: &str);
}

/// An [`EventSink`] that appends JSON lines to a file, optionally
/// size-capped: see [`JsonlSink::with_max_bytes`].
pub struct JsonlSink {
    file: Mutex<crate::rotate::RotatingFile>,
}

impl JsonlSink {
    /// Creates (or truncates) `path` for writing, with no size cap.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            file: Mutex::new(crate::rotate::RotatingFile::create(path, None)?),
        })
    }

    /// Creates (or truncates) `path` for writing; when an append would
    /// push the file past `max_bytes` it is rotated to `<path>.1`
    /// (replacing the previous rotation), so long-lived sessions keep
    /// at most two generations.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn with_max_bytes(path: &Path, max_bytes: u64) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            file: Mutex::new(crate::rotate::RotatingFile::create(path, Some(max_bytes))?),
        })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, json_line: &str) {
        if let Ok(mut file) = self.file.lock() {
            // Flushed per line: traces should survive a crash.
            file.write_line(json_line);
        }
    }
}

/// An [`EventSink`] that collects lines in memory, for tests.
#[derive(Default)]
pub struct VecEventSink {
    lines: Mutex<Vec<String>>,
}

impl VecEventSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> VecEventSink {
        VecEventSink::default()
    }

    /// A snapshot of the collected lines.
    ///
    /// # Panics
    /// Panics if the interior mutex is poisoned.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }
}

impl EventSink for VecEventSink {
    fn emit(&self, json_line: &str) {
        if let Ok(mut lines) = self.lines.lock() {
            lines.push(json_line.to_owned());
        }
    }
}

/// A bounded ring of the most recent events.
///
/// Writers claim a monotonically increasing sequence number with one
/// atomic add, then store the event in `slots[seq % capacity]`; the
/// slot lock covers only the single clone in or out. When the ring
/// wraps, the oldest event is overwritten and counted as dropped.
pub struct EventRing {
    slots: Vec<RwLock<Option<TaskEvent>>>,
    head: AtomicU64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            slots: (0..capacity).map(|_| RwLock::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends an event, overwriting the oldest once full. Returns the
    /// event's sequence number (sequence ≥ capacity means an older
    /// event was just overwritten).
    pub fn push(&self, event: TaskEvent) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = usize::try_from(seq % self.slots.len() as u64).unwrap_or(0);
        if let Ok(mut slot) = self.slots[idx].write() {
            *slot = Some(event);
        }
        seq
    }

    /// Total number of events ever pushed.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Number of events lost to wraparound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::try_from(self.recorded().min(self.slots.len() as u64)).unwrap_or(usize::MAX)
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// The retained events, oldest first. A best-effort snapshot:
    /// pushes racing the scan may shift the window.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TaskEvent> {
        let head = self.recorded();
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity(usize::try_from(head - start).unwrap_or(0));
        for seq in start..head {
            let idx = usize::try_from(seq % self.slots.len() as u64).unwrap_or(0);
            if let Ok(slot) = self.slots[idx].read() {
                if let Some(event) = slot.as_ref() {
                    out.push(event.clone());
                }
            }
        }
        out
    }
}

/// The global flight recorder: an enable flag, a bounded ring, and an
/// optional JSONL sink.
pub struct EventRecorder {
    enabled: AtomicBool,
    ring: EventRing,
    sink: RwLock<Option<Arc<dyn EventSink>>>,
}

impl EventRecorder {
    fn new(capacity: usize) -> EventRecorder {
        EventRecorder {
            enabled: AtomicBool::new(false),
            ring: EventRing::new(capacity),
            sink: RwLock::new(None),
        }
    }

    /// Whether the runtime should assemble and record events.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (off by default).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Installs (or clears) the JSONL sink and enables recording when
    /// a sink is provided.
    pub fn set_sink(&self, sink: Option<Arc<dyn EventSink>>) {
        if let Ok(mut slot) = self.sink.write() {
            if sink.is_some() {
                self.enabled.store(true, Ordering::Relaxed);
            }
            *slot = sink;
        }
    }

    /// Records one event: the ring always takes it, the sink (if any)
    /// gets its JSON line. No-op while disabled. Ring overwrites bump
    /// the `ffmr_obs_events_dropped_total` counter so silent profile
    /// truncation on large jobs is visible.
    pub fn record(&self, event: TaskEvent) {
        if !self.enabled() {
            return;
        }
        if let Ok(slot) = self.sink.read() {
            if let Some(sink) = slot.as_ref() {
                sink.emit(&event.to_json());
            }
        }
        let seq = self.ring.push(event);
        if seq >= self.ring.capacity() as u64 {
            crate::global()
                .counter("ffmr_obs_events_dropped_total", &[])
                .inc();
        }
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<TaskEvent> {
        self.ring.snapshot()
    }

    /// Number of events lost to ring wraparound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Total number of events recorded since startup.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.ring.recorded()
    }
}

/// The process-wide recorder used by the MapReduce runtime. Ring
/// capacity defaults to [`DEFAULT_RING_CAPACITY`] and can be raised or
/// lowered with the `FFMR_EVENT_RING_CAP` environment variable (read
/// once, at first use).
pub fn recorder() -> &'static EventRecorder {
    static RECORDER: OnceLock<EventRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| {
        let capacity = std::env::var(RING_CAP_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&cap| cap > 0)
            .unwrap_or(DEFAULT_RING_CAPACITY);
        EventRecorder::new(capacity)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(task: usize, attempt: u32) -> TaskEvent {
        TaskEvent {
            job: "job".into(),
            phase: "map".into(),
            task,
            attempt,
            node: task % 4,
            worker: None,
            partition: None,
            sim_start: 1.5,
            sim_end: 2.25,
            wall_start_us: 10,
            wall_end_us: 20,
            bytes_in: 100,
            bytes_out: 50,
            outcome: TaskOutcome::Ok,
        }
    }

    #[test]
    fn event_json_round_trips() {
        let mut ev = event(3, 1);
        ev.job = "na\"me\\with\nodd chars".into();
        ev.partition = Some(7);
        ev.outcome = TaskOutcome::SpeculativeWon;
        let line = ev.to_json();
        assert!(!line.contains('\n'), "JSONL lines must be single-line");
        let back = TaskEvent::from_json(&line).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn event_json_omits_missing_partition() {
        let line = event(0, 0).to_json();
        assert!(!line.contains("partition"));
        assert_eq!(TaskEvent::from_json(&line).unwrap().partition, None);
    }

    #[test]
    fn worker_attribution_round_trips_and_is_optional() {
        let mut ev = event(2, 0);
        ev.worker = Some(5);
        let line = ev.to_json();
        assert!(line.contains("\"worker\":5"));
        assert_eq!(TaskEvent::from_json(&line).unwrap(), ev);
        let bare = event(2, 0).to_json();
        assert!(!bare.contains("worker"));
        assert_eq!(TaskEvent::from_json(&bare).unwrap().worker, None);
    }

    #[test]
    fn ring_overflow_is_counted_in_the_global_registry() {
        let rec = EventRecorder::new(2);
        rec.set_enabled(true);
        let before = crate::global()
            .counter("ffmr_obs_events_dropped_total", &[])
            .get();
        for i in 0..5 {
            rec.record(event(i, 0));
        }
        let after = crate::global()
            .counter("ffmr_obs_events_dropped_total", &[])
            .get();
        assert!(after >= before + 3, "3 of 5 events overwrote older ones");
    }

    #[test]
    fn outcome_spellings_round_trip() {
        for outcome in [
            TaskOutcome::Ok,
            TaskOutcome::Failed,
            TaskOutcome::SpeculativeWon,
            TaskOutcome::SpeculativeLost,
        ] {
            assert_eq!(TaskOutcome::parse(outcome.as_str()), Some(outcome));
        }
        assert_eq!(TaskOutcome::parse("bogus"), None);
    }

    #[test]
    fn ring_wraparound_drops_oldest_and_counts_drops() {
        let ring = EventRing::new(8);
        for i in 0..11 {
            ring.push(event(i, 0));
        }
        assert_eq!(ring.capacity(), 8);
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.recorded(), 11);
        assert_eq!(ring.dropped(), 3, "three oldest events were overwritten");
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 8);
        // The three oldest (tasks 0..2) are gone; 3..10 remain in order.
        assert_eq!(
            kept.iter().map(|e| e.task).collect::<Vec<_>>(),
            (3..11).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ring_under_capacity_keeps_everything() {
        let ring = EventRing::new(16);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(event(i, 0));
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.snapshot().len(), 5);
    }

    #[test]
    fn recorder_respects_enable_flag_and_feeds_sink() {
        // Private recorder instance: the global one is shared across
        // tests in this binary.
        let rec = EventRecorder::new(4);
        rec.record(event(0, 0));
        assert!(rec.recent().is_empty(), "disabled recorder drops events");

        let sink = Arc::new(VecEventSink::new());
        rec.set_sink(Some(sink.clone()));
        assert!(rec.enabled(), "installing a sink enables recording");
        rec.record(event(1, 0));
        assert_eq!(rec.recent().len(), 1);
        assert_eq!(sink.lines().len(), 1);
        assert!(sink.lines()[0].contains("\"task\":1"));

        rec.set_sink(None);
        rec.set_enabled(false);
        rec.record(event(2, 0));
        assert_eq!(rec.recent().len(), 1);
    }
}
