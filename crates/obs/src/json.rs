//! A minimal JSON reader for loading flight-recorder JSONL lines back
//! into memory (`ffmr report`, the daemon's `history` verb).
//!
//! Only what the recorder's own writer emits is supported: objects,
//! arrays, double-quoted strings with the standard escapes, numbers,
//! booleans and null. The writer never produces exotic forms (no
//! exponents with signs in keys, no lone surrogates), so this stays a
//! couple hundred lines instead of a dependency.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (the writer emits nothing that
    /// loses precision at the magnitudes the recorder deals in).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    /// A short description of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (`None` on other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` (negative or fractional values are refused).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(r#"{"a": 1, "b": [true, null, -2.5], "c": {"d": "x\ny"}, "e": "z"}"#)
            .unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let b = v.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], Value::Bool(true));
        assert_eq!(b[1], Value::Null);
        assert_eq!(b[2].as_f64(), Some(-2.5));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Value::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("e").and_then(Value::as_str), Some("z"));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::parse(r#"{"k": "a\\b\"c\tdA"}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some("a\\b\"c\tdA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} extra").is_err());
        assert!(Value::parse("\"open").is_err());
    }

    #[test]
    fn as_u64_refuses_fractions_and_negatives() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }
}
