//! Span tracing: named wall-clock scopes emitted as JSON lines.
//!
//! A [`Span`] measures one scope (an FF round, one MapReduce phase, one
//! query) and, when a [`SpanSink`] is installed, emits a single JSON
//! object on drop:
//!
//! ```json
//! {"name":"mr.map","id":7,"parent":6,"thread":"ffmrd-worker-0",
//!  "start_us":51234,"dur_us":890,"round":"3"}
//! ```
//!
//! * `id`/`parent` — process-unique span ids; `parent` is the innermost
//!   span still open **on the same thread** (a per-thread stack), so a
//!   driver round nests the MR job it runs, which nests its map /
//!   shuffle / reduce phases.
//! * `start_us` — microseconds since the first span of the process.
//! * extra string fields attached via [`Span::field`] appear as
//!   top-level JSON string members.
//!
//! With no sink installed (`set_sink(None)`, the default) starting a
//! span costs one relaxed atomic load and emits nothing — tracing is
//! strictly opt-in (the CLI's `--trace-file` flag).
//!
//! # Cross-process trace context
//!
//! Distributed runs stitch driver and worker spans into one trace:
//!
//! * [`set_trace_id`] installs a process-wide trace id (the driver mints
//!   one per MapReduce job); every span emitted while it is set carries a
//!   `"trace":N` member.
//! * [`span_child_of`] opens a span whose parent id was received from
//!   another process (the dispatch span id carried on `task-request`),
//!   so a worker's `map` span nests under the driver's `dispatch` span.
//! * [`seed_ids`] namespaces this process's span ids (workers seed with
//!   `(worker_id + 1) << 40`) so ids from different processes never
//!   collide in the merged trace.
//! * [`emit_raw`] forwards an already-encoded span line into the
//!   installed sink — how the coordinator folds worker-shipped span
//!   lines into the driver's `--trace-file`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Receives one completed span as a JSON line (no trailing newline).
pub trait SpanSink: Send + Sync {
    /// Consumes one JSON-encoded span.
    fn emit(&self, json_line: &str);
}

/// A sink appending JSON lines to a file, flushed per span so a killed
/// daemon loses at most the spans still open.
///
/// With [`FileSink::with_max_bytes`] the file is size-capped: when an
/// emit would push it past the cap, the current file is renamed to
/// `<path>.1` (replacing any previous rotation) and a fresh file is
/// started — long `serve` sessions keep at most two generations.
#[derive(Debug)]
pub struct FileSink {
    state: Mutex<crate::rotate::RotatingFile>,
}

impl FileSink {
    /// Creates (truncates) `path` for writing, with no size cap.
    ///
    /// # Errors
    /// Propagates the file-creation failure.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(Self {
            state: Mutex::new(crate::rotate::RotatingFile::create(path, None)?),
        })
    }

    /// Creates (truncates) `path` for writing, rotating to `<path>.1`
    /// whenever the file would exceed `max_bytes`.
    ///
    /// # Errors
    /// Propagates the file-creation failure.
    pub fn with_max_bytes(path: &str, max_bytes: u64) -> std::io::Result<Self> {
        Ok(Self {
            state: Mutex::new(crate::rotate::RotatingFile::create(path, Some(max_bytes))?),
        })
    }
}

impl SpanSink for FileSink {
    fn emit(&self, json_line: &str) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.write_line(json_line);
    }
}

/// A sink collecting spans in memory (tests, programmatic inspection).
#[derive(Debug, Default)]
pub struct VecSink {
    lines: Mutex<Vec<String>>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The JSON lines captured so far.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl SpanSink for VecSink {
    fn emit(&self, json_line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(json_line.to_string());
    }
}

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static TRACE_ID: AtomicU64 = AtomicU64::new(0);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn SpanSink>>> {
    static SINK: OnceLock<RwLock<Option<Arc<dyn SpanSink>>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(None))
}

/// The instant `start_us` values are measured from: the first call into
/// this module in the process. Stable for the process lifetime.
pub fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since [`process_epoch`] — the timebase every
/// span's `start_us` and the dispatch telemetry fields share.
#[must_use]
pub fn epoch_us() -> u64 {
    u64::try_from(process_epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Installs the process-wide trace id (0 clears it). While set, every
/// emitted span carries a `"trace":N` member; the driver mints one per
/// MapReduce job and ships it to workers with each dispatch.
pub fn set_trace_id(id: u64) {
    TRACE_ID.store(id, Ordering::Relaxed);
}

/// The current trace id (0 when none is set).
#[must_use]
pub fn current_trace_id() -> u64 {
    TRACE_ID.load(Ordering::Relaxed)
}

/// Seeds this process's span-id counter so ids from different processes
/// never collide in a merged trace. Workers call this once with
/// `(worker_id + 1) << 40` after registering; ids only move forward.
pub fn seed_ids(base: u64) {
    NEXT_ID.fetch_max(base.max(1), Ordering::Relaxed);
}

/// Forwards an already-encoded span line (no trailing newline) into the
/// installed sink, if any — used by the coordinator to merge span lines
/// shipped from worker processes into the driver's trace file.
pub fn emit_raw(json_line: &str) {
    let sink = sink_slot()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(sink) = sink {
        sink.emit(json_line);
    }
}

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Installs (or with `None` removes) the process-wide span sink.
pub fn set_sink(sink: Option<Arc<dyn SpanSink>>) {
    TRACING.store(sink.is_some(), Ordering::Relaxed);
    *sink_slot()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = sink;
}

/// Whether a sink is currently installed.
#[must_use]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Opens a span named `name`. Returns an inert guard when no sink is
/// installed.
pub fn span(name: &str) -> Span {
    open_span(name, None)
}

/// Opens a span whose parent id came from another process (the dispatch
/// span id a worker received on `task-request`). The span still joins
/// this thread's stack, so spans opened inside it nest normally.
pub fn span_child_of(name: &str, parent: u64) -> Span {
    open_span(name, Some(parent))
}

fn open_span(name: &str, explicit_parent: Option<u64>) -> Span {
    if !tracing_enabled() {
        return Span { inner: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = explicit_parent.or_else(|| s.last().copied());
        s.push(id);
        parent
    });
    Span {
        inner: Some(SpanInner {
            name: name.to_string(),
            id,
            parent,
            trace: current_trace_id(),
            start: Instant::now(),
            start_us: epoch_us(),
            fields: Vec::new(),
        }),
    }
}

#[derive(Debug)]
struct SpanInner {
    name: String,
    id: u64,
    parent: Option<u64>,
    trace: u64,
    start: Instant,
    start_us: u64,
    fields: Vec<(String, String)>,
}

/// An open span; closing (dropping) it emits the JSON line.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attaches a `key:"value"` string member to the emitted JSON.
    pub fn field(&mut self, key: &str, value: impl ToString) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key.to_string(), value.to_string()));
        }
    }

    /// This span's process-unique id (0 for an inert span).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Normally the top of the stack; tolerate out-of-order drops.
            if let Some(pos) = s.iter().rposition(|id| *id == inner.id) {
                s.remove(pos);
            }
        });
        let sink = sink_slot()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let Some(sink) = sink else { return };
        let mut line = String::with_capacity(128);
        line.push_str("{\"name\":\"");
        push_escaped(&mut line, &inner.name);
        line.push_str(&format!("\",\"id\":{}", inner.id));
        if let Some(parent) = inner.parent {
            line.push_str(&format!(",\"parent\":{parent}"));
        }
        if inner.trace != 0 {
            line.push_str(&format!(",\"trace\":{}", inner.trace));
        }
        line.push_str(",\"thread\":\"");
        push_escaped(
            &mut line,
            std::thread::current().name().unwrap_or("unnamed"),
        );
        line.push_str(&format!(
            "\",\"start_us\":{},\"dur_us\":{dur_us}",
            inner.start_us
        ));
        for (k, v) in &inner.fields {
            line.push_str(",\"");
            push_escaped(&mut line, k);
            line.push_str("\":\"");
            push_escaped(&mut line, v);
            line.push('"');
        }
        line.push('}');
        sink.emit(&line);
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spans share process-global state; serialize the tests touching it.
    fn sink_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn no_sink_means_inert_spans() {
        let _g = sink_guard();
        set_sink(None);
        let mut s = span("quiet");
        s.field("k", "v");
        assert_eq!(s.id(), 0);
        drop(s); // must not panic or emit
    }

    #[test]
    fn nesting_and_fields_are_emitted() {
        let _g = sink_guard();
        let sink = Arc::new(VecSink::new());
        set_sink(Some(Arc::clone(&sink) as Arc<dyn SpanSink>));
        {
            let mut outer = span("outer");
            outer.field("round", 3);
            let outer_id = outer.id();
            {
                let inner = span("inner");
                assert_ne!(inner.id(), outer_id);
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_sink(None);
        let lines = sink.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        // Children drop first.
        assert!(lines[0].contains("\"name\":\"inner\""));
        assert!(lines[0].contains("\"parent\":"));
        assert!(lines[1].contains("\"name\":\"outer\""));
        assert!(lines[1].contains("\"round\":\"3\""));
        assert!(!lines[1].contains("\"parent\":"), "outer has no parent");
        // Parent id referenced by the child matches the parent's id.
        let parent_ref = lines[0]
            .split("\"parent\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .unwrap()
            .to_string();
        assert!(lines[1].contains(&format!("\"id\":{parent_ref}")));
        // Outer duration covers the sleep.
        let dur: u64 = lines[1]
            .split("\"dur_us\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(dur >= 2_000, "dur_us={dur}");
    }

    #[test]
    fn escaping_keeps_lines_valid() {
        let _g = sink_guard();
        let sink = Arc::new(VecSink::new());
        set_sink(Some(Arc::clone(&sink) as Arc<dyn SpanSink>));
        {
            let mut s = span("weird \"name\"\n");
            s.field("path", "a\\b\tc");
        }
        set_sink(None);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].contains('\n'));
        assert!(lines[0].contains("weird \\\"name\\\"\\n"));
        assert!(lines[0].contains("a\\\\b\\tc"));
    }

    #[test]
    fn concurrent_threads_preserve_nesting_and_do_not_tear_lines() {
        let _g = sink_guard();
        let sink = Arc::new(VecSink::new());
        set_sink(Some(Arc::clone(&sink) as Arc<dyn SpanSink>));
        const THREADS: usize = 8;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..50 {
                        let _outer = span(&format!("outer-{t}-{i}"));
                        let _inner = span(&format!("inner-{t}-{i}"));
                    }
                });
            }
        });
        set_sink(None);
        let lines = sink.lines();
        assert_eq!(lines.len(), THREADS * 50 * 2, "every span emitted once");
        let member = |line: &str, key: &str| -> Option<String> {
            line.split(&format!("\"{key}\":"))
                .nth(1)
                .and_then(|s| s.split([',', '}']).next())
                .map(str::to_string)
        };
        for line in &lines {
            // No torn or interleaved writes: each captured line is one
            // complete JSON object.
            assert!(
                line.starts_with("{\"name\":\"") && line.ends_with('}'),
                "{line}"
            );
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(line.matches('{').count(), 1, "interleaved write: {line}");
        }
        for t in 0..THREADS {
            for i in 0..50 {
                let outer = lines
                    .iter()
                    .find(|l| l.contains(&format!("\"name\":\"outer-{t}-{i}\"")))
                    .expect("outer span emitted");
                let inner = lines
                    .iter()
                    .find(|l| l.contains(&format!("\"name\":\"inner-{t}-{i}\"")))
                    .expect("inner span emitted");
                // Per-thread nesting survived the concurrency: each
                // inner's parent is its own thread's outer, never a
                // span from another thread.
                assert_eq!(
                    member(inner, "parent"),
                    member(outer, "id"),
                    "outer={outer} inner={inner}"
                );
                assert_eq!(member(outer, "parent"), None, "{outer}");
            }
        }
    }

    #[test]
    fn trace_id_and_explicit_parent_are_emitted() {
        let _g = sink_guard();
        let sink = Arc::new(VecSink::new());
        set_sink(Some(Arc::clone(&sink) as Arc<dyn SpanSink>));
        set_trace_id(77);
        {
            let remote_parent = 1u64 << 40;
            let outer = span_child_of("remote-child", remote_parent);
            assert_ne!(outer.id(), 0);
            {
                // Nested spans chain below the explicit-parent span.
                let _inner = span("nested");
            }
        }
        set_trace_id(0);
        set_sink(None);
        let lines = sink.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"name\":\"nested\""));
        assert!(lines[0].contains("\"trace\":77"));
        assert!(lines[1].contains(&format!("\"parent\":{}", 1u64 << 40)));
        assert!(lines[1].contains("\"trace\":77"));
        // The nested span's parent is the remote-child span, not the
        // remote parent id.
        let outer_id = lines[1]
            .split("\"id\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .unwrap();
        assert!(lines[0].contains(&format!("\"parent\":{outer_id}")));
    }

    #[test]
    fn emit_raw_forwards_to_the_sink() {
        let _g = sink_guard();
        let sink = Arc::new(VecSink::new());
        set_sink(Some(Arc::clone(&sink) as Arc<dyn SpanSink>));
        emit_raw("{\"name\":\"shipped\"}");
        set_sink(None);
        emit_raw("{\"name\":\"dropped\"}");
        assert_eq!(sink.lines(), vec!["{\"name\":\"shipped\"}".to_string()]);
    }

    #[test]
    fn file_sink_rotates_at_the_size_cap() {
        let _g = sink_guard();
        let dir = std::env::temp_dir().join(format!("ffmr-span-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        {
            let sink = FileSink::with_max_bytes(&path_str, 64).unwrap();
            for i in 0..8 {
                sink.emit(&format!("{{\"name\":\"padpadpadpadpad-{i}\"}}"));
            }
        }
        let rotated = std::fs::read_to_string(format!("{path_str}.1")).unwrap();
        let current = std::fs::read_to_string(&path_str).unwrap();
        assert!(!rotated.is_empty(), "rotation must have happened");
        assert!(current.len() as u64 <= 64 + 32, "current file stays capped");
        // No line is torn across the rotation boundary.
        assert!(rotated
            .lines()
            .chain(current.lines())
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn threads_get_independent_parent_stacks() {
        let _g = sink_guard();
        let sink = Arc::new(VecSink::new());
        set_sink(Some(Arc::clone(&sink) as Arc<dyn SpanSink>));
        {
            let _outer = span("outer");
            std::thread::spawn(|| {
                let _s = span("other-thread");
            })
            .join()
            .unwrap();
        }
        set_sink(None);
        let other = sink
            .lines()
            .into_iter()
            .find(|l| l.contains("other-thread"))
            .unwrap();
        assert!(
            !other.contains("\"parent\":"),
            "cross-thread spans must not inherit parents: {other}"
        );
    }
}
