//! Span tracing: named wall-clock scopes emitted as JSON lines.
//!
//! A [`Span`] measures one scope (an FF round, one MapReduce phase, one
//! query) and, when a [`SpanSink`] is installed, emits a single JSON
//! object on drop:
//!
//! ```json
//! {"name":"mr.map","id":7,"parent":6,"thread":"ffmrd-worker-0",
//!  "start_us":51234,"dur_us":890,"round":"3"}
//! ```
//!
//! * `id`/`parent` — process-unique span ids; `parent` is the innermost
//!   span still open **on the same thread** (a per-thread stack), so a
//!   driver round nests the MR job it runs, which nests its map /
//!   shuffle / reduce phases.
//! * `start_us` — microseconds since the first span of the process.
//! * extra string fields attached via [`Span::field`] appear as
//!   top-level JSON string members.
//!
//! With no sink installed (`set_sink(None)`, the default) starting a
//! span costs one relaxed atomic load and emits nothing — tracing is
//! strictly opt-in (the CLI's `--trace-file` flag).

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Receives one completed span as a JSON line (no trailing newline).
pub trait SpanSink: Send + Sync {
    /// Consumes one JSON-encoded span.
    fn emit(&self, json_line: &str);
}

/// A sink appending JSON lines to a file, flushed per span so a killed
/// daemon loses at most the spans still open.
#[derive(Debug)]
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Creates (truncates) `path` for writing.
    ///
    /// # Errors
    /// Propagates the file-creation failure.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(Self {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl SpanSink for FileSink {
    fn emit(&self, json_line: &str) {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writeln!(w, "{json_line}");
        let _ = w.flush();
    }
}

/// A sink collecting spans in memory (tests, programmatic inspection).
#[derive(Debug, Default)]
pub struct VecSink {
    lines: Mutex<Vec<String>>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The JSON lines captured so far.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl SpanSink for VecSink {
    fn emit(&self, json_line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(json_line.to_string());
    }
}

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn SpanSink>>> {
    static SINK: OnceLock<RwLock<Option<Arc<dyn SpanSink>>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(None))
}

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Installs (or with `None` removes) the process-wide span sink.
pub fn set_sink(sink: Option<Arc<dyn SpanSink>>) {
    TRACING.store(sink.is_some(), Ordering::Relaxed);
    *sink_slot()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = sink;
}

/// Whether a sink is currently installed.
#[must_use]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Opens a span named `name`. Returns an inert guard when no sink is
/// installed.
pub fn span(name: &str) -> Span {
    if !tracing_enabled() {
        return Span { inner: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    Span {
        inner: Some(SpanInner {
            name: name.to_string(),
            id,
            parent,
            start: Instant::now(),
            start_us: u64::try_from(process_epoch().elapsed().as_micros()).unwrap_or(u64::MAX),
            fields: Vec::new(),
        }),
    }
}

#[derive(Debug)]
struct SpanInner {
    name: String,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_us: u64,
    fields: Vec<(String, String)>,
}

/// An open span; closing (dropping) it emits the JSON line.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attaches a `key:"value"` string member to the emitted JSON.
    pub fn field(&mut self, key: &str, value: impl ToString) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key.to_string(), value.to_string()));
        }
    }

    /// This span's process-unique id (0 for an inert span).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Normally the top of the stack; tolerate out-of-order drops.
            if let Some(pos) = s.iter().rposition(|id| *id == inner.id) {
                s.remove(pos);
            }
        });
        let sink = sink_slot()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let Some(sink) = sink else { return };
        let mut line = String::with_capacity(128);
        line.push_str("{\"name\":\"");
        push_escaped(&mut line, &inner.name);
        line.push_str(&format!("\",\"id\":{}", inner.id));
        if let Some(parent) = inner.parent {
            line.push_str(&format!(",\"parent\":{parent}"));
        }
        line.push_str(",\"thread\":\"");
        push_escaped(
            &mut line,
            std::thread::current().name().unwrap_or("unnamed"),
        );
        line.push_str(&format!(
            "\",\"start_us\":{},\"dur_us\":{dur_us}",
            inner.start_us
        ));
        for (k, v) in &inner.fields {
            line.push_str(",\"");
            push_escaped(&mut line, k);
            line.push_str("\":\"");
            push_escaped(&mut line, v);
            line.push('"');
        }
        line.push('}');
        sink.emit(&line);
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spans share process-global state; serialize the tests touching it.
    fn sink_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn no_sink_means_inert_spans() {
        let _g = sink_guard();
        set_sink(None);
        let mut s = span("quiet");
        s.field("k", "v");
        assert_eq!(s.id(), 0);
        drop(s); // must not panic or emit
    }

    #[test]
    fn nesting_and_fields_are_emitted() {
        let _g = sink_guard();
        let sink = Arc::new(VecSink::new());
        set_sink(Some(Arc::clone(&sink) as Arc<dyn SpanSink>));
        {
            let mut outer = span("outer");
            outer.field("round", 3);
            let outer_id = outer.id();
            {
                let inner = span("inner");
                assert_ne!(inner.id(), outer_id);
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_sink(None);
        let lines = sink.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        // Children drop first.
        assert!(lines[0].contains("\"name\":\"inner\""));
        assert!(lines[0].contains("\"parent\":"));
        assert!(lines[1].contains("\"name\":\"outer\""));
        assert!(lines[1].contains("\"round\":\"3\""));
        assert!(!lines[1].contains("\"parent\":"), "outer has no parent");
        // Parent id referenced by the child matches the parent's id.
        let parent_ref = lines[0]
            .split("\"parent\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .unwrap()
            .to_string();
        assert!(lines[1].contains(&format!("\"id\":{parent_ref}")));
        // Outer duration covers the sleep.
        let dur: u64 = lines[1]
            .split("\"dur_us\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(dur >= 2_000, "dur_us={dur}");
    }

    #[test]
    fn escaping_keeps_lines_valid() {
        let _g = sink_guard();
        let sink = Arc::new(VecSink::new());
        set_sink(Some(Arc::clone(&sink) as Arc<dyn SpanSink>));
        {
            let mut s = span("weird \"name\"\n");
            s.field("path", "a\\b\tc");
        }
        set_sink(None);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].contains('\n'));
        assert!(lines[0].contains("weird \\\"name\\\"\\n"));
        assert!(lines[0].contains("a\\\\b\\tc"));
    }

    #[test]
    fn concurrent_threads_preserve_nesting_and_do_not_tear_lines() {
        let _g = sink_guard();
        let sink = Arc::new(VecSink::new());
        set_sink(Some(Arc::clone(&sink) as Arc<dyn SpanSink>));
        const THREADS: usize = 8;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..50 {
                        let _outer = span(&format!("outer-{t}-{i}"));
                        let _inner = span(&format!("inner-{t}-{i}"));
                    }
                });
            }
        });
        set_sink(None);
        let lines = sink.lines();
        assert_eq!(lines.len(), THREADS * 50 * 2, "every span emitted once");
        let member = |line: &str, key: &str| -> Option<String> {
            line.split(&format!("\"{key}\":"))
                .nth(1)
                .and_then(|s| s.split([',', '}']).next())
                .map(str::to_string)
        };
        for line in &lines {
            // No torn or interleaved writes: each captured line is one
            // complete JSON object.
            assert!(
                line.starts_with("{\"name\":\"") && line.ends_with('}'),
                "{line}"
            );
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(line.matches('{').count(), 1, "interleaved write: {line}");
        }
        for t in 0..THREADS {
            for i in 0..50 {
                let outer = lines
                    .iter()
                    .find(|l| l.contains(&format!("\"name\":\"outer-{t}-{i}\"")))
                    .expect("outer span emitted");
                let inner = lines
                    .iter()
                    .find(|l| l.contains(&format!("\"name\":\"inner-{t}-{i}\"")))
                    .expect("inner span emitted");
                // Per-thread nesting survived the concurrency: each
                // inner's parent is its own thread's outer, never a
                // span from another thread.
                assert_eq!(
                    member(inner, "parent"),
                    member(outer, "id"),
                    "outer={outer} inner={inner}"
                );
                assert_eq!(member(outer, "parent"), None, "{outer}");
            }
        }
    }

    #[test]
    fn threads_get_independent_parent_stacks() {
        let _g = sink_guard();
        let sink = Arc::new(VecSink::new());
        set_sink(Some(Arc::clone(&sink) as Arc<dyn SpanSink>));
        {
            let _outer = span("outer");
            std::thread::spawn(|| {
                let _s = span("other-thread");
            })
            .join()
            .unwrap();
        }
        set_sink(None);
        let other = sink
            .lines()
            .into_iter()
            .find(|l| l.contains("other-thread"))
            .unwrap();
        assert!(
            !other.contains("\"parent\":"),
            "cross-thread spans must not inherit parents: {other}"
        );
    }
}
