//! The per-query flight recorder: one [`QueryProfile`] per served
//! request, mirroring what [`crate::events`] does for MR task attempts.
//!
//! The serving tier (`ffmrd`) assembles a profile as a query travels
//! planner → (direct | core | full) → cache/coalescing → solver: which
//! plan was chosen and *why*, per-stage wall windows (queue wait,
//! terminal resolution, planning, solve, cache update), and the
//! solver's own execution counters. Three surfaces consume it:
//!
//! * the `explain` request flag echoes the profile on the response
//!   (`ffmr query --explain` renders it as a stage-timing tree);
//! * every profile over the daemon's slow-query threshold lands in a
//!   bounded [`SlowLog`] ring served by the `slowlog` verb, optionally
//!   persisted as JSONL through the same [`EventSink`] machinery the
//!   job recorder uses;
//! * stage durations feed the `ffmr_query_stage_us{stage}` histograms.
//!
//! The ring is bounded by [`DEFAULT_SLOWLOG_CAPACITY`], overridable via
//! the [`SLOWLOG_CAP_ENV`] environment variable (the
//! `FFMR_EVENT_RING_CAP` precedent); overwrites of unread entries bump
//! the `ffmr_query_slowlog_dropped_total` counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::events::{push_escaped, EventSink};
use crate::json::Value;

/// Default number of profiles the slow-query ring retains.
pub const DEFAULT_SLOWLOG_CAPACITY: usize = 256;

/// Environment variable overriding the slow-query ring capacity.
pub const SLOWLOG_CAP_ENV: &str = "FFMR_SLOWLOG_CAP";

/// The slow-query ring capacity: [`SLOWLOG_CAP_ENV`] when set to a
/// positive integer, [`DEFAULT_SLOWLOG_CAPACITY`] otherwise.
#[must_use]
pub fn slowlog_capacity_from_env() -> usize {
    std::env::var(SLOWLOG_CAP_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_SLOWLOG_CAPACITY)
}

/// Appends `v` in decimal without the intermediate `String` that
/// `u64::to_string` allocates — [`QueryProfile::to_json`] writes ~10
/// integers per call on the explain hot path.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut at = buf.len();
    loop {
        at -= 1;
        buf[at] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[at..]).expect("decimal digits are ASCII"));
}

/// Everything the serving tier learned about one query: the route it
/// took, where its wall time went, and what the solver did.
///
/// Durations are microseconds; `unix_ms` anchors the entry in wall
/// time for the slowlog. Solver counters not meaningful for the chosen
/// algorithm stay zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Protocol verb (`maxflow`, `mincut`).
    pub verb: String,
    /// Dataset the query ran against.
    pub dataset: String,
    /// Snapshot epoch the answer was computed on.
    pub epoch: u64,
    /// Route taken: `direct` (periphery trees), `core` (contracted
    /// 2-core), `full` (whole graph), or `-` when no solve ran.
    pub plan: String,
    /// Why that route: `periphery-direct`, `anchor-core-solve`,
    /// `cache-hit`, `planner-disabled`, `no-core-requested`,
    /// `super-terminal-query`, `mincut-needs-full-graph`,
    /// `mapreduce-pinned`, `coalesced-follower`.
    pub plan_reason: String,
    /// Solver that produced the answer (`dinic`, `parallel-pr`,
    /// `mapreduce-ff`, `periphery`, …).
    pub solver: String,
    /// Cache interaction: `hit`, `miss`, or `bypass` (`no-cache`).
    pub cache: String,
    /// The query piggybacked on another in-flight identical query.
    pub coalesced: bool,
    /// The answer completed a stashed MapReduce run.
    pub resumed: bool,
    /// `ok` or `error`.
    pub outcome: String,
    /// The error text when `outcome == "error"`.
    pub error: Option<String>,
    /// Wall-clock milliseconds since the Unix epoch at completion.
    pub unix_ms: u64,
    /// Time spent queued behind other requests before execution.
    pub queue_wait_us: u64,
    /// Terminal resolution (super-terminal BFS, id validation).
    pub resolve_us: u64,
    /// Core-index planning (anchor lookup, tree bottleneck walk).
    pub plan_us: u64,
    /// The solve itself (in-memory or simulated MapReduce wall time).
    pub solve_us: u64,
    /// Writing the answer back into the flow cache.
    pub cache_update_us: u64,
    /// End-to-end wall time including queue wait.
    pub total_us: u64,
    /// The query's deadline budget in milliseconds (0 = default).
    pub deadline_ms: u64,
    /// Solver phases (BFS rounds, Δ levels, sweeps, pulses).
    pub phases: u64,
    /// Augmenting paths pushed (Ford–Fulkerson family).
    pub augmenting_paths: u64,
    /// Push operations (push-relabel family).
    pub pushes: u64,
    /// Relabel operations (push-relabel family).
    pub relabels: u64,
    /// Global relabelings (push-relabel family).
    pub global_relabels: u64,
    /// Cancel-token polls during the solve.
    pub cancel_polls: u64,
}

impl QueryProfile {
    /// The wall-window stages in pipeline order, as
    /// `(stage, microseconds)` pairs — the shape both the
    /// `ffmr_query_stage_us{stage}` histograms and the `--explain`
    /// tree renderer consume.
    #[must_use]
    pub fn stages(&self) -> [(&'static str, u64); 5] {
        [
            ("queue_wait", self.queue_wait_us),
            ("resolve", self.resolve_us),
            ("plan", self.plan_us),
            ("solve", self.solve_us),
            ("cache_update", self.cache_update_us),
        ]
    }

    /// The non-zero solver counters as `(name, value)` pairs.
    #[must_use]
    pub fn solver_counters(&self) -> Vec<(&'static str, u64)> {
        [
            ("phases", self.phases),
            ("augmenting_paths", self.augmenting_paths),
            ("pushes", self.pushes),
            ("relabels", self.relabels),
            ("global_relabels", self.global_relabels),
            ("cancel_polls", self.cancel_polls),
        ]
        .into_iter()
        .filter(|&(_, v)| v != 0)
        .collect()
    }

    /// Encodes the profile as one single-line JSON object (the slowlog
    /// wire and persistence format). Zero solver counters and an
    /// absent `error` are omitted.
    #[must_use]
    pub fn to_json(&self) -> String {
        // 384 covers a typical line (~300 bytes with the 13-digit
        // unix_ms and a few solver counters) without a mid-build
        // realloc — this runs on the explain/slowlog hot path.
        let mut out = String::with_capacity(384);
        out.push_str("{\"verb\":\"");
        push_escaped(&mut out, &self.verb);
        out.push_str("\",\"dataset\":\"");
        push_escaped(&mut out, &self.dataset);
        out.push_str("\",\"epoch\":");
        push_u64(&mut out, self.epoch);
        out.push_str(",\"plan\":\"");
        push_escaped(&mut out, &self.plan);
        out.push_str("\",\"plan_reason\":\"");
        push_escaped(&mut out, &self.plan_reason);
        out.push_str("\",\"solver\":\"");
        push_escaped(&mut out, &self.solver);
        out.push_str("\",\"cache\":\"");
        push_escaped(&mut out, &self.cache);
        out.push_str("\",\"coalesced\":");
        out.push_str(if self.coalesced { "true" } else { "false" });
        out.push_str(",\"resumed\":");
        out.push_str(if self.resumed { "true" } else { "false" });
        out.push_str(",\"outcome\":\"");
        push_escaped(&mut out, &self.outcome);
        out.push('"');
        if let Some(error) = &self.error {
            out.push_str(",\"error\":\"");
            push_escaped(&mut out, error);
            out.push('"');
        }
        for (key, v) in [
            ("unix_ms", self.unix_ms),
            ("queue_wait_us", self.queue_wait_us),
            ("resolve_us", self.resolve_us),
            ("plan_us", self.plan_us),
            ("solve_us", self.solve_us),
            ("cache_update_us", self.cache_update_us),
            ("total_us", self.total_us),
            ("deadline_ms", self.deadline_ms),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            push_u64(&mut out, v);
        }
        for (key, v) in self.solver_counters() {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            push_u64(&mut out, v);
        }
        out.push('}');
        out
    }

    /// Decodes a profile from one JSON line produced by [`to_json`].
    ///
    /// # Errors
    /// Propagates parse errors; missing numeric fields default to 0.
    ///
    /// [`to_json`]: QueryProfile::to_json
    pub fn from_json(line: &str) -> Result<QueryProfile, String> {
        let v = Value::parse(line)?;
        let text = |key: &str| -> String {
            v.get(key)
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let int = |key: &str| -> u64 { v.get(key).and_then(Value::as_u64).unwrap_or(0) };
        let flag = |key: &str| -> bool { matches!(v.get(key), Some(Value::Bool(true))) };
        Ok(QueryProfile {
            verb: text("verb"),
            dataset: text("dataset"),
            epoch: int("epoch"),
            plan: text("plan"),
            plan_reason: text("plan_reason"),
            solver: text("solver"),
            cache: text("cache"),
            coalesced: flag("coalesced"),
            resumed: flag("resumed"),
            outcome: text("outcome"),
            error: v
                .get("error")
                .and_then(Value::as_str)
                .map(ToString::to_string),
            unix_ms: int("unix_ms"),
            queue_wait_us: int("queue_wait_us"),
            resolve_us: int("resolve_us"),
            plan_us: int("plan_us"),
            solve_us: int("solve_us"),
            cache_update_us: int("cache_update_us"),
            total_us: int("total_us"),
            deadline_ms: int("deadline_ms"),
            phases: int("phases"),
            augmenting_paths: int("augmenting_paths"),
            pushes: int("pushes"),
            relabels: int("relabels"),
            global_relabels: int("global_relabels"),
            cancel_polls: int("cancel_polls"),
        })
    }
}

/// The always-on bounded slow-query ring: profiles whose total wall
/// time crossed the daemon's threshold, oldest overwritten first.
///
/// Same design as [`crate::EventRing`]: lock-free sequencing via an
/// atomic head, per-slot `RwLock`s so a racing snapshot never blocks
/// recording, and an optional [`EventSink`] that receives each entry
/// as one JSON line for persistence.
pub struct SlowLog {
    slots: Vec<RwLock<Option<QueryProfile>>>,
    head: AtomicU64,
    sink: RwLock<Option<Arc<dyn EventSink>>>,
}

impl SlowLog {
    /// Creates a ring holding at most `capacity` profiles.
    #[must_use]
    pub fn new(capacity: usize) -> SlowLog {
        let capacity = capacity.max(1);
        // Register the drop counter up front so scrapes see an explicit
        // zero before the first wraparound, not an absent series.
        let _ = crate::global().counter("ffmr_query_slowlog_dropped_total", &[]);
        SlowLog {
            slots: (0..capacity).map(|_| RwLock::new(None)).collect(),
            head: AtomicU64::new(0),
            sink: RwLock::new(None),
        }
    }

    /// Creates a ring sized by [`slowlog_capacity_from_env`].
    #[must_use]
    pub fn from_env() -> SlowLog {
        SlowLog::new(slowlog_capacity_from_env())
    }

    /// Maximum number of retained profiles.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Installs (or clears) the JSONL persistence sink.
    pub fn set_sink(&self, sink: Option<Arc<dyn EventSink>>) {
        if let Ok(mut slot) = self.sink.write() {
            *slot = sink;
        }
    }

    /// Records one over-threshold profile: streams it to the sink (if
    /// any), appends it to the ring, and bumps the
    /// `ffmr_query_slowlog_dropped_total` counter when the append
    /// overwrites an older entry. Returns the sequence number.
    pub fn record(&self, profile: QueryProfile) -> u64 {
        if let Ok(sink) = self.sink.read() {
            if let Some(sink) = sink.as_ref() {
                sink.emit(&profile.to_json());
            }
        }
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = usize::try_from(seq % self.slots.len() as u64).unwrap_or(0);
        if let Ok(mut slot) = self.slots[idx].write() {
            *slot = Some(profile);
        }
        if seq >= self.slots.len() as u64 {
            crate::global()
                .counter("ffmr_query_slowlog_dropped_total", &[])
                .inc();
        }
        seq
    }

    /// Total number of profiles ever recorded.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Number of profiles lost to wraparound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Number of profiles currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::try_from(self.recorded().min(self.slots.len() as u64)).unwrap_or(usize::MAX)
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// The retained profiles, oldest first. Best-effort: records
    /// racing the scan may shift the window.
    #[must_use]
    pub fn snapshot(&self) -> Vec<QueryProfile> {
        let head = self.recorded();
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity(usize::try_from(head - start).unwrap_or(0));
        for seq in start..head {
            let idx = usize::try_from(seq % self.slots.len() as u64).unwrap_or(0);
            if let Ok(slot) = self.slots[idx].read() {
                if let Some(profile) = slot.as_ref() {
                    out.push(profile.clone());
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for SlowLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::new(DEFAULT_SLOWLOG_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::VecEventSink;

    fn sample(total_us: u64) -> QueryProfile {
        QueryProfile {
            verb: "maxflow".into(),
            dataset: "g".into(),
            epoch: 3,
            plan: "core".into(),
            plan_reason: "anchor-core-solve".into(),
            solver: "parallel-pr".into(),
            cache: "miss".into(),
            coalesced: false,
            resumed: false,
            outcome: "ok".into(),
            error: None,
            unix_ms: 1_700_000_000_000,
            queue_wait_us: 12,
            resolve_us: 3,
            plan_us: 5,
            solve_us: total_us.saturating_sub(25),
            cache_update_us: 5,
            total_us,
            deadline_ms: 30_000,
            phases: 7,
            pushes: 41,
            relabels: 9,
            global_relabels: 2,
            cancel_polls: 8,
            ..QueryProfile::default()
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut p = sample(90_000);
        p.error = Some("timeout after 250ms".into());
        p.outcome = "error".into();
        let line = p.to_json();
        assert!(!line.contains('\n'), "single line: {line}");
        assert_eq!(QueryProfile::from_json(&line).unwrap(), p);
    }

    #[test]
    fn zero_counters_are_omitted_but_decode_as_zero() {
        let p = QueryProfile {
            verb: "maxflow".into(),
            outcome: "ok".into(),
            ..QueryProfile::default()
        };
        let line = p.to_json();
        assert!(!line.contains("pushes"), "{line}");
        assert!(!line.contains("\"error\""), "{line}");
        let back = QueryProfile::from_json(&line).unwrap();
        assert_eq!(back.pushes, 0);
        assert_eq!(back.error, None);
    }

    #[test]
    fn stages_cover_the_pipeline_in_order() {
        let p = sample(1_000);
        let names: Vec<&str> = p.stages().iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            ["queue_wait", "resolve", "plan", "solve", "cache_update"]
        );
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let log = SlowLog::new(2);
        let before = crate::global()
            .counter("ffmr_query_slowlog_dropped_total", &[])
            .get();
        for i in 0..5 {
            log.record(sample(1_000 + i));
        }
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.len(), 2);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        // Oldest first, only the newest two survive.
        assert_eq!(snap[0].total_us, 1_003);
        assert_eq!(snap[1].total_us, 1_004);
        let after = crate::global()
            .counter("ffmr_query_slowlog_dropped_total", &[])
            .get();
        assert_eq!(after - before, 3);
    }

    #[test]
    fn sink_receives_every_record_as_jsonl() {
        let log = SlowLog::new(8);
        let sink = Arc::new(VecEventSink::new());
        log.set_sink(Some(sink.clone()));
        log.record(sample(400));
        log.record(sample(900));
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        let decoded = QueryProfile::from_json(&lines[1]).unwrap();
        assert_eq!(decoded.total_us, 900);
    }

    #[test]
    fn env_capacity_parsing_defaults_sanely() {
        // Not set in the test environment unless a harness exports it;
        // either way the result is a positive capacity.
        assert!(slowlog_capacity_from_env() > 0);
    }
}
