//! `ffmr-obs` — process-wide observability for the FFMR workspace.
//!
//! The paper's entire evaluation (Table I, Figs. 5–8) is read off
//! Hadoop's per-job counters page; this crate is our equivalent surface,
//! shared by the MapReduce runtime, the FF driver, and the `ffmrd`
//! daemon. It is deliberately **zero-dependency** (std only) and cheap
//! enough to leave on in production:
//!
//! * [`Registry`] — named [`Counter`]s (monotonic), [`Gauge`]s
//!   (settable), and [`Histogram`]s (log₂-bucketed with p50/p90/p99
//!   summaries). Registration takes a short read-mostly lock; **every
//!   record on an already-registered metric is a handful of relaxed
//!   atomic operations** — no mutex sits on any query hot path. Callers
//!   on hot paths may additionally cache the returned `Arc` handle to
//!   skip even the registration lookup.
//! * [`span()`] — lightweight wall-clock tracing: named scopes with
//!   parent/child nesting per thread, emitted as one JSON line each to a
//!   pluggable [`span::SpanSink`] (the `--trace-file` flag installs a
//!   file sink). When no sink is installed a span is a single relaxed
//!   atomic load.
//! * Prometheus text exposition ([`Registry::render_prometheus`]) and a
//!   flat key/value rendering ([`Registry::render_fields`]) for the
//!   `ffmrd` `stats` protocol verb.
//! * [`events`] — the job-history flight recorder: one structured
//!   [`events::TaskEvent`] per task attempt, kept in a bounded ring and
//!   optionally streamed to a JSONL [`events::EventSink`], aggregated
//!   per round into a [`RoundProfile`] (phase breakdown, partition
//!   skew, stragglers, critical path, speculation ROI).
//!
//! # Example
//!
//! ```
//! let reg = ffmr_obs::Registry::new();
//! reg.counter("ffmr_queries_total", &[("verb", "maxflow")]).add(2);
//! let h = reg.histogram("ffmr_query_latency_us", &[]);
//! for v in [100, 200, 400] { h.record(v); }
//! let summary = h.summary();
//! assert_eq!(summary.count, 3);
//! assert!(summary.p50 >= 100 && summary.p99 >= summary.p50);
//! let text = reg.render_prometheus();
//! assert!(text.contains("ffmr_queries_total"));
//! ```
//!
//! The process-wide registry lives behind [`global()`]; library code
//! records into it unconditionally (the overhead is atomic increments),
//! and [`Registry::set_enabled`] can still turn recording into a no-op
//! for overhead A/B measurements.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
mod json;
mod metrics;
pub mod profile;
pub mod query_profile;
mod rotate;
pub mod span;

pub use events::{EventRecorder, EventRing, EventSink, JsonlSink, TaskEvent, TaskOutcome};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricValue, Registry, HISTOGRAM_BUCKETS,
};
pub use profile::{
    DispatchNote, DistBlame, DistPathStep, PathStep, RoundProfile, SkewReport, Straggler,
};
pub use query_profile::{QueryProfile, SlowLog, DEFAULT_SLOWLOG_CAPACITY, SLOWLOG_CAP_ENV};
pub use span::{set_sink, set_trace_id, span, span_child_of, FileSink, Span, SpanSink, VecSink};

use std::sync::OnceLock;

/// The process-wide registry every FFMR layer records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
