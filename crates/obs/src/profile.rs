//! Per-round aggregation of flight-recorder events.
//!
//! A [`RoundProfile`] condenses the raw [`TaskEvent`] stream of one
//! MapReduce round into the diagnostics the paper reads off Hadoop's
//! job-history pages: a phase-duration breakdown, reduce-partition
//! skew, a straggler list, the critical path through the
//! map → shuffle → reduce barriers, and speculation ROI. Profiles are
//! persisted as JSONL (one line per round) in the FF driver's job
//! history and rendered by `ffmr report`.

use crate::events::{push_escaped, push_f64, TaskEvent, TaskOutcome};
use crate::json::Value;

/// Stragglers are attempts slower than `p75 × STRAGGLER_SLACK` of the
/// winning attempts in their phase — the same shape as the runtime's
/// default speculation trigger.
pub const STRAGGLER_PERCENTILE: f64 = 0.75;
/// Multiplier applied to the percentile baseline.
pub const STRAGGLER_SLACK: f64 = 1.5;

/// Reduce-partition byte skew for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewReport {
    /// Partition that fetched the most bytes.
    pub partition: usize,
    /// Bytes fetched by that partition.
    pub max_bytes: u64,
    /// Mean bytes fetched across all partitions.
    pub mean_bytes: f64,
    /// `max_bytes / mean_bytes` (1.0 = perfectly balanced).
    pub ratio: f64,
}

/// One attempt that ran beyond the straggler threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// `"map"` or `"reduce"`.
    pub phase: String,
    /// Task index within the phase.
    pub task: usize,
    /// Attempt number.
    pub attempt: u32,
    /// Simulated duration of the attempt, seconds.
    pub seconds: f64,
    /// The `p75 × 1.5` threshold it exceeded, seconds.
    pub threshold_seconds: f64,
}

/// One step on the round's critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// `"map"`, `"shuffle"` or `"reduce"`.
    pub phase: String,
    /// Task index within the phase.
    pub task: usize,
    /// Attempt number.
    pub attempt: u32,
    /// Simulated start, seconds from round start.
    pub sim_start: f64,
    /// Simulated end, seconds from round start.
    pub sim_end: f64,
}

/// What one completed remote dispatch cost, as observed by the
/// coordinator and the worker that ran it. All `_us` values are
/// microseconds on the driver's job clock: driver-side stamps are taken
/// there directly, worker-side window stamps are aligned with the
/// worker's heartbeat-RTT-midpoint clock offset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DispatchNote {
    /// `"map"` or `"reduce"`.
    pub phase: String,
    /// Task index within the phase.
    pub task: usize,
    /// Worker-process id that ran the dispatch.
    pub worker: u64,
    /// Whether the attempt succeeded.
    pub ok: bool,
    /// Driver clock when the dispatch entered the queue.
    pub queued_us: u64,
    /// Driver clock when the outcome was accepted.
    pub done_us: u64,
    /// Clock-aligned worker window start (first blob fetch).
    pub started_us: u64,
    /// Clock-aligned worker window end (`task-done` sent).
    pub finished_us: u64,
    /// Time the worker spent downloading job + spec blobs.
    pub fetch_us: u64,
    /// Time the worker spent uploading the result blob.
    pub push_us: u64,
    /// Driver-side spec encode + result decode time.
    pub ser_us: u64,
    /// Bytes the worker downloaded for this dispatch.
    pub bytes_in: u64,
    /// Bytes the worker uploaded for this dispatch.
    pub bytes_out: u64,
}

impl DispatchNote {
    /// Queue wait: enqueue until the worker began working on it.
    #[must_use]
    pub fn dispatch_wait_us(&self) -> u64 {
        self.started_us.saturating_sub(self.queued_us)
    }

    /// Blob movement (fetch + push) inside the worker window.
    #[must_use]
    pub fn transfer_us(&self) -> u64 {
        self.fetch_us + self.push_us
    }

    /// Worker window minus blob movement: decode + user code + encode.
    #[must_use]
    pub fn compute_us(&self) -> u64 {
        self.finished_us
            .saturating_sub(self.started_us)
            .saturating_sub(self.transfer_us())
    }

    /// Shifts every driver-clock stamp back by `offset_us` — used by
    /// the runtime to rebase coordinator stamps (process epoch) onto
    /// the job clock (microseconds since `run()` entry).
    pub fn rebase(&mut self, offset_us: u64) {
        self.queued_us = self.queued_us.saturating_sub(offset_us);
        self.done_us = self.done_us.saturating_sub(offset_us);
        self.started_us = self.started_us.saturating_sub(offset_us);
        self.finished_us = self.finished_us.saturating_sub(offset_us);
    }

    /// Encodes the note as one single-line JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str("{\"phase\":\"");
        push_escaped(&mut out, &self.phase);
        out.push_str("\",\"task\":");
        out.push_str(&self.task.to_string());
        out.push_str(",\"worker\":");
        out.push_str(&self.worker.to_string());
        out.push_str(",\"ok\":");
        out.push_str(if self.ok { "true" } else { "false" });
        for (key, value) in [
            ("queued_us", self.queued_us),
            ("done_us", self.done_us),
            ("started_us", self.started_us),
            ("finished_us", self.finished_us),
            ("fetch_us", self.fetch_us),
            ("push_us", self.push_us),
            ("ser_us", self.ser_us),
            ("bytes_in", self.bytes_in),
            ("bytes_out", self.bytes_out),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push('}');
        out
    }

    /// Decodes a note from a parsed JSON object.
    ///
    /// # Errors
    /// Names the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<DispatchNote, String> {
        let int = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("dispatch note missing integer field '{k}'"))
        };
        Ok(DispatchNote {
            phase: v
                .get("phase")
                .and_then(Value::as_str)
                .ok_or("dispatch note missing 'phase'")?
                .to_owned(),
            task: v
                .get("task")
                .and_then(Value::as_usize)
                .ok_or("dispatch note missing 'task'")?,
            worker: int("worker")?,
            ok: matches!(v.get("ok"), Some(Value::Bool(true))),
            queued_us: int("queued_us")?,
            done_us: int("done_us")?,
            started_us: int("started_us")?,
            finished_us: int("finished_us")?,
            fetch_us: int("fetch_us").unwrap_or(0),
            push_us: int("push_us").unwrap_or(0),
            ser_us: int("ser_us").unwrap_or(0),
            bytes_in: int("bytes_in").unwrap_or(0),
            bytes_out: int("bytes_out").unwrap_or(0),
        })
    }
}

/// Where a round's distributed overhead went, summed over completed
/// dispatches: the wall-clock blame split `ffmr report` prints for
/// `--workers` runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DistBlame {
    /// Driver-side spec encode + result decode, seconds.
    pub serialization_seconds: f64,
    /// Worker-side blob fetch + push, seconds.
    pub transfer_seconds: f64,
    /// Queue time between enqueue and worker pickup, seconds.
    pub dispatch_wait_seconds: f64,
    /// Worker-side decode + user code + encode, seconds.
    pub compute_seconds: f64,
}

impl DistBlame {
    /// Sum of all four shares, seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.serialization_seconds
            + self.transfer_seconds
            + self.dispatch_wait_seconds
            + self.compute_seconds
    }
}

/// One wall-clock segment of a critical-path dispatch: how the step's
/// round trip split into queue wait, blob movement and compute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistPathStep {
    /// `"<phase>/dispatch-wait"`, `"<phase>/fetch"`,
    /// `"<phase>/compute"` or `"<phase>/push"`.
    pub phase: String,
    /// Task index within the parent phase.
    pub task: usize,
    /// Worker that ran the dispatch.
    pub worker: u64,
    /// Segment start, microseconds on the job clock.
    pub start_us: u64,
    /// Segment end, microseconds on the job clock.
    pub end_us: u64,
}

/// The aggregated profile of one FF round (one MapReduce job).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundProfile {
    /// Round number within the FF run.
    pub round: usize,
    /// MapReduce job name.
    pub job: String,
    /// Simulated seconds charged to the round (cost model).
    pub sim_seconds: f64,
    /// Host wall-clock seconds the round took.
    pub wall_seconds: f64,
    /// Simulated span of the map phase, seconds.
    pub map_seconds: f64,
    /// Simulated span of the shuffle barrier, seconds.
    pub shuffle_seconds: f64,
    /// Simulated span of the reduce phase, seconds.
    pub reduce_seconds: f64,
    /// Reduce-partition byte skew, when the round had reducers.
    pub skew: Option<SkewReport>,
    /// Attempts beyond the straggler threshold, slowest first.
    pub stragglers: Vec<Straggler>,
    /// The chain of attempts that bounded the round, in time order:
    /// the last-finishing map attempt, the shuffle barrier, and the
    /// last-finishing reduce attempt. Removing any of them would
    /// shorten the round.
    pub critical_path: Vec<PathStep>,
    /// Speculative duplicates launched this round.
    pub speculative_launched: u64,
    /// Duplicates that beat their original.
    pub speculative_won: u64,
    /// Simulated seconds saved by winning duplicates (the losing
    /// original's would-be finish minus the winner's finish).
    pub speculation_saved_seconds: f64,
    /// Per-dispatch cost notes from the coordinator (distributed runs
    /// only; empty for in-process rounds and pre-distributed history).
    pub dispatches: Vec<DispatchNote>,
    /// Where the round's distributed overhead went (when dispatches
    /// were recorded).
    pub dist_blame: Option<DistBlame>,
    /// Wall-clock wait/fetch/compute/push segments of the dispatches
    /// backing the critical-path map and reduce steps.
    pub critical_path_dist: Vec<DistPathStep>,
    /// The raw events the profile was computed from.
    pub events: Vec<TaskEvent>,
}

/// Did this attempt's output count toward the phase barrier?
fn completed(e: &TaskEvent) -> bool {
    matches!(e.outcome, TaskOutcome::Ok | TaskOutcome::SpeculativeWon)
}

/// Index of `p` (0..1) into `sorted` by the nearest-rank-below rule.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).floor() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl RoundProfile {
    /// Builds the profile of one round from its events.
    #[must_use]
    pub fn compute(
        round: usize,
        job: String,
        events: Vec<TaskEvent>,
        sim_seconds: f64,
        wall_seconds: f64,
    ) -> RoundProfile {
        Self::compute_with_dispatches(round, job, events, Vec::new(), sim_seconds, wall_seconds)
    }

    /// Builds the profile of one round from its events plus the
    /// coordinator's per-dispatch notes (distributed runs): adds the
    /// distributed-overhead blame split and the wall-clock breakdown of
    /// the critical-path dispatches.
    #[must_use]
    pub fn compute_with_dispatches(
        round: usize,
        job: String,
        events: Vec<TaskEvent>,
        dispatches: Vec<DispatchNote>,
        sim_seconds: f64,
        wall_seconds: f64,
    ) -> RoundProfile {
        let mut profile = RoundProfile {
            round,
            job,
            sim_seconds,
            wall_seconds,
            ..RoundProfile::default()
        };
        profile.compute_phase_spans(&events);
        profile.compute_skew(&events);
        profile.compute_stragglers(&events);
        profile.compute_critical_path(&events);
        profile.compute_speculation(&events);
        profile.dispatches = dispatches;
        profile.compute_dist_blame();
        profile.compute_dist_path();
        profile.events = events;
        profile
    }

    fn compute_dist_blame(&mut self) {
        if self.dispatches.is_empty() {
            return;
        }
        let us = |v: u64| {
            #[allow(clippy::cast_precision_loss)]
            {
                v as f64 / 1e6
            }
        };
        let mut blame = DistBlame::default();
        for note in &self.dispatches {
            blame.serialization_seconds += us(note.ser_us);
            blame.transfer_seconds += us(note.transfer_us());
            blame.dispatch_wait_seconds += us(note.dispatch_wait_us());
            blame.compute_seconds += us(note.compute_us());
        }
        self.dist_blame = Some(blame);
    }

    /// Splits the dispatch behind each critical-path map/reduce step
    /// into its wait → fetch → compute → push wall-clock segments.
    fn compute_dist_path(&mut self) {
        for step in &self.critical_path {
            // The last successful note for the task is the attempt that
            // actually bounded the barrier (earlier ones failed).
            let Some(note) = self
                .dispatches
                .iter()
                .rfind(|n| n.ok && n.phase == step.phase && n.task == step.task)
            else {
                continue;
            };
            let fetch_end = note.started_us.saturating_add(note.fetch_us);
            let push_start = note.finished_us.saturating_sub(note.push_us);
            let segments = [
                ("dispatch-wait", note.queued_us, note.started_us),
                ("fetch", note.started_us, fetch_end),
                ("compute", fetch_end, push_start.max(fetch_end)),
                ("push", push_start.max(fetch_end), note.finished_us),
            ];
            for (kind, start_us, end_us) in segments {
                self.critical_path_dist.push(DistPathStep {
                    phase: format!("{}/{kind}", step.phase),
                    task: step.task,
                    worker: note.worker,
                    start_us,
                    end_us: end_us.max(start_us),
                });
            }
        }
    }

    fn compute_phase_spans(&mut self, events: &[TaskEvent]) {
        for phase in ["map", "shuffle", "reduce"] {
            let mut start = f64::INFINITY;
            let mut end = 0.0f64;
            for e in events.iter().filter(|e| e.phase == phase && completed(e)) {
                start = start.min(e.sim_start);
                end = end.max(e.sim_end);
            }
            let span = if end > start { end - start } else { 0.0 };
            match phase {
                "map" => self.map_seconds = span,
                "shuffle" => self.shuffle_seconds = span,
                _ => self.reduce_seconds = span,
            }
        }
    }

    fn compute_skew(&mut self, events: &[TaskEvent]) {
        let mut per_partition: Vec<(usize, u64)> = Vec::new();
        for e in events
            .iter()
            .filter(|e| e.phase == "reduce" && completed(e))
        {
            if let Some(p) = e.partition {
                if !per_partition.iter().any(|&(q, _)| q == p) {
                    per_partition.push((p, e.bytes_in));
                }
            }
        }
        if per_partition.is_empty() {
            return;
        }
        let total: u64 = per_partition.iter().map(|&(_, b)| b).sum();
        #[allow(clippy::cast_precision_loss)]
        let mean = total as f64 / per_partition.len() as f64;
        let &(partition, max_bytes) = per_partition
            .iter()
            .max_by_key(|&&(p, b)| (b, std::cmp::Reverse(p)))
            .expect("non-empty");
        #[allow(clippy::cast_precision_loss)]
        let ratio = if mean > 0.0 {
            max_bytes as f64 / mean
        } else {
            1.0
        };
        self.skew = Some(SkewReport {
            partition,
            max_bytes,
            mean_bytes: mean,
            ratio,
        });
    }

    fn compute_stragglers(&mut self, events: &[TaskEvent]) {
        for phase in ["map", "reduce"] {
            // Baseline: the duration each task's *winning* attempt took.
            let mut winners: Vec<f64> = events
                .iter()
                .filter(|e| e.phase == phase && completed(e))
                .map(TaskEvent::sim_seconds)
                .collect();
            if winners.len() < 2 {
                continue;
            }
            winners.sort_by(f64::total_cmp);
            let threshold = percentile(&winners, STRAGGLER_PERCENTILE) * STRAGGLER_SLACK;
            if threshold <= 0.0 {
                continue;
            }
            for e in events.iter().filter(|e| {
                e.phase == phase && e.outcome != TaskOutcome::Failed && e.sim_seconds() > threshold
            }) {
                self.stragglers.push(Straggler {
                    phase: e.phase.clone(),
                    task: e.task,
                    attempt: e.attempt,
                    seconds: e.sim_seconds(),
                    threshold_seconds: threshold,
                });
            }
        }
        self.stragglers
            .sort_by(|a, b| f64::total_cmp(&b.seconds, &a.seconds));
    }

    fn compute_critical_path(&mut self, events: &[TaskEvent]) {
        for phase in ["map", "shuffle", "reduce"] {
            let bound = events
                .iter()
                .filter(|e| e.phase == phase && completed(e))
                .max_by(|a, b| {
                    f64::total_cmp(&a.sim_end, &b.sim_end).then_with(|| b.task.cmp(&a.task))
                });
            if let Some(e) = bound {
                self.critical_path.push(PathStep {
                    phase: e.phase.clone(),
                    task: e.task,
                    attempt: e.attempt,
                    sim_start: e.sim_start,
                    sim_end: e.sim_end,
                });
            }
        }
    }

    fn compute_speculation(&mut self, events: &[TaskEvent]) {
        // Group per (phase, task): a task raced if it has any
        // speculative-* event; the duplicate won iff a
        // speculative-won event exists.
        let mut tasks: Vec<(&str, usize)> = events
            .iter()
            .filter(|e| {
                matches!(
                    e.outcome,
                    TaskOutcome::SpeculativeWon | TaskOutcome::SpeculativeLost
                )
            })
            .map(|e| (e.phase.as_str(), e.task))
            .collect();
        tasks.sort_unstable();
        tasks.dedup();
        for (phase, task) in tasks {
            self.speculative_launched += 1;
            let won = events.iter().find(|e| {
                e.phase == phase && e.task == task && e.outcome == TaskOutcome::SpeculativeWon
            });
            let lost = events.iter().find(|e| {
                e.phase == phase && e.task == task && e.outcome == TaskOutcome::SpeculativeLost
            });
            if let Some(w) = won {
                self.speculative_won += 1;
                if let Some(l) = lost {
                    self.speculation_saved_seconds += (l.sim_end - w.sim_end).max(0.0);
                }
            }
        }
    }

    /// Encodes the profile as one single-line JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.events.len() * 256);
        out.push_str("{\"round\":");
        out.push_str(&self.round.to_string());
        out.push_str(",\"job\":\"");
        push_escaped(&mut out, &self.job);
        out.push_str("\",\"sim_seconds\":");
        push_f64(&mut out, self.sim_seconds);
        out.push_str(",\"wall_seconds\":");
        push_f64(&mut out, self.wall_seconds);
        out.push_str(",\"map_seconds\":");
        push_f64(&mut out, self.map_seconds);
        out.push_str(",\"shuffle_seconds\":");
        push_f64(&mut out, self.shuffle_seconds);
        out.push_str(",\"reduce_seconds\":");
        push_f64(&mut out, self.reduce_seconds);
        if let Some(skew) = &self.skew {
            out.push_str(",\"skew\":{\"partition\":");
            out.push_str(&skew.partition.to_string());
            out.push_str(",\"max_bytes\":");
            out.push_str(&skew.max_bytes.to_string());
            out.push_str(",\"mean_bytes\":");
            push_f64(&mut out, skew.mean_bytes);
            out.push_str(",\"ratio\":");
            push_f64(&mut out, skew.ratio);
            out.push('}');
        }
        out.push_str(",\"stragglers\":[");
        for (i, s) in self.stragglers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"phase\":\"");
            push_escaped(&mut out, &s.phase);
            out.push_str("\",\"task\":");
            out.push_str(&s.task.to_string());
            out.push_str(",\"attempt\":");
            out.push_str(&s.attempt.to_string());
            out.push_str(",\"seconds\":");
            push_f64(&mut out, s.seconds);
            out.push_str(",\"threshold_seconds\":");
            push_f64(&mut out, s.threshold_seconds);
            out.push('}');
        }
        out.push_str("],\"critical_path\":[");
        for (i, step) in self.critical_path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"phase\":\"");
            push_escaped(&mut out, &step.phase);
            out.push_str("\",\"task\":");
            out.push_str(&step.task.to_string());
            out.push_str(",\"attempt\":");
            out.push_str(&step.attempt.to_string());
            out.push_str(",\"sim_start\":");
            push_f64(&mut out, step.sim_start);
            out.push_str(",\"sim_end\":");
            push_f64(&mut out, step.sim_end);
            out.push('}');
        }
        out.push_str("],\"speculative_launched\":");
        out.push_str(&self.speculative_launched.to_string());
        out.push_str(",\"speculative_won\":");
        out.push_str(&self.speculative_won.to_string());
        out.push_str(",\"speculation_saved_seconds\":");
        push_f64(&mut out, self.speculation_saved_seconds);
        if !self.dispatches.is_empty() {
            out.push_str(",\"dispatches\":[");
            for (i, note) in self.dispatches.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&note.to_json());
            }
            out.push(']');
        }
        if let Some(blame) = &self.dist_blame {
            out.push_str(",\"dist_blame\":{\"serialization_seconds\":");
            push_f64(&mut out, blame.serialization_seconds);
            out.push_str(",\"transfer_seconds\":");
            push_f64(&mut out, blame.transfer_seconds);
            out.push_str(",\"dispatch_wait_seconds\":");
            push_f64(&mut out, blame.dispatch_wait_seconds);
            out.push_str(",\"compute_seconds\":");
            push_f64(&mut out, blame.compute_seconds);
            out.push('}');
        }
        if !self.critical_path_dist.is_empty() {
            out.push_str(",\"critical_path_dist\":[");
            for (i, seg) in self.critical_path_dist.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"phase\":\"");
                push_escaped(&mut out, &seg.phase);
                out.push_str("\",\"task\":");
                out.push_str(&seg.task.to_string());
                out.push_str(",\"worker\":");
                out.push_str(&seg.worker.to_string());
                out.push_str(",\"start_us\":");
                out.push_str(&seg.start_us.to_string());
                out.push_str(",\"end_us\":");
                out.push_str(&seg.end_us.to_string());
                out.push('}');
            }
            out.push(']');
        }
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Decodes a profile from one JSON line.
    ///
    /// # Errors
    /// Names the first missing or ill-typed field.
    pub fn from_json(line: &str) -> Result<RoundProfile, String> {
        let v = Value::parse(line)?;
        let num = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("profile missing numeric field '{k}'"))
        };
        let mut profile = RoundProfile {
            round: v
                .get("round")
                .and_then(Value::as_usize)
                .ok_or("profile missing 'round'")?,
            job: v
                .get("job")
                .and_then(Value::as_str)
                .ok_or("profile missing 'job'")?
                .to_owned(),
            sim_seconds: num("sim_seconds")?,
            wall_seconds: num("wall_seconds")?,
            map_seconds: num("map_seconds")?,
            shuffle_seconds: num("shuffle_seconds")?,
            reduce_seconds: num("reduce_seconds")?,
            speculative_launched: v
                .get("speculative_launched")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            speculative_won: v
                .get("speculative_won")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            speculation_saved_seconds: v
                .get("speculation_saved_seconds")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            ..RoundProfile::default()
        };
        if let Some(skew) = v.get("skew") {
            profile.skew = Some(SkewReport {
                partition: skew
                    .get("partition")
                    .and_then(Value::as_usize)
                    .ok_or("skew missing 'partition'")?,
                max_bytes: skew
                    .get("max_bytes")
                    .and_then(Value::as_u64)
                    .ok_or("skew missing 'max_bytes'")?,
                mean_bytes: skew
                    .get("mean_bytes")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                ratio: skew.get("ratio").and_then(Value::as_f64).unwrap_or(1.0),
            });
        }
        for s in v
            .get("stragglers")
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            profile.stragglers.push(Straggler {
                phase: s
                    .get("phase")
                    .and_then(Value::as_str)
                    .ok_or("straggler missing 'phase'")?
                    .to_owned(),
                task: s
                    .get("task")
                    .and_then(Value::as_usize)
                    .ok_or("straggler missing 'task'")?,
                attempt: s
                    .get("attempt")
                    .and_then(Value::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .unwrap_or(0),
                seconds: s.get("seconds").and_then(Value::as_f64).unwrap_or(0.0),
                threshold_seconds: s
                    .get("threshold_seconds")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
            });
        }
        for step in v
            .get("critical_path")
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            profile.critical_path.push(PathStep {
                phase: step
                    .get("phase")
                    .and_then(Value::as_str)
                    .ok_or("path step missing 'phase'")?
                    .to_owned(),
                task: step
                    .get("task")
                    .and_then(Value::as_usize)
                    .ok_or("path step missing 'task'")?,
                attempt: step
                    .get("attempt")
                    .and_then(Value::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .unwrap_or(0),
                sim_start: step.get("sim_start").and_then(Value::as_f64).unwrap_or(0.0),
                sim_end: step.get("sim_end").and_then(Value::as_f64).unwrap_or(0.0),
            });
        }
        for note in v
            .get("dispatches")
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            profile.dispatches.push(DispatchNote::from_value(note)?);
        }
        if let Some(blame) = v.get("dist_blame") {
            let field = |k: &str| blame.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            profile.dist_blame = Some(DistBlame {
                serialization_seconds: field("serialization_seconds"),
                transfer_seconds: field("transfer_seconds"),
                dispatch_wait_seconds: field("dispatch_wait_seconds"),
                compute_seconds: field("compute_seconds"),
            });
        }
        for seg in v
            .get("critical_path_dist")
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            let int = |k: &str| {
                seg.get(k)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("dist path step missing '{k}'"))
            };
            profile.critical_path_dist.push(DistPathStep {
                phase: seg
                    .get("phase")
                    .and_then(Value::as_str)
                    .ok_or("dist path step missing 'phase'")?
                    .to_owned(),
                task: seg
                    .get("task")
                    .and_then(Value::as_usize)
                    .ok_or("dist path step missing 'task'")?,
                worker: int("worker")?,
                start_us: int("start_us")?,
                end_us: int("end_us")?,
            });
        }
        for e in v
            .get("events")
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            profile.events.push(TaskEvent::from_value(e)?);
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(
        phase: &str,
        task: usize,
        attempt: u32,
        sim_start: f64,
        sim_end: f64,
        outcome: TaskOutcome,
    ) -> TaskEvent {
        TaskEvent {
            job: "j".into(),
            phase: phase.into(),
            task,
            attempt,
            node: task,
            worker: None,
            partition: if phase == "reduce" { Some(task) } else { None },
            sim_start,
            sim_end,
            wall_start_us: 0,
            wall_end_us: 1,
            bytes_in: 100,
            bytes_out: 10,
            outcome,
        }
    }

    fn sample_events() -> Vec<TaskEvent> {
        let mut events = vec![
            event("map", 0, 0, 1.0, 2.0, TaskOutcome::Ok),
            event("map", 1, 0, 1.0, 2.1, TaskOutcome::Ok),
            event("map", 2, 0, 1.0, 2.0, TaskOutcome::Ok),
            // Straggling map task: 10x its peers.
            event("map", 3, 0, 1.0, 11.0, TaskOutcome::Ok),
            event("shuffle", 0, 0, 11.0, 12.0, TaskOutcome::Ok),
            event("reduce", 0, 0, 12.0, 13.0, TaskOutcome::Ok),
            event("reduce", 1, 0, 12.0, 13.5, TaskOutcome::Ok),
        ];
        // Skewed partition 1 fetched 4x the bytes.
        events[6].bytes_in = 400;
        events
    }

    #[test]
    fn phase_spans_cover_each_barrier() {
        let p = RoundProfile::compute(1, "j".into(), sample_events(), 14.0, 0.01);
        assert!((p.map_seconds - 10.0).abs() < 1e-9);
        assert!((p.shuffle_seconds - 1.0).abs() < 1e-9);
        assert!((p.reduce_seconds - 1.5).abs() < 1e-9);
    }

    #[test]
    fn skew_names_the_heaviest_partition() {
        let p = RoundProfile::compute(1, "j".into(), sample_events(), 14.0, 0.01);
        let skew = p.skew.expect("reduce events present");
        assert_eq!(skew.partition, 1);
        assert_eq!(skew.max_bytes, 400);
        assert!((skew.mean_bytes - 250.0).abs() < 1e-9);
        assert!((skew.ratio - 1.6).abs() < 1e-9);
    }

    #[test]
    fn stragglers_exceeding_p75_times_slack_are_listed() {
        let p = RoundProfile::compute(1, "j".into(), sample_events(), 14.0, 0.01);
        assert_eq!(p.stragglers.len(), 1);
        let s = &p.stragglers[0];
        assert_eq!((s.phase.as_str(), s.task), ("map", 3));
        assert!((s.seconds - 10.0).abs() < 1e-9);
        // p75 of [1.0, 1.0, 1.1, 10.0] by nearest-rank-below is 1.1.
        assert!((s.threshold_seconds - 1.65).abs() < 1e-9);
    }

    #[test]
    fn critical_path_walks_the_barriers_and_names_the_straggler() {
        let p = RoundProfile::compute(1, "j".into(), sample_events(), 14.0, 0.01);
        let path: Vec<(&str, usize)> = p
            .critical_path
            .iter()
            .map(|s| (s.phase.as_str(), s.task))
            .collect();
        assert_eq!(path, vec![("map", 3), ("shuffle", 0), ("reduce", 1)]);
    }

    #[test]
    fn speculation_roi_counts_wins_and_saved_seconds() {
        let mut events = sample_events();
        // Task 3's duplicate won at t=4.0; the original would have run
        // to t=11.0.
        events[3].outcome = TaskOutcome::SpeculativeLost;
        events.push(event("map", 3, 1, 2.65, 4.0, TaskOutcome::SpeculativeWon));
        // Reduce task 0 raced a duplicate but the original won.
        events.push(event(
            "reduce",
            0,
            1,
            12.5,
            14.0,
            TaskOutcome::SpeculativeLost,
        ));
        let p = RoundProfile::compute(1, "j".into(), events, 14.0, 0.01);
        assert_eq!(p.speculative_launched, 2);
        assert_eq!(p.speculative_won, 1);
        assert!((p.speculation_saved_seconds - 7.0).abs() < 1e-9);
        // The winning duplicate, not the killed original, now bounds
        // the map phase.
        let head = &p.critical_path[0];
        assert_eq!(
            (head.phase.as_str(), head.task, head.attempt),
            ("map", 3, 1)
        );
        assert!((head.sim_end - 4.0).abs() < 1e-9);
    }

    #[test]
    fn profile_json_round_trips() {
        let mut events = sample_events();
        events[3].outcome = TaskOutcome::SpeculativeLost;
        events.push(event("map", 3, 1, 2.65, 4.0, TaskOutcome::SpeculativeWon));
        let p = RoundProfile::compute(7, "round-7".into(), events, 14.0, 0.25);
        let line = p.to_json();
        assert!(!line.contains('\n'));
        let back = RoundProfile::from_json(&line).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn minimal_profile_round_trips_without_optionals() {
        let p = RoundProfile::compute(0, "r0".into(), Vec::new(), 0.0, 0.0);
        assert!(p.skew.is_none());
        assert!(p.stragglers.is_empty());
        assert!(p.critical_path.is_empty());
        assert!(p.dispatches.is_empty() && p.dist_blame.is_none());
        let back = RoundProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }

    fn note(phase: &str, task: usize, worker: u64, queued: u64, started: u64) -> DispatchNote {
        DispatchNote {
            phase: phase.into(),
            task,
            worker,
            ok: true,
            queued_us: queued,
            done_us: started + 1_000,
            started_us: started,
            finished_us: started + 900,
            fetch_us: 100,
            push_us: 50,
            ser_us: 20,
            bytes_in: 4096,
            bytes_out: 512,
        }
    }

    #[test]
    fn dispatch_notes_produce_blame_and_path_segments() {
        let events = sample_events();
        let notes = vec![
            note("map", 3, 1, 0, 200),
            note("reduce", 1, 2, 5_000, 5_300),
        ];
        let p = RoundProfile::compute_with_dispatches(1, "j".into(), events, notes, 14.0, 0.01);
        let blame = p.dist_blame.expect("notes recorded");
        // Two notes: wait 200 + 300 µs, transfer 2×150 µs, compute
        // 2×750 µs, serialization 2×20 µs.
        assert!((blame.dispatch_wait_seconds - 500e-6).abs() < 1e-12);
        assert!((blame.transfer_seconds - 300e-6).abs() < 1e-12);
        assert!((blame.compute_seconds - 1_500e-6).abs() < 1e-12);
        assert!((blame.serialization_seconds - 40e-6).abs() < 1e-12);
        // The critical-path map (task 3) and reduce (task 1) steps both
        // have notes, so each contributes 4 segments.
        assert_eq!(p.critical_path_dist.len(), 8);
        let segs: Vec<&str> = p
            .critical_path_dist
            .iter()
            .map(|s| s.phase.as_str())
            .collect();
        assert_eq!(
            &segs[..4],
            &["map/dispatch-wait", "map/fetch", "map/compute", "map/push"]
        );
        assert!(p.critical_path_dist.iter().all(|s| s.end_us >= s.start_us));

        // And everything round-trips through JSONL.
        let back = RoundProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn dispatch_note_blame_arithmetic_saturates() {
        let mut n = note("map", 0, 1, 500, 200);
        assert_eq!(n.dispatch_wait_us(), 0, "clock jitter must not underflow");
        assert_eq!(n.transfer_us(), 150);
        assert_eq!(n.compute_us(), 750);
        n.rebase(250);
        assert_eq!((n.queued_us, n.started_us), (250, 0));
    }
}
