//! Per-round aggregation of flight-recorder events.
//!
//! A [`RoundProfile`] condenses the raw [`TaskEvent`] stream of one
//! MapReduce round into the diagnostics the paper reads off Hadoop's
//! job-history pages: a phase-duration breakdown, reduce-partition
//! skew, a straggler list, the critical path through the
//! map → shuffle → reduce barriers, and speculation ROI. Profiles are
//! persisted as JSONL (one line per round) in the FF driver's job
//! history and rendered by `ffmr report`.

use crate::events::{push_escaped, push_f64, TaskEvent, TaskOutcome};
use crate::json::Value;

/// Stragglers are attempts slower than `p75 × STRAGGLER_SLACK` of the
/// winning attempts in their phase — the same shape as the runtime's
/// default speculation trigger.
pub const STRAGGLER_PERCENTILE: f64 = 0.75;
/// Multiplier applied to the percentile baseline.
pub const STRAGGLER_SLACK: f64 = 1.5;

/// Reduce-partition byte skew for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewReport {
    /// Partition that fetched the most bytes.
    pub partition: usize,
    /// Bytes fetched by that partition.
    pub max_bytes: u64,
    /// Mean bytes fetched across all partitions.
    pub mean_bytes: f64,
    /// `max_bytes / mean_bytes` (1.0 = perfectly balanced).
    pub ratio: f64,
}

/// One attempt that ran beyond the straggler threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// `"map"` or `"reduce"`.
    pub phase: String,
    /// Task index within the phase.
    pub task: usize,
    /// Attempt number.
    pub attempt: u32,
    /// Simulated duration of the attempt, seconds.
    pub seconds: f64,
    /// The `p75 × 1.5` threshold it exceeded, seconds.
    pub threshold_seconds: f64,
}

/// One step on the round's critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// `"map"`, `"shuffle"` or `"reduce"`.
    pub phase: String,
    /// Task index within the phase.
    pub task: usize,
    /// Attempt number.
    pub attempt: u32,
    /// Simulated start, seconds from round start.
    pub sim_start: f64,
    /// Simulated end, seconds from round start.
    pub sim_end: f64,
}

/// The aggregated profile of one FF round (one MapReduce job).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundProfile {
    /// Round number within the FF run.
    pub round: usize,
    /// MapReduce job name.
    pub job: String,
    /// Simulated seconds charged to the round (cost model).
    pub sim_seconds: f64,
    /// Host wall-clock seconds the round took.
    pub wall_seconds: f64,
    /// Simulated span of the map phase, seconds.
    pub map_seconds: f64,
    /// Simulated span of the shuffle barrier, seconds.
    pub shuffle_seconds: f64,
    /// Simulated span of the reduce phase, seconds.
    pub reduce_seconds: f64,
    /// Reduce-partition byte skew, when the round had reducers.
    pub skew: Option<SkewReport>,
    /// Attempts beyond the straggler threshold, slowest first.
    pub stragglers: Vec<Straggler>,
    /// The chain of attempts that bounded the round, in time order:
    /// the last-finishing map attempt, the shuffle barrier, and the
    /// last-finishing reduce attempt. Removing any of them would
    /// shorten the round.
    pub critical_path: Vec<PathStep>,
    /// Speculative duplicates launched this round.
    pub speculative_launched: u64,
    /// Duplicates that beat their original.
    pub speculative_won: u64,
    /// Simulated seconds saved by winning duplicates (the losing
    /// original's would-be finish minus the winner's finish).
    pub speculation_saved_seconds: f64,
    /// The raw events the profile was computed from.
    pub events: Vec<TaskEvent>,
}

/// Did this attempt's output count toward the phase barrier?
fn completed(e: &TaskEvent) -> bool {
    matches!(e.outcome, TaskOutcome::Ok | TaskOutcome::SpeculativeWon)
}

/// Index of `p` (0..1) into `sorted` by the nearest-rank-below rule.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).floor() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl RoundProfile {
    /// Builds the profile of one round from its events.
    #[must_use]
    pub fn compute(
        round: usize,
        job: String,
        events: Vec<TaskEvent>,
        sim_seconds: f64,
        wall_seconds: f64,
    ) -> RoundProfile {
        let mut profile = RoundProfile {
            round,
            job,
            sim_seconds,
            wall_seconds,
            ..RoundProfile::default()
        };
        profile.compute_phase_spans(&events);
        profile.compute_skew(&events);
        profile.compute_stragglers(&events);
        profile.compute_critical_path(&events);
        profile.compute_speculation(&events);
        profile.events = events;
        profile
    }

    fn compute_phase_spans(&mut self, events: &[TaskEvent]) {
        for phase in ["map", "shuffle", "reduce"] {
            let mut start = f64::INFINITY;
            let mut end = 0.0f64;
            for e in events.iter().filter(|e| e.phase == phase && completed(e)) {
                start = start.min(e.sim_start);
                end = end.max(e.sim_end);
            }
            let span = if end > start { end - start } else { 0.0 };
            match phase {
                "map" => self.map_seconds = span,
                "shuffle" => self.shuffle_seconds = span,
                _ => self.reduce_seconds = span,
            }
        }
    }

    fn compute_skew(&mut self, events: &[TaskEvent]) {
        let mut per_partition: Vec<(usize, u64)> = Vec::new();
        for e in events
            .iter()
            .filter(|e| e.phase == "reduce" && completed(e))
        {
            if let Some(p) = e.partition {
                if !per_partition.iter().any(|&(q, _)| q == p) {
                    per_partition.push((p, e.bytes_in));
                }
            }
        }
        if per_partition.is_empty() {
            return;
        }
        let total: u64 = per_partition.iter().map(|&(_, b)| b).sum();
        #[allow(clippy::cast_precision_loss)]
        let mean = total as f64 / per_partition.len() as f64;
        let &(partition, max_bytes) = per_partition
            .iter()
            .max_by_key(|&&(p, b)| (b, std::cmp::Reverse(p)))
            .expect("non-empty");
        #[allow(clippy::cast_precision_loss)]
        let ratio = if mean > 0.0 {
            max_bytes as f64 / mean
        } else {
            1.0
        };
        self.skew = Some(SkewReport {
            partition,
            max_bytes,
            mean_bytes: mean,
            ratio,
        });
    }

    fn compute_stragglers(&mut self, events: &[TaskEvent]) {
        for phase in ["map", "reduce"] {
            // Baseline: the duration each task's *winning* attempt took.
            let mut winners: Vec<f64> = events
                .iter()
                .filter(|e| e.phase == phase && completed(e))
                .map(TaskEvent::sim_seconds)
                .collect();
            if winners.len() < 2 {
                continue;
            }
            winners.sort_by(f64::total_cmp);
            let threshold = percentile(&winners, STRAGGLER_PERCENTILE) * STRAGGLER_SLACK;
            if threshold <= 0.0 {
                continue;
            }
            for e in events.iter().filter(|e| {
                e.phase == phase && e.outcome != TaskOutcome::Failed && e.sim_seconds() > threshold
            }) {
                self.stragglers.push(Straggler {
                    phase: e.phase.clone(),
                    task: e.task,
                    attempt: e.attempt,
                    seconds: e.sim_seconds(),
                    threshold_seconds: threshold,
                });
            }
        }
        self.stragglers
            .sort_by(|a, b| f64::total_cmp(&b.seconds, &a.seconds));
    }

    fn compute_critical_path(&mut self, events: &[TaskEvent]) {
        for phase in ["map", "shuffle", "reduce"] {
            let bound = events
                .iter()
                .filter(|e| e.phase == phase && completed(e))
                .max_by(|a, b| {
                    f64::total_cmp(&a.sim_end, &b.sim_end).then_with(|| b.task.cmp(&a.task))
                });
            if let Some(e) = bound {
                self.critical_path.push(PathStep {
                    phase: e.phase.clone(),
                    task: e.task,
                    attempt: e.attempt,
                    sim_start: e.sim_start,
                    sim_end: e.sim_end,
                });
            }
        }
    }

    fn compute_speculation(&mut self, events: &[TaskEvent]) {
        // Group per (phase, task): a task raced if it has any
        // speculative-* event; the duplicate won iff a
        // speculative-won event exists.
        let mut tasks: Vec<(&str, usize)> = events
            .iter()
            .filter(|e| {
                matches!(
                    e.outcome,
                    TaskOutcome::SpeculativeWon | TaskOutcome::SpeculativeLost
                )
            })
            .map(|e| (e.phase.as_str(), e.task))
            .collect();
        tasks.sort_unstable();
        tasks.dedup();
        for (phase, task) in tasks {
            self.speculative_launched += 1;
            let won = events.iter().find(|e| {
                e.phase == phase && e.task == task && e.outcome == TaskOutcome::SpeculativeWon
            });
            let lost = events.iter().find(|e| {
                e.phase == phase && e.task == task && e.outcome == TaskOutcome::SpeculativeLost
            });
            if let Some(w) = won {
                self.speculative_won += 1;
                if let Some(l) = lost {
                    self.speculation_saved_seconds += (l.sim_end - w.sim_end).max(0.0);
                }
            }
        }
    }

    /// Encodes the profile as one single-line JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.events.len() * 256);
        out.push_str("{\"round\":");
        out.push_str(&self.round.to_string());
        out.push_str(",\"job\":\"");
        push_escaped(&mut out, &self.job);
        out.push_str("\",\"sim_seconds\":");
        push_f64(&mut out, self.sim_seconds);
        out.push_str(",\"wall_seconds\":");
        push_f64(&mut out, self.wall_seconds);
        out.push_str(",\"map_seconds\":");
        push_f64(&mut out, self.map_seconds);
        out.push_str(",\"shuffle_seconds\":");
        push_f64(&mut out, self.shuffle_seconds);
        out.push_str(",\"reduce_seconds\":");
        push_f64(&mut out, self.reduce_seconds);
        if let Some(skew) = &self.skew {
            out.push_str(",\"skew\":{\"partition\":");
            out.push_str(&skew.partition.to_string());
            out.push_str(",\"max_bytes\":");
            out.push_str(&skew.max_bytes.to_string());
            out.push_str(",\"mean_bytes\":");
            push_f64(&mut out, skew.mean_bytes);
            out.push_str(",\"ratio\":");
            push_f64(&mut out, skew.ratio);
            out.push('}');
        }
        out.push_str(",\"stragglers\":[");
        for (i, s) in self.stragglers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"phase\":\"");
            push_escaped(&mut out, &s.phase);
            out.push_str("\",\"task\":");
            out.push_str(&s.task.to_string());
            out.push_str(",\"attempt\":");
            out.push_str(&s.attempt.to_string());
            out.push_str(",\"seconds\":");
            push_f64(&mut out, s.seconds);
            out.push_str(",\"threshold_seconds\":");
            push_f64(&mut out, s.threshold_seconds);
            out.push('}');
        }
        out.push_str("],\"critical_path\":[");
        for (i, step) in self.critical_path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"phase\":\"");
            push_escaped(&mut out, &step.phase);
            out.push_str("\",\"task\":");
            out.push_str(&step.task.to_string());
            out.push_str(",\"attempt\":");
            out.push_str(&step.attempt.to_string());
            out.push_str(",\"sim_start\":");
            push_f64(&mut out, step.sim_start);
            out.push_str(",\"sim_end\":");
            push_f64(&mut out, step.sim_end);
            out.push('}');
        }
        out.push_str("],\"speculative_launched\":");
        out.push_str(&self.speculative_launched.to_string());
        out.push_str(",\"speculative_won\":");
        out.push_str(&self.speculative_won.to_string());
        out.push_str(",\"speculation_saved_seconds\":");
        push_f64(&mut out, self.speculation_saved_seconds);
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Decodes a profile from one JSON line.
    ///
    /// # Errors
    /// Names the first missing or ill-typed field.
    pub fn from_json(line: &str) -> Result<RoundProfile, String> {
        let v = Value::parse(line)?;
        let num = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("profile missing numeric field '{k}'"))
        };
        let mut profile = RoundProfile {
            round: v
                .get("round")
                .and_then(Value::as_usize)
                .ok_or("profile missing 'round'")?,
            job: v
                .get("job")
                .and_then(Value::as_str)
                .ok_or("profile missing 'job'")?
                .to_owned(),
            sim_seconds: num("sim_seconds")?,
            wall_seconds: num("wall_seconds")?,
            map_seconds: num("map_seconds")?,
            shuffle_seconds: num("shuffle_seconds")?,
            reduce_seconds: num("reduce_seconds")?,
            speculative_launched: v
                .get("speculative_launched")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            speculative_won: v
                .get("speculative_won")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            speculation_saved_seconds: v
                .get("speculation_saved_seconds")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            ..RoundProfile::default()
        };
        if let Some(skew) = v.get("skew") {
            profile.skew = Some(SkewReport {
                partition: skew
                    .get("partition")
                    .and_then(Value::as_usize)
                    .ok_or("skew missing 'partition'")?,
                max_bytes: skew
                    .get("max_bytes")
                    .and_then(Value::as_u64)
                    .ok_or("skew missing 'max_bytes'")?,
                mean_bytes: skew
                    .get("mean_bytes")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                ratio: skew.get("ratio").and_then(Value::as_f64).unwrap_or(1.0),
            });
        }
        for s in v
            .get("stragglers")
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            profile.stragglers.push(Straggler {
                phase: s
                    .get("phase")
                    .and_then(Value::as_str)
                    .ok_or("straggler missing 'phase'")?
                    .to_owned(),
                task: s
                    .get("task")
                    .and_then(Value::as_usize)
                    .ok_or("straggler missing 'task'")?,
                attempt: s
                    .get("attempt")
                    .and_then(Value::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .unwrap_or(0),
                seconds: s.get("seconds").and_then(Value::as_f64).unwrap_or(0.0),
                threshold_seconds: s
                    .get("threshold_seconds")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
            });
        }
        for step in v
            .get("critical_path")
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            profile.critical_path.push(PathStep {
                phase: step
                    .get("phase")
                    .and_then(Value::as_str)
                    .ok_or("path step missing 'phase'")?
                    .to_owned(),
                task: step
                    .get("task")
                    .and_then(Value::as_usize)
                    .ok_or("path step missing 'task'")?,
                attempt: step
                    .get("attempt")
                    .and_then(Value::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .unwrap_or(0),
                sim_start: step.get("sim_start").and_then(Value::as_f64).unwrap_or(0.0),
                sim_end: step.get("sim_end").and_then(Value::as_f64).unwrap_or(0.0),
            });
        }
        for e in v
            .get("events")
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            profile.events.push(TaskEvent::from_value(e)?);
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(
        phase: &str,
        task: usize,
        attempt: u32,
        sim_start: f64,
        sim_end: f64,
        outcome: TaskOutcome,
    ) -> TaskEvent {
        TaskEvent {
            job: "j".into(),
            phase: phase.into(),
            task,
            attempt,
            node: task,
            partition: if phase == "reduce" { Some(task) } else { None },
            sim_start,
            sim_end,
            wall_start_us: 0,
            wall_end_us: 1,
            bytes_in: 100,
            bytes_out: 10,
            outcome,
        }
    }

    fn sample_events() -> Vec<TaskEvent> {
        let mut events = vec![
            event("map", 0, 0, 1.0, 2.0, TaskOutcome::Ok),
            event("map", 1, 0, 1.0, 2.1, TaskOutcome::Ok),
            event("map", 2, 0, 1.0, 2.0, TaskOutcome::Ok),
            // Straggling map task: 10x its peers.
            event("map", 3, 0, 1.0, 11.0, TaskOutcome::Ok),
            event("shuffle", 0, 0, 11.0, 12.0, TaskOutcome::Ok),
            event("reduce", 0, 0, 12.0, 13.0, TaskOutcome::Ok),
            event("reduce", 1, 0, 12.0, 13.5, TaskOutcome::Ok),
        ];
        // Skewed partition 1 fetched 4x the bytes.
        events[6].bytes_in = 400;
        events
    }

    #[test]
    fn phase_spans_cover_each_barrier() {
        let p = RoundProfile::compute(1, "j".into(), sample_events(), 14.0, 0.01);
        assert!((p.map_seconds - 10.0).abs() < 1e-9);
        assert!((p.shuffle_seconds - 1.0).abs() < 1e-9);
        assert!((p.reduce_seconds - 1.5).abs() < 1e-9);
    }

    #[test]
    fn skew_names_the_heaviest_partition() {
        let p = RoundProfile::compute(1, "j".into(), sample_events(), 14.0, 0.01);
        let skew = p.skew.expect("reduce events present");
        assert_eq!(skew.partition, 1);
        assert_eq!(skew.max_bytes, 400);
        assert!((skew.mean_bytes - 250.0).abs() < 1e-9);
        assert!((skew.ratio - 1.6).abs() < 1e-9);
    }

    #[test]
    fn stragglers_exceeding_p75_times_slack_are_listed() {
        let p = RoundProfile::compute(1, "j".into(), sample_events(), 14.0, 0.01);
        assert_eq!(p.stragglers.len(), 1);
        let s = &p.stragglers[0];
        assert_eq!((s.phase.as_str(), s.task), ("map", 3));
        assert!((s.seconds - 10.0).abs() < 1e-9);
        // p75 of [1.0, 1.0, 1.1, 10.0] by nearest-rank-below is 1.1.
        assert!((s.threshold_seconds - 1.65).abs() < 1e-9);
    }

    #[test]
    fn critical_path_walks_the_barriers_and_names_the_straggler() {
        let p = RoundProfile::compute(1, "j".into(), sample_events(), 14.0, 0.01);
        let path: Vec<(&str, usize)> = p
            .critical_path
            .iter()
            .map(|s| (s.phase.as_str(), s.task))
            .collect();
        assert_eq!(path, vec![("map", 3), ("shuffle", 0), ("reduce", 1)]);
    }

    #[test]
    fn speculation_roi_counts_wins_and_saved_seconds() {
        let mut events = sample_events();
        // Task 3's duplicate won at t=4.0; the original would have run
        // to t=11.0.
        events[3].outcome = TaskOutcome::SpeculativeLost;
        events.push(event("map", 3, 1, 2.65, 4.0, TaskOutcome::SpeculativeWon));
        // Reduce task 0 raced a duplicate but the original won.
        events.push(event(
            "reduce",
            0,
            1,
            12.5,
            14.0,
            TaskOutcome::SpeculativeLost,
        ));
        let p = RoundProfile::compute(1, "j".into(), events, 14.0, 0.01);
        assert_eq!(p.speculative_launched, 2);
        assert_eq!(p.speculative_won, 1);
        assert!((p.speculation_saved_seconds - 7.0).abs() < 1e-9);
        // The winning duplicate, not the killed original, now bounds
        // the map phase.
        let head = &p.critical_path[0];
        assert_eq!(
            (head.phase.as_str(), head.task, head.attempt),
            ("map", 3, 1)
        );
        assert!((head.sim_end - 4.0).abs() < 1e-9);
    }

    #[test]
    fn profile_json_round_trips() {
        let mut events = sample_events();
        events[3].outcome = TaskOutcome::SpeculativeLost;
        events.push(event("map", 3, 1, 2.65, 4.0, TaskOutcome::SpeculativeWon));
        let p = RoundProfile::compute(7, "round-7".into(), events, 14.0, 0.25);
        let line = p.to_json();
        assert!(!line.contains('\n'));
        let back = RoundProfile::from_json(&line).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn minimal_profile_round_trips_without_optionals() {
        let p = RoundProfile::compute(0, "r0".into(), Vec::new(), 0.0, 0.0);
        assert!(p.skew.is_none());
        assert!(p.stragglers.is_empty());
        assert!(p.critical_path.is_empty());
        let back = RoundProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }
}
