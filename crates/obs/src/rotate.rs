//! Size-capped line-oriented file writing shared by the span
//! [`FileSink`](crate::span::FileSink) and the flight recorder's
//! [`JsonlSink`](crate::events::JsonlSink).
//!
//! When an append would push the file past its cap, the current file is
//! renamed to `<path>.1` (replacing any previous rotation) and a fresh
//! file is started — a long-lived `serve` session keeps at most two
//! generations instead of growing without bound.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// A buffered line writer that rotates `path` → `path.1` at `max_bytes`.
#[derive(Debug)]
pub(crate) struct RotatingFile {
    path: PathBuf,
    max_bytes: Option<u64>,
    written: u64,
    writer: BufWriter<File>,
}

impl RotatingFile {
    /// Creates (truncates) `path`; `None` disables rotation.
    pub(crate) fn create(
        path: impl Into<PathBuf>,
        max_bytes: Option<u64>,
    ) -> std::io::Result<Self> {
        let path = path.into();
        let writer = BufWriter::new(File::create(&path)?);
        Ok(Self {
            path,
            max_bytes,
            written: 0,
            writer,
        })
    }

    /// Appends `line` plus a newline, flushing per line, rotating first
    /// if the append would exceed the cap. I/O errors are swallowed —
    /// telemetry must never take the job down.
    pub(crate) fn write_line(&mut self, line: &str) {
        let incoming = line.len() as u64 + 1;
        if let Some(cap) = self.max_bytes {
            if self.written > 0 && self.written + incoming > cap {
                self.rotate();
            }
        }
        let _ = writeln!(self.writer, "{line}");
        let _ = self.writer.flush();
        self.written += incoming;
    }

    fn rotate(&mut self) {
        let _ = self.writer.flush();
        let mut rotated = self.path.clone().into_os_string();
        rotated.push(".1");
        let _ = std::fs::rename(&self.path, &rotated);
        if let Ok(file) = File::create(&self.path) {
            self.writer = BufWriter::new(file);
            self.written = 0;
        }
    }
}
