//! The metrics registry: counters, gauges, log-bucketed histograms.
//!
//! Hot-path cost model: registering (or re-looking-up) a metric takes a
//! read-mostly `RwLock` over a `BTreeMap`; **recording** on a held
//! handle is a handful of relaxed atomic operations and never blocks.
//! Snapshots and renderings walk the maps under the read lock and read
//! each atomic individually — values recorded mid-walk may or may not be
//! included, which is the usual (and harmless) scrape semantics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of log₂ buckets a [`Histogram`] maintains: bucket 0 holds the
/// value 0, bucket `k ≥ 1` holds values in `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Self {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (queue depths, pool sizes, ages).
#[derive(Debug)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: AtomicI64,
}

impl Gauge {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Self {
            enabled,
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free latency/size histogram with log₂ buckets.
///
/// Recording touches five relaxed atomics (count, sum, min, max, one
/// bucket); quantiles are estimated from the bucket the rank falls in
/// and reported as that bucket's upper bound clamped to the observed
/// maximum — at most a 2× relative overestimate, which is plenty for
/// latency dashboards and far cheaper than exact reservoirs.
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A point-in-time digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl Histogram {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Self {
            enabled,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Values recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A snapshot of the raw bucket counters, index 0 first.
    fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Folds pre-aggregated deltas from another histogram (a worker's
    /// shipped snapshot) into this one. Bypasses the enable flag — the
    /// caller gates on the destination registry.
    fn merge_raw(&self, count: u64, sum: u64, min: u64, max: u64, buckets: &[(usize, u64)]) {
        if count == 0 {
            return;
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        self.min.fetch_min(min, Ordering::Relaxed);
        self.max.fetch_max(max, Ordering::Relaxed);
        for &(index, n) in buckets {
            self.buckets[index.min(HISTOGRAM_BUCKETS - 1)].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// A point-in-time digest with estimated p50/p90/p99.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSummary::default();
        }
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let max = self.max.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed).min(max);
        // The bucket counters may lag `count` by in-flight records; use
        // their own total so ranks stay inside the distribution.
        let total: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return max;
            }
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut cumulative = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                cumulative += n;
                if cumulative >= rank {
                    return Self::bucket_upper(i).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// One metric's identity: a base name plus sorted `key=value` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (sanitize_name(k), sanitize_label(v)))
            .collect();
        labels.sort();
        Self {
            name: sanitize_name(name),
            labels,
        }
    }

    /// `name{k="v",...}` — doubles as the Prometheus series id and the
    /// wire-protocol field key (no spaces or newlines by construction:
    /// spaces are sanitized at registration, `"`/`\`/newline are
    /// escaped here at render time).
    fn rendered(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        format!("{}{{{}}}", self.name, self.render_labels(None))
    }

    fn render_labels(&self, extra: Option<(&str, &str)>) -> String {
        let mut out = String::new();
        for (k, v) in self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra)
        {
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            push_escaped_label(&mut out, v);
            out.push('"');
        }
        out
    }
}

/// Escapes a label value per the Prometheus text-format spec: `\` as
/// `\\`, `"` as `\"`, and newline as `\n`. Stored values are escaped
/// only here, at render time, so lookups see the original text.
fn push_escaped_label(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// Metric names keep `[A-Za-z0-9_:]`; anything else becomes `_`.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Label values drop only the characters that would break the wire
/// protocol's one-line `key value` fields (space, carriage return) or
/// its `{...}` series ids (braces). `"`, `\` and newline are *kept* in
/// the stored value and escaped per the Prometheus text-format spec at
/// render time ([`push_escaped_label`]); their escaped forms contain
/// no whitespace, so rendered ids stay wire-safe.
fn sanitize_label(value: &str) -> String {
    value
        .chars()
        .map(|c| match c {
            '\r' | ' ' | '{' | '}' => '_',
            other => other,
        })
        .collect()
}

/// A snapshot value of one registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram digest.
    Histogram(HistogramSummary),
}

/// A named collection of metrics (usually the process-wide
/// [`global()`](crate::global) instance).
#[derive(Debug, Default)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    counters: RwLock<BTreeMap<MetricId, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<MetricId, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<MetricId, Arc<Histogram>>>,
}

impl Registry {
    /// An empty, enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Turns recording on or off globally. Registered handles observe
    /// the switch immediately; a disabled record is one relaxed atomic
    /// load. Used for overhead A/B measurements.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Gets or registers a counter.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let enabled = Arc::clone(&self.enabled);
        get_or_insert(&self.counters, MetricId::new(name, labels), || {
            Counter::new(enabled)
        })
    }

    /// Gets or registers a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let enabled = Arc::clone(&self.enabled);
        get_or_insert(&self.gauges, MetricId::new(name, labels), || {
            Gauge::new(enabled)
        })
    }

    /// Gets or registers a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let enabled = Arc::clone(&self.enabled);
        get_or_insert(&self.histograms, MetricId::new(name, labels), || {
            Histogram::new(enabled)
        })
    }

    /// Value of a counter series by its rendered id (`name` or
    /// `name{k="v"}`), if registered. Meant for tests and assertions.
    #[must_use]
    pub fn counter_value(&self, rendered: &str) -> Option<u64> {
        read(&self.counters)
            .iter()
            .find(|(id, _)| id.rendered() == rendered)
            .map(|(_, c)| c.get())
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// series id.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let mut out = Vec::new();
        for (id, c) in read(&self.counters).iter() {
            out.push((id.rendered(), MetricValue::Counter(c.get())));
        }
        for (id, g) in read(&self.gauges).iter() {
            out.push((id.rendered(), MetricValue::Gauge(g.get())));
        }
        for (id, h) in read(&self.histograms).iter() {
            out.push((id.rendered(), MetricValue::Histogram(h.summary())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Flat `(key, value)` pairs for the wire protocol's `stats` verb:
    /// counters and gauges render their value, histograms a
    /// `count=… sum=… min=… max=… p50=… p90=… p99=…` digest. Keys
    /// contain no spaces or newlines.
    #[must_use]
    pub fn render_fields(&self) -> Vec<(String, String)> {
        self.snapshot()
            .into_iter()
            .map(|(id, value)| {
                let rendered = match value {
                    MetricValue::Counter(v) => v.to_string(),
                    MetricValue::Gauge(v) => v.to_string(),
                    MetricValue::Histogram(s) => format!(
                        "count={} sum={} min={} max={} p50={} p90={} p99={}",
                        s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99
                    ),
                };
                (id, rendered)
            })
            .collect()
    }

    /// The Prometheus text exposition (version 0.0.4): `# TYPE` comments
    /// per metric family, counters and gauges as plain samples, and
    /// histograms as cumulative `_bucket{le="…"}` series (one per log₂
    /// bucket up to the last occupied one, then `le="+Inf"`) plus
    /// `_sum` and `_count`. The `le` bounds are each bucket's inclusive
    /// integer upper bound; `+Inf` and `_count` both report the bucket
    /// total so the exposition is internally consistent even while
    /// records are in flight.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, family: &str, kind: &str| {
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last_family = family.to_string();
            }
        };
        for (id, c) in read(&self.counters).iter() {
            type_line(&mut out, &id.name, "counter");
            out.push_str(&format!("{} {}\n", id.rendered(), c.get()));
        }
        for (id, g) in read(&self.gauges).iter() {
            type_line(&mut out, &id.name, "gauge");
            out.push_str(&format!("{} {}\n", id.rendered(), g.get()));
        }
        for (id, h) in read(&self.histograms).iter() {
            type_line(&mut out, &id.name, "histogram");
            let counts: Vec<u64> = h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            let total: u64 = counts.iter().sum();
            let mut cumulative = 0u64;
            if let Some(last) = counts.iter().rposition(|&n| n > 0) {
                for (i, n) in counts.iter().enumerate().take(last + 1) {
                    cumulative += n;
                    let le = Histogram::bucket_upper(i).to_string();
                    out.push_str(&format!(
                        "{}_bucket{{{}}} {cumulative}\n",
                        id.name,
                        id.render_labels(Some(("le", &le))),
                    ));
                }
            }
            out.push_str(&format!(
                "{}_bucket{{{}}} {total}\n",
                id.name,
                id.render_labels(Some(("le", "+Inf"))),
            ));
            let labels = if id.labels.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", id.render_labels(None))
            };
            let sum = h.sum.load(Ordering::Relaxed);
            out.push_str(&format!("{}_sum{labels} {sum}\n", id.name));
            out.push_str(&format!("{}_count{labels} {total}\n", id.name));
        }
        out
    }

    /// Serializes every non-empty metric as one tab-separated line, for
    /// shipping a worker process's registry to the coordinator:
    ///
    /// ```text
    /// c\t<value>\t<name>[\t<k>\t<v>]...
    /// g\t<value>\t<name>[\t<k>\t<v>]...
    /// h\t<count>\t<sum>\t<min>\t<max>\t<i>:<n>,...\t<name>[\t<k>\t<v>]...
    /// ```
    ///
    /// Values are cumulative since process start; the receiving side
    /// ([`Registry::merge_snapshot`]) turns them into deltas, so the
    /// shipper needs no bookkeeping between snapshots. Names and label
    /// values never contain tabs (sanitized at registration).
    #[must_use]
    pub fn encode_snapshot(&self) -> String {
        self.encode_snapshot_prefixed("")
    }

    /// Like [`Registry::encode_snapshot`] but restricted to series whose
    /// name starts with `prefix`. A worker ships its own plane
    /// (`ffmr_worker_*`) without dragging along driver-side series when
    /// it shares the process registry (in-thread bench fleets).
    #[must_use]
    pub fn encode_snapshot_prefixed(&self, prefix: &str) -> String {
        let mut out = String::new();
        let push_id = |out: &mut String, id: &MetricId| {
            out.push('\t');
            out.push_str(&id.name);
            for (k, v) in &id.labels {
                out.push('\t');
                out.push_str(k);
                out.push('\t');
                out.push_str(v);
            }
            out.push('\n');
        };
        for (id, c) in read(&self.counters).iter() {
            let v = c.get();
            if v > 0 && id.name.starts_with(prefix) {
                out.push_str(&format!("c\t{v}"));
                push_id(&mut out, id);
            }
        }
        for (id, g) in read(&self.gauges).iter() {
            if !id.name.starts_with(prefix) {
                continue;
            }
            out.push_str(&format!("g\t{}", g.get()));
            push_id(&mut out, id);
        }
        for (id, h) in read(&self.histograms).iter() {
            let count = h.count();
            if count == 0 || !id.name.starts_with(prefix) {
                continue;
            }
            let buckets = h
                .bucket_counts()
                .into_iter()
                .enumerate()
                .filter(|&(_, n)| n > 0)
                .map(|(i, n)| format!("{i}:{n}"))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "h\t{count}\t{}\t{}\t{}\t{buckets}",
                h.sum.load(Ordering::Relaxed),
                h.min
                    .load(Ordering::Relaxed)
                    .min(h.max.load(Ordering::Relaxed)),
                h.max.load(Ordering::Relaxed),
            ));
            push_id(&mut out, id);
        }
        out
    }

    /// Merges an [`Registry::encode_snapshot`] payload into this
    /// registry, attaching `extra` (e.g. `("worker", "3")`) as an
    /// additional label on every series. Counter and histogram values
    /// in the payload are cumulative; because exactly one shipper feeds
    /// each `(series, extra-label)` pair, the delta against the current
    /// local value is applied, so repeated snapshots never double-count.
    /// Gauges are set to the shipped value. Malformed lines are skipped
    /// — telemetry must never take a job down. No-op while disabled.
    pub fn merge_snapshot(&self, encoded: &str, extra: (&str, &str)) {
        if !self.enabled() {
            return;
        }
        for line in encoded.lines() {
            let mut parts = line.split('\t');
            let Some(kind) = parts.next() else { continue };
            let fixed = match kind {
                "c" | "g" => 1,
                "h" => 5,
                _ => continue,
            };
            let values: Vec<&str> = parts.by_ref().take(fixed).collect();
            if values.len() < fixed {
                continue;
            }
            let Some(name) = parts.next() else { continue };
            let mut labels: Vec<(&str, &str)> = Vec::new();
            loop {
                match (parts.next(), parts.next()) {
                    (Some(k), Some(v)) => labels.push((k, v)),
                    (None, _) => break,
                    (Some(_), None) => break,
                }
            }
            // A series already carrying the attribution key was merged
            // from somewhere else (an in-process worker snapshots the
            // registry its own merges land in); re-labeling it would
            // mint `{worker=a, worker=b}` series without bound.
            if labels.iter().any(|&(k, _)| k == extra.0) {
                continue;
            }
            labels.push(extra);
            match kind {
                "c" => {
                    let Ok(value) = values[0].parse::<u64>() else {
                        continue;
                    };
                    let counter = self.counter(name, &labels);
                    let delta = value.saturating_sub(counter.get());
                    if delta > 0 {
                        counter.add(delta);
                    }
                }
                "g" => {
                    let Ok(value) = values[0].parse::<i64>() else {
                        continue;
                    };
                    self.gauge(name, &labels).set(value);
                }
                "h" => {
                    let parsed: Option<[u64; 4]> = values[..4]
                        .iter()
                        .map(|v| v.parse::<u64>().ok())
                        .collect::<Option<Vec<_>>>()
                        .and_then(|v| v.try_into().ok());
                    let Some([count, sum, min, max]) = parsed else {
                        continue;
                    };
                    let histogram = self.histogram(name, &labels);
                    let current = histogram.bucket_counts();
                    let mut deltas = Vec::new();
                    for pair in values[4].split(',').filter(|p| !p.is_empty()) {
                        let Some((i, n)) = pair.split_once(':') else {
                            continue;
                        };
                        let (Ok(i), Ok(n)) = (i.parse::<usize>(), n.parse::<u64>()) else {
                            continue;
                        };
                        let have = current.get(i).copied().unwrap_or(0);
                        if n > have {
                            deltas.push((i, n - have));
                        }
                    }
                    histogram.merge_raw(
                        count.saturating_sub(histogram.count()),
                        sum.saturating_sub(histogram.sum.load(Ordering::Relaxed)),
                        min,
                        max,
                        &deltas,
                    );
                }
                _ => {}
            }
        }
    }
}

fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn get_or_insert<M>(
    map: &RwLock<BTreeMap<MetricId, Arc<M>>>,
    id: MetricId,
    build: impl FnOnce() -> M,
) -> Arc<M> {
    if let Some(existing) = read(map).get(&id) {
        return Arc::clone(existing);
    }
    let mut map = map
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(map.entry(id).or_insert_with(|| Arc::new(build())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("ffmr_test_total", &[("verb", "maxflow")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(
            reg.counter_value("ffmr_test_total{verb=\"maxflow\"}"),
            Some(5)
        );
        // Same name+labels resolve to the same underlying atomic.
        reg.counter("ffmr_test_total", &[("verb", "maxflow")]).inc();
        assert_eq!(c.get(), 6);
        let g = reg.gauge("ffmr_depth", &[]);
        g.set(7);
        g.sub(2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let reg = Registry::new();
        let h = reg.histogram("ffmr_lat_us", &[]);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // Log-bucket estimates overshoot by at most 2×.
        assert!((500..=1000).contains(&s.p50), "p50={}", s.p50);
        assert!((900..=1000).contains(&s.p90), "p90={}", s.p90);
        assert!((990..=1000).contains(&s.p99), "p99={}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let reg = Registry::new();
        let h = reg.histogram("ffmr_extremes", &[]);
        let empty = h.summary();
        assert_eq!(empty, HistogramSummary::default());
        h.record(0);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max), (2, 0, u64::MAX));
    }

    #[test]
    fn disabling_stops_recording() {
        let reg = Registry::new();
        let c = reg.counter("c_total", &[]);
        let h = reg.histogram("h_us", &[]);
        reg.set_enabled(false);
        c.inc();
        h.record(10);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn label_order_is_canonical_and_values_sanitized() {
        let reg = Registry::new();
        let a = reg.counter("t_total", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("t_total", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "label order must not split the series");
        let c = reg.counter("bad name", &[("k", "has \"quotes\" and\nnewlines")]);
        c.inc();
        let ids: Vec<String> = reg.snapshot().into_iter().map(|(id, _)| id).collect();
        assert!(
            ids.iter()
                .any(|id| id.starts_with("bad_name") && !id.contains(' ') && !id.contains('\n')),
            "{ids:?}"
        );
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = Registry::new();
        reg.counter("ffmr_q_total", &[("verb", "maxflow")]).add(3);
        reg.gauge("ffmr_depth", &[]).set(2);
        let h = reg.histogram("ffmr_lat_us", &[("verb", "maxflow")]);
        h.record(100);
        h.record(200);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ffmr_q_total counter"));
        assert!(text.contains("ffmr_q_total{verb=\"maxflow\"} 3"));
        assert!(text.contains("# TYPE ffmr_depth gauge"));
        assert!(text.contains("# TYPE ffmr_lat_us histogram"));
        assert!(text.contains("ffmr_lat_us_bucket{verb=\"maxflow\",le=\"+Inf\"} 2"));
        assert!(text.contains("ffmr_lat_us_count{verb=\"maxflow\"} 2"));
        assert!(text.contains("ffmr_lat_us_sum{verb=\"maxflow\"} 300"));
        // Every non-comment line is `series value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        }
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_conformant() {
        let reg = Registry::new();
        let h = reg.histogram("ffmr_lat_us", &[("verb", "maxflow")]);
        for v in [1u64, 2, 3, 200] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        // Inclusive integer upper bounds: 1 lands in le="1", 2 and 3 in
        // le="3", 200 in le="255".
        assert!(text.contains("ffmr_lat_us_bucket{verb=\"maxflow\",le=\"1\"} 1"));
        assert!(text.contains("ffmr_lat_us_bucket{verb=\"maxflow\",le=\"3\"} 3"));
        assert!(text.contains("ffmr_lat_us_bucket{verb=\"maxflow\",le=\"255\"} 4"));
        assert!(text.contains("ffmr_lat_us_bucket{verb=\"maxflow\",le=\"+Inf\"} 4"));
        assert!(text.contains("ffmr_lat_us_count{verb=\"maxflow\"} 4"));
        assert!(text.contains("ffmr_lat_us_sum{verb=\"maxflow\"} 206"));
        // Bucket counts are cumulative, hence non-decreasing, and the
        // +Inf bucket equals _count.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("ffmr_lat_us_bucket{"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(buckets.len() >= 2);
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    }

    #[test]
    fn label_values_are_escaped_at_render_time() {
        let reg = Registry::new();
        let c = reg.counter("ffmr_esc_total", &[("path", "a\\b\"c\nd")]);
        c.inc();
        let text = reg.render_prometheus();
        // Spec escaping: backslash, quote, newline.
        assert!(
            text.contains("path=\"a\\\\b\\\"c\\nd\""),
            "escaped label missing in:\n{text}"
        );
        // The escaped forms keep every series id one-line and wire-safe.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, _) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.contains(' ') && !series.contains('\n'), "{series}");
        }
        for (k, _) in reg.render_fields() {
            assert!(!k.contains(' ') && !k.contains('\n'), "key: {k}");
        }
    }

    #[test]
    fn render_fields_keys_are_wire_safe() {
        let reg = Registry::new();
        reg.counter("ffmr_a_total", &[("k", "v")]).inc();
        reg.histogram("ffmr_h_us", &[]).record(5);
        for (k, v) in reg.render_fields() {
            assert!(!k.contains(' ') && !k.contains('\n'), "key: {k}");
            assert!(!v.contains('\n'), "value: {v}");
        }
    }

    #[test]
    fn snapshot_merge_applies_deltas_with_the_extra_label() {
        let worker = Registry::new();
        worker
            .counter("ffmr_mr_records_total", &[("phase", "map")])
            .add(10);
        worker.gauge("ffmr_w_depth", &[]).set(3);
        let h = worker.histogram("ffmr_w_lat_us", &[]);
        h.record(5);
        h.record(300);

        let driver = Registry::new();
        driver.merge_snapshot(&worker.encode_snapshot(), ("worker", "2"));
        assert_eq!(
            driver.counter_value("ffmr_mr_records_total{phase=\"map\",worker=\"2\"}"),
            Some(10)
        );
        assert_eq!(driver.gauge("ffmr_w_depth", &[("worker", "2")]).get(), 3);
        let merged = driver
            .histogram("ffmr_w_lat_us", &[("worker", "2")])
            .summary();
        assert_eq!(
            (merged.count, merged.sum, merged.min, merged.max),
            (2, 305, 5, 300)
        );

        // A second snapshot with more data only applies the delta.
        worker
            .counter("ffmr_mr_records_total", &[("phase", "map")])
            .add(7);
        h.record(80);
        driver.merge_snapshot(&worker.encode_snapshot(), ("worker", "2"));
        driver.merge_snapshot(&worker.encode_snapshot(), ("worker", "2"));
        assert_eq!(
            driver.counter_value("ffmr_mr_records_total{phase=\"map\",worker=\"2\"}"),
            Some(17)
        );
        let merged = driver
            .histogram("ffmr_w_lat_us", &[("worker", "2")])
            .summary();
        assert_eq!((merged.count, merged.sum), (3, 385));

        // Malformed lines and unknown kinds are skipped, not fatal.
        driver.merge_snapshot(
            "x\t1\tbogus\nc\tnot-a-number\tz_total\nc\t5",
            ("worker", "2"),
        );
        assert_eq!(driver.counter_value("z_total{worker=\"2\"}"), None);
    }

    #[test]
    fn merge_snapshot_is_a_noop_while_disabled() {
        let worker = Registry::new();
        worker.counter("w_total", &[]).add(4);
        let driver = Registry::new();
        driver.set_enabled(false);
        driver.merge_snapshot(&worker.encode_snapshot(), ("worker", "1"));
        assert_eq!(driver.counter_value("w_total{worker=\"1\"}"), None);
    }

    #[test]
    fn concurrent_recording_is_exact_for_counters() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("ffmr_conc_total", &[]);
        let h = reg.histogram("ffmr_conc_us", &[]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i & 1023);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.summary().count, 80_000);
    }
}
