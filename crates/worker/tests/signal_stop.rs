//! The signal-driven shutdown path, isolated in its own test binary:
//! the signal flag is process-global, so it must not race the other
//! integration tests' in-thread workers.

use std::time::Duration;

use ffmr_worker::{run_worker, Coordinator, CoordinatorConfig, JobKindRegistry, WorkerConfig};

#[test]
fn signal_flag_stops_a_worker_loop() {
    ffmr_worker::signals::install();
    let coordinator = Coordinator::start(CoordinatorConfig::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let worker =
        std::thread::spawn(move || run_worker(&WorkerConfig::new(addr), &JobKindRegistry::new()));
    assert!(coordinator.wait_for_workers(1, Duration::from_secs(10)));

    // Stand in for SIGTERM delivery: the handler does exactly this.
    ffmr_worker::signals::set_requested(true);
    worker.join().unwrap().unwrap();
    ffmr_worker::signals::set_requested(false);
    coordinator.shutdown();
}
