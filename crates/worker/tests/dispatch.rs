//! Integration tests for the task-dispatch subsystem: a coordinator and
//! in-thread workers talking over real localhost TCP.

use std::sync::Arc;
use std::time::Duration;

use ffmr_service::{status, Client, Message};
use ffmr_worker::{run_worker, Coordinator, CoordinatorConfig, JobKindRegistry, WorkerConfig};
use mapreduce::{
    MapTaskResult, MapTaskSpec, MrError, ReduceTaskResult, ReduceTaskSpec, SpillRun, TaskExecutor,
    TaskRunner, WireSpec,
};

/// A deterministic test job: XORs every input byte with a mask taken
/// from the wire params.
struct XorRunner {
    mask: u8,
}

impl TaskRunner for XorRunner {
    fn run_map(&self, spec: &MapTaskSpec) -> Result<MapTaskResult, MrError> {
        let data: Vec<u8> = spec.input.iter().map(|b| b ^ self.mask).collect();
        let records = data.len() as u64;
        Ok(MapTaskResult {
            spills: vec![SpillRun { data, records }],
            input_records: 1,
            output_records: records,
            allocs: 0,
            counters: vec![("xor_bytes".to_string(), records)],
            captured: vec![("svc".to_string(), vec![vec![self.mask]])],
        })
    }

    fn run_reduce(&self, spec: &ReduceTaskSpec) -> Result<ReduceTaskResult, MrError> {
        let mut data = Vec::new();
        for run in &spec.spills {
            data.extend(run.data.iter().map(|b| b ^ self.mask));
        }
        let records = data.len() as u64;
        Ok(ReduceTaskResult {
            data,
            records,
            allocs: 0,
            merge_fanin: spec.spills.len() as u64,
            counters: Vec::new(),
            captured: Vec::new(),
        })
    }
}

fn test_registry() -> JobKindRegistry {
    let mut registry = JobKindRegistry::new();
    registry.register("xor", |params| {
        Ok(Box::new(XorRunner {
            mask: params.first().copied().unwrap_or(0),
        }) as Box<dyn TaskRunner>)
    });
    registry.register("boom", |_params| {
        struct Boom;
        impl TaskRunner for Boom {
            fn run_map(&self, _: &MapTaskSpec) -> Result<MapTaskResult, MrError> {
                panic!("synthetic task panic");
            }
            fn run_reduce(&self, _: &ReduceTaskSpec) -> Result<ReduceTaskResult, MrError> {
                panic!("synthetic task panic");
            }
        }
        Ok(Box::new(Boom) as Box<dyn TaskRunner>)
    });
    registry
}

fn spawn_worker(addr: String) -> std::thread::JoinHandle<Result<(), MrError>> {
    std::thread::spawn(move || run_worker(&WorkerConfig::new(addr), &test_registry()))
}

#[test]
fn executor_round_trips_map_and_reduce_through_a_worker() {
    let coordinator = Coordinator::start(CoordinatorConfig::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let w1 = spawn_worker(addr.clone());
    let w2 = spawn_worker(addr);
    assert!(coordinator.wait_for_workers(2, Duration::from_secs(10)));

    let executor = coordinator.executor();
    let wire = WireSpec {
        kind: "xor".to_string(),
        params: vec![0x5a],
    };

    // Large enough to force multi-chunk blob transfer both directions
    // (chunk cap is 256 KiB raw).
    let input: Vec<u8> = (0..600_000u32).map(|i| (i % 251) as u8).collect();
    let map = executor
        .execute_map(
            &wire,
            MapTaskSpec {
                task: 0,
                reducers: 2,
                input: input.clone(),
            },
        )
        .unwrap();
    assert_eq!(map.spills.len(), 1);
    assert_eq!(map.spills[0].data.len(), input.len());
    assert!(map.spills[0]
        .data
        .iter()
        .zip(&input)
        .all(|(out, inp)| out == &(inp ^ 0x5a)));
    assert_eq!(map.counters, vec![("xor_bytes".to_string(), 600_000)]);
    assert_eq!(map.captured, vec![("svc".to_string(), vec![vec![0x5a]])]);

    let reduce = executor
        .execute_reduce(
            &wire,
            ReduceTaskSpec {
                task: 1,
                spills: map.spills,
                schimmy: None,
            },
        )
        .unwrap();
    assert_eq!(reduce.data, input, "xor twice is identity");
    assert_eq!(reduce.merge_fanin, 1);

    coordinator.shutdown();
    w1.join().unwrap().unwrap();
    w2.join().unwrap().unwrap();
}

#[test]
fn worker_panic_surfaces_as_task_failed_not_a_hang() {
    let coordinator = Coordinator::start(CoordinatorConfig::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let worker = spawn_worker(addr);
    assert!(coordinator.wait_for_workers(1, Duration::from_secs(10)));

    let executor = coordinator.executor();
    let wire = WireSpec {
        kind: "boom".to_string(),
        params: Vec::new(),
    };
    let err = executor
        .execute_map(
            &wire,
            MapTaskSpec {
                task: 3,
                reducers: 1,
                input: vec![1, 2, 3],
            },
        )
        .unwrap_err();
    match err {
        MrError::TaskFailed { phase, message, .. } => {
            assert_eq!(phase, "map");
            assert!(message.contains("synthetic task panic"), "{message}");
        }
        other => panic!("expected TaskFailed, got {other}"),
    }

    // The worker survives its task panicking and keeps serving.
    let ok = executor
        .execute_map(
            &WireSpec {
                kind: "xor".to_string(),
                params: vec![1],
            },
            MapTaskSpec {
                task: 0,
                reducers: 1,
                input: vec![0],
            },
        )
        .unwrap();
    assert_eq!(ok.spills[0].data, vec![1]);

    coordinator.shutdown();
    worker.join().unwrap().unwrap();
}

#[test]
fn unregistered_job_kind_fails_the_dispatch_with_a_typed_error() {
    let coordinator = Coordinator::start(CoordinatorConfig::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let worker = spawn_worker(addr);
    assert!(coordinator.wait_for_workers(1, Duration::from_secs(10)));

    let err = coordinator
        .executor()
        .execute_map(
            &WireSpec {
                kind: "no-such-kind".to_string(),
                params: Vec::new(),
            },
            MapTaskSpec {
                task: 0,
                reducers: 1,
                input: Vec::new(),
            },
        )
        .unwrap_err();
    match err {
        MrError::TaskFailed { message, .. } => {
            assert!(message.contains("no-such-kind"), "{message}");
        }
        other => panic!("expected TaskFailed, got {other}"),
    }

    coordinator.shutdown();
    worker.join().unwrap().unwrap();
}

#[test]
fn connection_drop_fails_inflight_dispatches_for_retry() {
    let coordinator = Coordinator::start(CoordinatorConfig::default()).unwrap();
    let addr = coordinator.local_addr();

    // A fake worker that registers, grabs the dispatch, then vanishes
    // (dropping the TCP connection like a kill -9 would).
    let mut fake = Client::connect(addr).unwrap();
    let reply = fake.request(&Message::new("register")).unwrap();
    assert_eq!(reply.head, status::OK);
    let worker_id: u64 = reply.get_parsed("worker").unwrap().unwrap();

    let executor = coordinator.executor();
    let pending = std::thread::spawn(move || {
        executor.execute_map(
            &WireSpec {
                kind: "xor".to_string(),
                params: vec![1],
            },
            MapTaskSpec {
                task: 7,
                reducers: 1,
                input: vec![9],
            },
        )
    });

    // Poll until the dispatch is handed to the fake worker.
    loop {
        let resp = fake
            .request(&Message::new("task-request").field("worker", worker_id))
            .unwrap();
        assert_eq!(resp.head, status::OK);
        if resp.get("dispatch").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(fake); // connection closed: the coordinator must declare death

    let err = pending.join().unwrap().unwrap_err();
    match err {
        MrError::TaskFailed {
            phase,
            task,
            message,
        } => {
            assert_eq!(phase, "map");
            assert_eq!(task, 7);
            assert!(message.contains("died"), "{message}");
        }
        other => panic!("expected TaskFailed, got {other}"),
    }
    assert_eq!(coordinator.worker_deaths(), 1);
    assert_eq!(coordinator.live_workers(), 0);
    coordinator.shutdown();
}

#[test]
fn heartbeat_silence_declares_a_worker_dead() {
    let coordinator = Coordinator::start(CoordinatorConfig {
        heartbeat_timeout: Duration::from_millis(250),
        ..CoordinatorConfig::default()
    })
    .unwrap();
    let addr = coordinator.local_addr();

    // This fake worker keeps its connection open but never heartbeats
    // after taking the task — only the monitor can catch it.
    let mut fake = Client::connect(addr).unwrap();
    let reply = fake.request(&Message::new("register")).unwrap();
    let worker_id: u64 = reply.get_parsed("worker").unwrap().unwrap();

    let executor = coordinator.executor();
    let pending = std::thread::spawn(move || {
        executor.execute_map(
            &WireSpec {
                kind: "xor".to_string(),
                params: vec![1],
            },
            MapTaskSpec {
                task: 0,
                reducers: 1,
                input: vec![9],
            },
        )
    });
    loop {
        let resp = fake
            .request(&Message::new("task-request").field("worker", worker_id))
            .unwrap();
        if resp.get("dispatch").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let err = pending.join().unwrap().unwrap_err();
    match err {
        MrError::TaskFailed { message, .. } => {
            assert!(message.contains("heartbeat timeout"), "{message}");
        }
        other => panic!("expected TaskFailed, got {other}"),
    }

    // The zombie's later report refers to a retired dispatch id and is
    // acknowledged but ignored; its next task-request is rejected.
    let stale = fake
        .request(
            &Message::new("task-done")
                .field("worker", worker_id)
                .field("dispatch", 0)
                .field("status", "ok"),
        )
        .unwrap();
    assert_eq!(stale.head, status::OK);
    let rejected = fake
        .request(&Message::new("task-request").field("worker", worker_id))
        .unwrap();
    assert_eq!(rejected.head, status::ERROR);
    coordinator.shutdown();
}

#[test]
fn no_live_workers_times_out_instead_of_hanging() {
    let coordinator = Coordinator::start(CoordinatorConfig {
        dead_cluster_timeout: Duration::from_millis(300),
        ..CoordinatorConfig::default()
    })
    .unwrap();
    let err = coordinator
        .executor()
        .execute_map(
            &WireSpec {
                kind: "xor".to_string(),
                params: Vec::new(),
            },
            MapTaskSpec {
                task: 0,
                reducers: 1,
                input: Vec::new(),
            },
        )
        .unwrap_err();
    match err {
        MrError::TaskFailed { message, .. } => {
            assert!(message.contains("no live workers"), "{message}");
        }
        other => panic!("expected TaskFailed, got {other}"),
    }
    coordinator.shutdown();
}

#[test]
fn protocol_abuse_gets_error_responses_not_crashes() {
    let coordinator = Coordinator::start(CoordinatorConfig::default()).unwrap();
    let mut client = Client::connect(coordinator.local_addr()).unwrap();

    let cases = [
        Message::new("frobnicate"),
        Message::new("heartbeat"),
        Message::new("heartbeat").field("worker", "not-a-number"),
        Message::new("task-request").field("worker", 999),
        Message::new("blob-get")
            .field("name", "nope")
            .field("offset", 0),
        Message::new("blob-get").field("offset", 0),
        Message::new("blob-put")
            .field("name", "x")
            .field("offset", 0)
            .field("data", "!!notbase64!!")
            .field("last", 1),
        Message::new("blob-put")
            .field("name", "x")
            .field("offset", 17)
            .field("data", "")
            .field("last", 1),
        Message::new("task-done").field("worker", 0),
    ];
    for request in cases {
        let resp = client.request(&request).unwrap();
        assert_eq!(resp.head, status::ERROR, "request {:?}", request.head);
        assert!(resp.get("message").is_some());
    }

    // The connection is still healthy after all that abuse.
    let ok = client.request(&Message::new("register")).unwrap();
    assert_eq!(ok.head, status::OK);
    coordinator.shutdown();
}

#[test]
fn ff_round_task_is_byte_identical_local_and_remote() {
    use ffmr_core::map_reduce_fns::FfShared;
    use ffmr_core::{AugmentedEdges, FfVariant, KPolicy};
    use mapreduce::encode::put_varint;
    use mapreduce::Datum;

    let shared = FfShared {
        source: 0,
        sink: 5,
        variant: FfVariant::ff5(),
        k_policy: KPolicy::InDegree,
        bidirectional: true,
        extend_all_paths: false,
    };
    let params = ffmr_core::ff_wire_params(&shared, &AugmentedEdges::new(8));

    // One master record for the source vertex with two outgoing edges.
    let vertex = ffmr_core::VertexValue {
        source_paths: vec![ffmr_core::ExcessPath::empty()],
        sink_paths: Vec::new(),
        edges: (1u64..3)
            .map(|to| ffmr_core::VertexEdge {
                to,
                eid: swgraph::EdgeId::new(to),
                flow: 0,
                cap: 1,
                rev_cap: 1,
                sent_source: None,
                sent_sink: None,
            })
            .collect(),
    };
    let mut input = Vec::new();
    let key = 0u64;
    put_varint(key.encoded_len() as u64, &mut input);
    Datum::encode(&key, &mut input);
    put_varint(vertex.encoded_len() as u64, &mut input);
    Datum::encode(&vertex, &mut input);
    let spec = MapTaskSpec {
        task: 0,
        reducers: 4,
        input,
    };

    let local = ffmr_core::ff_task_runner(&params)
        .unwrap()
        .run_map(&spec)
        .unwrap();

    let coordinator = Coordinator::start(CoordinatorConfig::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let worker = std::thread::spawn(move || {
        let mut registry = JobKindRegistry::new();
        registry.register(ffmr_core::FF_JOB_KIND, ffmr_core::ff_task_runner);
        run_worker(&WorkerConfig::new(addr), &registry)
    });
    assert!(coordinator.wait_for_workers(1, Duration::from_secs(10)));
    let remote = coordinator
        .executor()
        .execute_map(
            &WireSpec {
                kind: ffmr_core::FF_JOB_KIND.to_string(),
                params,
            },
            spec,
        )
        .unwrap();
    assert_eq!(local.to_bytes(), remote.to_bytes(), "task output diverged");

    coordinator.shutdown();
    worker.join().unwrap().unwrap();
}

/// `Arc<RemoteExecutor>` must be shareable across the runtime's task
/// threads.
#[test]
fn executor_is_shared_across_threads() {
    let coordinator = Coordinator::start(CoordinatorConfig::default()).unwrap();
    let addr = coordinator.local_addr().to_string();
    let w1 = spawn_worker(addr.clone());
    let w2 = spawn_worker(addr);
    assert!(coordinator.wait_for_workers(2, Duration::from_secs(10)));

    let executor: Arc<dyn TaskExecutor> = coordinator.executor();
    let handles: Vec<_> = (0..8u8)
        .map(|mask| {
            let executor = Arc::clone(&executor);
            std::thread::spawn(move || {
                executor.execute_map(
                    &WireSpec {
                        kind: "xor".to_string(),
                        params: vec![mask],
                    },
                    MapTaskSpec {
                        task: mask as usize,
                        reducers: 1,
                        input: vec![0u8; 64],
                    },
                )
            })
        })
        .collect();
    for (mask, handle) in handles.into_iter().enumerate() {
        let result = handle.join().unwrap().unwrap();
        assert!(result.spills[0].data.iter().all(|&b| b == mask as u8));
    }
    coordinator.shutdown();
    w1.join().unwrap().unwrap();
    w2.join().unwrap().unwrap();
}
