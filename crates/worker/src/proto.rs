//! The task-dispatch protocol spoken between the coordinator and worker
//! processes, layered on the ffmrd wire format (`ffmr-service`'s
//! length-prefixed [`Message`](ffmr_service::Message) frames).
//!
//! Verbs (all requests are worker → coordinator; the coordinator only
//! ever answers):
//!
//! | head           | request fields                                  | ok-response fields                  |
//! |----------------|--------------------------------------------------|-------------------------------------|
//! | `register`     | [`now-us <t>`]                                   | `worker <id>`                       |
//! | `heartbeat`    | `worker <id>` [`now-us <t>` `rtt-us <r>`]        | —                                   |
//! | `task-request` | `worker <id>`                                    | `dispatch <id>` + `phase map\|reduce` [+ `trace <t>` `span <s>`], or `none 1`, or `shutdown 1` |
//! | `blob-get`     | `name <n>` `offset <o>`                          | `data <b64>` `len <total>` `more 0\|1` |
//! | `blob-put`     | `name <n>` `offset <o>` `data <b64>` `last 0\|1` | —                                   |
//! | `task-done`    | `worker <id>` `dispatch <id>` `status ok\|err` [`message <m>`] + telemetry (below) | — |
//! | `telemetry`    | `worker <id>` [`metrics <b64>`] [`spans <b64>`]  | —                                   |
//! | `workers`      | —                                                | `queue-depth <n>` + per worker: `worker <id>` `state …` `hb-age-ms …` `rtt-us …` `offset-us …` `inflight …` `tasks-ok …` `tasks-failed …` `bytes-in …` `bytes-out …` |
//!
//! ## Telemetry piggybacked on `task-done`
//!
//! When the worker measured the dispatch it adds `t-start-us`,
//! `t-end-us` (its own process clock), `t-fetch-us`, `t-push-us`,
//! `t-bytes-in`, `t-bytes-out`, plus optionally `metrics` (base64 of
//! its registry's cumulative snapshot, see
//! `Registry::encode_snapshot`) and `spans` (base64 of captured span
//! JSONL). The coordinator aligns the worker-clock window with the
//! per-worker offset estimated from heartbeats (`now-us` = worker
//! clock at send, `rtt-us` = worker-measured round trip of the
//! *previous* beat; offset = driver receive time − (`now-us` +
//! rtt/2), keeping the minimum-RTT sample). The `telemetry` verb
//! carries the same `metrics`/`spans` payloads as a final flush on
//! shutdown. The `workers` verb is the read side (driver tools, not
//! workers): a point-in-time table for `ffmr top`.
//!
//! Blobs move in chunks of at most [`RAW_CHUNK_BYTES`] raw bytes per
//! frame: base64 inflates 3→4 and `write_frame` *asserts* payloads stay
//! under `MAX_FRAME_BYTES` (1 MiB), so the chunk size leaves generous
//! headroom (256 KiB raw → ~342 KiB encoded).
//!
//! Per dispatch `<d>` the coordinator stages blobs `task/<d>/job` (the
//! job kind + wire params, see [`encode_job_blob`]) and `task/<d>/spec`
//! (the encoded `MapTaskSpec`/`ReduceTaskSpec`); the worker pushes
//! `task/<d>/result` before reporting `task-done`. Dispatch ids are
//! fresh per attempt, so a `task-done` for a dispatch the coordinator
//! has already failed (worker declared dead, task re-dispatched) refers
//! to a retired id and is ignored — retries stay exactly-once.

use mapreduce::encode::{get_bytes, put_bytes};
use mapreduce::error::DecodeError;

/// Largest raw (pre-base64) blob chunk carried in one frame.
pub const RAW_CHUNK_BYTES: usize = 256 * 1024;

/// Request heads.
pub mod verb {
    /// Announce a new worker; response carries its id.
    pub const REGISTER: &str = "register";
    /// Liveness ping from a worker's heartbeat thread.
    pub const HEARTBEAT: &str = "heartbeat";
    /// Ask for a task to run.
    pub const TASK_REQUEST: &str = "task-request";
    /// Fetch one chunk of a staged blob.
    pub const BLOB_GET: &str = "blob-get";
    /// Append one chunk to an uploaded blob.
    pub const BLOB_PUT: &str = "blob-put";
    /// Report a dispatch finished (ok or err).
    pub const TASK_DONE: &str = "task-done";
    /// Ship metrics/span telemetry outside a dispatch (shutdown flush).
    pub const TELEMETRY: &str = "telemetry";
    /// Point-in-time per-worker cluster table (`ffmr top`).
    pub const WORKERS: &str = "workers";
}

/// Name of the job blob staged for dispatch `d`.
#[must_use]
pub fn job_blob(dispatch: u64) -> String {
    format!("task/{dispatch}/job")
}

/// Name of the task-spec blob staged for dispatch `d`.
#[must_use]
pub fn spec_blob(dispatch: u64) -> String {
    format!("task/{dispatch}/spec")
}

/// Name of the result blob a worker uploads for dispatch `d`.
#[must_use]
pub fn result_blob(dispatch: u64) -> String {
    format!("task/{dispatch}/result")
}

/// Packs a job's wire kind and parameter blob into the `task/<d>/job`
/// blob body.
#[must_use]
pub fn encode_job_blob(kind: &str, params: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(kind.len() + params.len() + 8);
    put_bytes(kind.as_bytes(), &mut buf);
    put_bytes(params, &mut buf);
    buf
}

/// Unpacks [`encode_job_blob`] bytes into `(kind, params)`.
///
/// # Errors
/// On truncated, trailing or non-UTF-8 kind bytes.
pub fn decode_job_blob(mut input: &[u8]) -> Result<(String, Vec<u8>), DecodeError> {
    let kind = std::str::from_utf8(get_bytes(&mut input)?)
        .map_err(|_| DecodeError::new("job kind is not utf-8"))?
        .to_string();
    let params = get_bytes(&mut input)?.to_vec();
    if !input.is_empty() {
        return Err(DecodeError::new("trailing bytes after job blob"));
    }
    Ok((kind, params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_blob_round_trip() {
        let bytes = encode_job_blob("ff", &[9, 8, 7]);
        let (kind, params) = decode_job_blob(&bytes).unwrap();
        assert_eq!(kind, "ff");
        assert_eq!(params, vec![9, 8, 7]);
        for cut in 0..bytes.len() {
            assert!(decode_job_blob(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(decode_job_blob(&padded).is_err());
    }

    #[test]
    fn blob_names_are_distinct_per_dispatch() {
        assert_eq!(job_blob(7), "task/7/job");
        assert_eq!(spec_blob(7), "task/7/spec");
        assert_eq!(result_blob(7), "task/7/result");
        assert_ne!(result_blob(7), result_blob(8));
    }
}
