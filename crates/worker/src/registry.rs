//! The job-kind registry: how a worker process turns a wire-shipped
//! `(kind, params)` pair back into runnable mapper/reducer code.
//!
//! Closures cannot cross a process boundary, so distributed jobs carry a
//! [`WireSpec`](mapreduce::WireSpec) naming a *job kind* plus an opaque
//! parameter blob. Every worker process holds a registry mapping kind →
//! factory; the factory deserializes the parameters and rebuilds the
//! exact [`TaskRunner`] the driver would have run in process. The `ffmr`
//! binary registers `ffmr_core::FF_JOB_KIND` → `ffmr_core::ff_task_runner`;
//! tests register their own kinds.

use std::collections::HashMap;
use std::sync::Arc;

use mapreduce::{MrError, TaskRunner};

/// A factory rebuilding a [`TaskRunner`] from wire parameter bytes.
pub type RunnerFactory = Arc<dyn Fn(&[u8]) -> Result<Box<dyn TaskRunner>, MrError> + Send + Sync>;

/// Maps job-kind names to [`RunnerFactory`] functions.
#[derive(Clone, Default)]
pub struct JobKindRegistry {
    factories: HashMap<String, RunnerFactory>,
}

impl JobKindRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `factory` under `kind`, replacing any previous entry.
    pub fn register(
        &mut self,
        kind: impl Into<String>,
        factory: impl Fn(&[u8]) -> Result<Box<dyn TaskRunner>, MrError> + Send + Sync + 'static,
    ) {
        self.factories.insert(kind.into(), Arc::new(factory));
    }

    /// Builds a runner for `kind` from `params`.
    ///
    /// # Errors
    /// [`MrError::Wire`] for an unregistered kind; whatever the factory
    /// returns for malformed parameters.
    pub fn build(&self, kind: &str, params: &[u8]) -> Result<Box<dyn TaskRunner>, MrError> {
        match self.factories.get(kind) {
            Some(factory) => factory(params),
            None => Err(MrError::Wire(format!(
                "job kind {kind:?} not registered in this worker"
            ))),
        }
    }

    /// The registered kind names, sorted (for logs and error messages).
    #[must_use]
    pub fn kinds(&self) -> Vec<String> {
        let mut kinds: Vec<String> = self.factories.keys().cloned().collect();
        kinds.sort();
        kinds
    }
}

impl std::fmt::Debug for JobKindRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobKindRegistry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kind_is_a_wire_error() {
        let registry = JobKindRegistry::new();
        match registry.build("nope", &[]) {
            Err(MrError::Wire(m)) => assert!(m.contains("nope")),
            Err(other) => panic!("expected wire error, got {other}"),
            Ok(_) => panic!("expected wire error, got a runner"),
        }
    }

    #[test]
    fn registered_factory_is_invoked_with_params() {
        let mut registry = JobKindRegistry::new();
        registry.register("echo", |params| {
            Err(MrError::Wire(format!("params len {}", params.len())))
        });
        assert_eq!(registry.kinds(), vec!["echo".to_string()]);
        match registry.build("echo", &[1, 2, 3]) {
            Err(MrError::Wire(m)) => assert_eq!(m, "params len 3"),
            Err(other) => panic!("unexpected {other}"),
            Ok(_) => panic!("factory result ignored"),
        }
    }
}
