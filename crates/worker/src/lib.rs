//! Distributed execution for the FFMR runtime: real worker *processes*
//! running map/reduce task bodies over the wire.
//!
//! Everything else in this workspace simulates a cluster inside one
//! process; this crate makes the execution itself distributed while
//! leaving the simulation contract untouched. The pieces:
//!
//! * [`coordinator`] — the driver-side TCP server: task-dispatch queue,
//!   blob store, worker table with death detection, and the
//!   [`RemoteExecutor`] that plugs into
//!   [`MrRuntime::set_task_executor`](mapreduce::MrRuntime::set_task_executor);
//! * [`worker`] — the worker-process loop (`ffmr worker` runs this):
//!   register, poll for dispatches, fetch blobs, execute, push results;
//! * [`registry`] — job-kind → runner factory, since closures cannot
//!   cross a process boundary;
//! * [`proto`] — the dispatch verbs and blob naming layered on the
//!   ffmrd frame format;
//! * [`b64`] — std-only base64 for carrying raw bytes in text frames;
//! * [`signals`] — SIGINT/SIGTERM → atomic flag, the workspace's only
//!   `unsafe`.
//!
//! Determinism: the driver keeps every scheduling, costing and ordering
//! decision; workers compute pure `bytes → bytes` task functions and
//! capture their service calls for driver-side replay in task order. A
//! distributed run is therefore byte-identical to the in-process
//! `worker_threads = Some(1)` run — the cross-check the integration
//! tests enforce.
//!
//! # Example
//!
//! ```
//! use ffmr_worker::{Coordinator, CoordinatorConfig, JobKindRegistry, WorkerConfig};
//!
//! let coordinator = Coordinator::start(CoordinatorConfig::default()).unwrap();
//! let addr = coordinator.local_addr().to_string();
//! // In a real deployment this loop runs in `ffmr worker` processes:
//! let registry = JobKindRegistry::new();
//! let handle = std::thread::spawn(move || {
//!     ffmr_worker::run_worker(&WorkerConfig::new(addr), &registry)
//! });
//! assert!(coordinator.wait_for_workers(1, std::time::Duration::from_secs(5)));
//! coordinator.shutdown();
//! handle.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]

pub mod b64;
pub mod coordinator;
pub mod proto;
pub mod registry;
pub mod signals;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig, RemoteExecutor};
pub use registry::{JobKindRegistry, RunnerFactory};
pub use worker::{run_worker, WorkerConfig};
