//! The worker-process main loop: poll the coordinator for tasks, fetch
//! their bytes, execute, push results back.
//!
//! A worker is deliberately stateless between dispatches — everything a
//! task needs arrives as blobs (`task/<d>/job`, `task/<d>/spec`) and
//! everything it produces leaves as one (`task/<d>/result`). The only
//! cache is the reconstructed [`TaskRunner`], keyed by `(kind, params)`:
//! within one round every task shares the same job parameters, so the
//! mapper/reducer is rebuilt once per round, not once per task.
//!
//! Shutdown paths: the coordinator answers `task-request` with
//! `shutdown 1` (clean departure), or SIGINT/SIGTERM flips the
//! [`signals`] flag and the loop exits before its next
//! poll. A worker the coordinator has declared dead gets an error
//! response and exits nonzero — by then its tasks have been
//! re-dispatched, and its uploads for retired dispatch ids are ignored.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ffmr_service::{status, Client, Message};
use mapreduce::{MapTaskSpec, MrError, ReduceTaskSpec, TaskRunner};

use crate::b64;
use crate::proto::{self, verb, RAW_CHUNK_BYTES};
use crate::registry::JobKindRegistry;
use crate::signals;

/// Tuning knobs for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// Sleep between `task-request` polls when the queue is empty.
    pub poll_interval: Duration,
    /// Interval between heartbeats (keep well under the coordinator's
    /// heartbeat timeout).
    pub heartbeat_interval: Duration,
    /// Ship this process's metrics registry and captured spans to the
    /// coordinator (piggybacked on `task-done`, flushed on shutdown).
    /// On by default; benches toggle it for overhead A/B runs.
    pub telemetry: bool,
}

impl WorkerConfig {
    /// A config with default pacing for `addr`.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            poll_interval: Duration::from_millis(20),
            heartbeat_interval: Duration::from_millis(300),
            telemetry: true,
        }
    }
}

/// Span sink buffering lines for shipment to the coordinator. Installed
/// lazily, only in a standalone worker process (never when the worker
/// shares its process — and span sink — with the driver).
#[derive(Debug, Default)]
struct CaptureSink {
    lines: Mutex<Vec<String>>,
}

impl CaptureSink {
    fn drain(&self) -> Vec<String> {
        std::mem::take(
            &mut self
                .lines
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

impl ffmr_obs::SpanSink for CaptureSink {
    fn emit(&self, json_line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(json_line.to_string());
    }
}

/// What the worker measured about one dispatch, on its own clock.
#[derive(Debug, Default)]
struct DispatchMeasure {
    fetch_us: u64,
    push_us: u64,
    bytes_in: u64,
    bytes_out: u64,
}

/// Sends `request` and insists on an `ok` response.
fn rpc(client: &mut Client, request: &Message) -> Result<Message, MrError> {
    let response = client
        .request(request)
        .map_err(|e| MrError::Wire(format!("{} request failed: {e}", request.head)))?;
    if response.head == status::OK {
        Ok(response)
    } else {
        Err(MrError::Wire(format!(
            "{} rejected: {}",
            request.head,
            response.get("message").unwrap_or(&response.head)
        )))
    }
}

/// Downloads a staged blob chunk by chunk.
fn fetch_blob(client: &mut Client, name: &str) -> Result<Vec<u8>, MrError> {
    let mut out = Vec::new();
    loop {
        let mut req = Message::new(verb::BLOB_GET);
        req.push("name", name);
        req.push("offset", out.len());
        let resp = rpc(client, &req)?;
        let chunk = b64::decode(resp.get("data").unwrap_or_default())
            .map_err(|e| MrError::Wire(format!("blob {name}: {e}")))?;
        let more = resp.get("more") == Some("1");
        if more && chunk.is_empty() {
            return Err(MrError::Wire(format!(
                "blob {name}: empty chunk with more data claimed"
            )));
        }
        out.extend_from_slice(&chunk);
        if !more {
            let len = resp
                .get_parsed::<usize>("len")
                .ok()
                .flatten()
                .unwrap_or(out.len());
            if out.len() != len {
                return Err(MrError::Wire(format!(
                    "blob {name}: got {} bytes, coordinator reported {len}",
                    out.len()
                )));
            }
            return Ok(out);
        }
    }
}

/// Uploads `bytes` as blob `name`, chunked under the frame cap.
fn push_blob(client: &mut Client, name: &str, bytes: &[u8]) -> Result<(), MrError> {
    let mut offset = 0;
    loop {
        let end = bytes.len().min(offset + RAW_CHUNK_BYTES);
        let last = end == bytes.len();
        let mut req = Message::new(verb::BLOB_PUT);
        req.push("name", name);
        req.push("offset", offset);
        req.push("data", b64::encode(&bytes[offset..end]));
        req.push("last", u8::from(last));
        rpc(client, &req)?;
        if last {
            return Ok(());
        }
        offset = end;
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

type RunnerCache = HashMap<(String, Vec<u8>), Arc<dyn TaskRunner>>;

/// Fetches, decodes and executes one dispatch, returning the encoded
/// result bytes to upload. Fetch timing and input bytes land in
/// `measure`; the caller accounts for the result upload.
fn run_dispatch(
    client: &mut Client,
    registry: &JobKindRegistry,
    cache: &mut RunnerCache,
    dispatch: u64,
    phase: &str,
    measure: &mut DispatchMeasure,
) -> Result<Vec<u8>, MrError> {
    let fetch_started = Instant::now();
    let job = {
        let _s = ffmr_obs::span("worker.blob.get");
        fetch_blob(client, &proto::job_blob(dispatch))?
    };
    let (kind, params) = proto::decode_job_blob(&job)
        .map_err(|e| MrError::Wire(format!("dispatch {dispatch} job blob: {e}")))?;
    let key = (kind.clone(), params.clone());
    let runner = if let Some(cached) = cache.get(&key) {
        Arc::clone(cached)
    } else {
        let built: Arc<dyn TaskRunner> = Arc::from(registry.build(&kind, &params)?);
        // A new round means new params; drop the previous round's
        // runner rather than accumulating one per round.
        cache.clear();
        cache.insert(key, Arc::clone(&built));
        built
    };
    let spec_bytes = {
        let _s = ffmr_obs::span("worker.blob.get");
        fetch_blob(client, &proto::spec_blob(dispatch))?
    };
    measure.fetch_us = u64::try_from(fetch_started.elapsed().as_micros()).unwrap_or(u64::MAX);
    measure.bytes_in = (job.len() + spec_bytes.len()) as u64;
    let outcome = match phase {
        "map" => {
            let spec = MapTaskSpec::from_bytes(&spec_bytes)
                .map_err(|e| MrError::Wire(format!("dispatch {dispatch} map spec: {e}")))?;
            std::panic::catch_unwind(AssertUnwindSafe(|| runner.run_map(&spec)))
                .map(|r| r.map(|res| res.to_bytes()))
        }
        "reduce" => {
            let spec = ReduceTaskSpec::from_bytes(&spec_bytes)
                .map_err(|e| MrError::Wire(format!("dispatch {dispatch} reduce spec: {e}")))?;
            std::panic::catch_unwind(AssertUnwindSafe(|| runner.run_reduce(&spec)))
                .map(|r| r.map(|res| res.to_bytes()))
        }
        other => {
            return Err(MrError::Wire(format!(
                "dispatch {dispatch} has unknown phase {other:?}"
            )))
        }
    };
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(MrError::TaskFailed {
            phase: if phase == "map" { "map" } else { "reduce" },
            task: dispatch as usize,
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Connects to the coordinator and serves tasks until told to shut
/// down (coordinator `shutdown 1` response or SIGINT/SIGTERM after
/// [`signals::install`]).
///
/// # Errors
/// [`MrError::Wire`] when the coordinator link breaks or rejects this
/// worker (e.g. it was declared dead after a heartbeat lapse).
pub fn run_worker(config: &WorkerConfig, registry: &JobKindRegistry) -> Result<(), MrError> {
    let mut client = Client::connect(&config.addr)
        .map_err(|e| MrError::Wire(format!("connect {}: {e}", config.addr)))?;
    let mut register = Message::new(verb::REGISTER);
    register.push("now-us", ffmr_obs::span::epoch_us());
    let resp = rpc(&mut client, &register)?;
    let worker_id: u64 = resp
        .get_parsed("worker")
        .ok()
        .flatten()
        .ok_or_else(|| MrError::Wire("register response carried no worker id".into()))?;
    // Partition the span-id space per worker so ids minted here never
    // collide with the driver's (or another worker's) when merged into
    // one trace file.
    ffmr_obs::span::seed_ids((worker_id + 1) << 40);

    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let stop = Arc::clone(&stop);
        let addr = config.addr.clone();
        let interval = config.heartbeat_interval;
        std::thread::spawn(move || {
            let Ok(mut client) = Client::connect(&addr) else {
                return;
            };
            // Each beat carries this worker's clock and the measured
            // round trip of the *previous* beat, so the coordinator can
            // estimate a clock offset from the lowest-RTT sample.
            let mut last_rtt_us: Option<u64> = None;
            while !stop.load(Ordering::SeqCst) && !signals::requested() {
                let mut ping = Message::new(verb::HEARTBEAT);
                ping.push("worker", worker_id);
                ping.push("now-us", ffmr_obs::span::epoch_us());
                if let Some(rtt) = last_rtt_us {
                    ping.push("rtt-us", rtt);
                }
                let sent = Instant::now();
                match client.request(&ping) {
                    Ok(resp) if resp.head == status::OK => {
                        last_rtt_us =
                            Some(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                    _ => return,
                }
                std::thread::sleep(interval);
            }
        })
    };

    let mut cache: RunnerCache = HashMap::new();
    let mut span_capture: Option<Arc<CaptureSink>> = None;
    let mut last_metrics_ship: Option<Instant> = None;
    let result = loop {
        if signals::requested() {
            break Ok(());
        }
        let mut req = Message::new(verb::TASK_REQUEST);
        req.push("worker", worker_id);
        let resp = match rpc(&mut client, &req) {
            Ok(r) => r,
            Err(_) if signals::requested() => break Ok(()),
            Err(e) => break Err(e),
        };
        if resp.get("shutdown").is_some() {
            break Ok(());
        }
        if resp.get("none").is_some() {
            std::thread::sleep(config.poll_interval);
            continue;
        }
        let (Ok(Some(dispatch)), Some(phase)) =
            (resp.get_parsed::<u64>("dispatch"), resp.get("phase"))
        else {
            break Err(MrError::Wire(
                "task-request response carried neither work nor idle/shutdown".into(),
            ));
        };
        let phase = phase.to_string();
        // Trace context from the driver: adopt its trace id and open
        // the task span as a child of the driver's dispatch span. The
        // capture sink is installed lazily, and only when this process
        // has no sink of its own (an in-process worker thread shares
        // the driver's sink — its spans land in the trace directly).
        let trace = resp.get_parsed::<u64>("trace").ok().flatten();
        let parent_span = resp.get_parsed::<u64>("span").ok().flatten();
        if trace.is_some() && span_capture.is_none() && !ffmr_obs::span::tracing_enabled() {
            let sink = Arc::new(CaptureSink::default());
            ffmr_obs::set_sink(Some(Arc::clone(&sink) as Arc<dyn ffmr_obs::SpanSink>));
            span_capture = Some(sink);
        }
        if let Some(t) = trace {
            ffmr_obs::set_trace_id(t);
        }
        let start_us = ffmr_obs::span::epoch_us();
        let mut measure = DispatchMeasure::default();
        let mut task_span = parent_span.map_or_else(
            || ffmr_obs::span(&format!("worker.{phase}")),
            |p| ffmr_obs::span_child_of(&format!("worker.{phase}"), p),
        );
        task_span.field("dispatch", dispatch);
        task_span.field("worker", worker_id);
        let outcome = run_dispatch(
            &mut client,
            registry,
            &mut cache,
            dispatch,
            &phase,
            &mut measure,
        );
        let outcome = match outcome {
            Ok(result_bytes) => {
                let push_started = Instant::now();
                let pushed = {
                    let _s = ffmr_obs::span("worker.blob.put");
                    push_blob(&mut client, &proto::result_blob(dispatch), &result_bytes)
                };
                if let Err(e) = pushed {
                    break Err(e);
                }
                measure.push_us =
                    u64::try_from(push_started.elapsed().as_micros()).unwrap_or(u64::MAX);
                measure.bytes_out = result_bytes.len() as u64;
                Ok(())
            }
            Err(task_err) => Err(task_err),
        };
        drop(task_span);
        let end_us = ffmr_obs::span::epoch_us();
        let reg = ffmr_obs::global();
        let status_label = if outcome.is_ok() { "ok" } else { "err" };
        reg.counter(
            "ffmr_worker_dispatches_total",
            &[("phase", &phase), ("status", status_label)],
        )
        .inc();
        reg.histogram("ffmr_worker_blob_fetch_us", &[])
            .record(measure.fetch_us);
        reg.histogram("ffmr_worker_blob_push_us", &[])
            .record(measure.push_us);
        reg.histogram("ffmr_worker_task_us", &[])
            .record(end_us.saturating_sub(start_us));

        let mut done = Message::new(verb::TASK_DONE);
        done.push("worker", worker_id);
        done.push("dispatch", dispatch);
        match &outcome {
            Ok(()) => done.push("status", "ok"),
            Err(task_err) => {
                done.push("status", "err");
                done.push("message", task_err.to_string());
            }
        }
        done.push("t-start-us", start_us);
        done.push("t-end-us", end_us);
        done.push("t-fetch-us", measure.fetch_us);
        done.push("t-push-us", measure.push_us);
        done.push("t-bytes-in", measure.bytes_in);
        done.push("t-bytes-out", measure.bytes_out);
        // Snapshots are cumulative, so shipping them less often loses
        // nothing: throttle to one per 100 ms so busy fleets don't pay
        // an encode+merge per task (the shutdown flush below delivers
        // whatever the throttle held back). Only the worker plane
        // ships: in-thread fleets (benches) share the driver's
        // registry, and its other series must not ride along with a
        // worker label.
        if config.telemetry
            && last_metrics_ship.is_none_or(|t| t.elapsed() >= Duration::from_millis(100))
        {
            last_metrics_ship = Some(Instant::now());
            let snapshot = reg.encode_snapshot_prefixed("ffmr_worker_");
            done.push("metrics", b64::encode(snapshot.as_bytes()));
        }
        if let Some(capture) = &span_capture {
            let lines = capture.drain();
            if !lines.is_empty() {
                done.push("spans", b64::encode(lines.join("\n").as_bytes()));
            }
        }
        if let Err(e) = rpc(&mut client, &done) {
            break Err(e);
        }
    };
    // Final telemetry flush so short-lived workers' last metric deltas
    // and spans reach the coordinator even with no task in flight.
    if config.telemetry {
        let mut flush = Message::new(verb::TELEMETRY);
        flush.push("worker", worker_id);
        let snapshot = ffmr_obs::global().encode_snapshot_prefixed("ffmr_worker_");
        flush.push("metrics", b64::encode(snapshot.as_bytes()));
        if let Some(capture) = &span_capture {
            let lines = capture.drain();
            if !lines.is_empty() {
                flush.push("spans", b64::encode(lines.join("\n").as_bytes()));
            }
        }
        let _ = client.request(&flush);
    }
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    result
}
