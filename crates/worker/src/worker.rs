//! The worker-process main loop: poll the coordinator for tasks, fetch
//! their bytes, execute, push results back.
//!
//! A worker is deliberately stateless between dispatches — everything a
//! task needs arrives as blobs (`task/<d>/job`, `task/<d>/spec`) and
//! everything it produces leaves as one (`task/<d>/result`). The only
//! cache is the reconstructed [`TaskRunner`], keyed by `(kind, params)`:
//! within one round every task shares the same job parameters, so the
//! mapper/reducer is rebuilt once per round, not once per task.
//!
//! Shutdown paths: the coordinator answers `task-request` with
//! `shutdown 1` (clean departure), or SIGINT/SIGTERM flips the
//! [`signals`] flag and the loop exits before its next
//! poll. A worker the coordinator has declared dead gets an error
//! response and exits nonzero — by then its tasks have been
//! re-dispatched, and its uploads for retired dispatch ids are ignored.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ffmr_service::{status, Client, Message};
use mapreduce::{MapTaskSpec, MrError, ReduceTaskSpec, TaskRunner};

use crate::b64;
use crate::proto::{self, verb, RAW_CHUNK_BYTES};
use crate::registry::JobKindRegistry;
use crate::signals;

/// Tuning knobs for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// Sleep between `task-request` polls when the queue is empty.
    pub poll_interval: Duration,
    /// Interval between heartbeats (keep well under the coordinator's
    /// heartbeat timeout).
    pub heartbeat_interval: Duration,
}

impl WorkerConfig {
    /// A config with default pacing for `addr`.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            poll_interval: Duration::from_millis(20),
            heartbeat_interval: Duration::from_millis(300),
        }
    }
}

/// Sends `request` and insists on an `ok` response.
fn rpc(client: &mut Client, request: &Message) -> Result<Message, MrError> {
    let response = client
        .request(request)
        .map_err(|e| MrError::Wire(format!("{} request failed: {e}", request.head)))?;
    if response.head == status::OK {
        Ok(response)
    } else {
        Err(MrError::Wire(format!(
            "{} rejected: {}",
            request.head,
            response.get("message").unwrap_or(&response.head)
        )))
    }
}

/// Downloads a staged blob chunk by chunk.
fn fetch_blob(client: &mut Client, name: &str) -> Result<Vec<u8>, MrError> {
    let mut out = Vec::new();
    loop {
        let mut req = Message::new(verb::BLOB_GET);
        req.push("name", name);
        req.push("offset", out.len());
        let resp = rpc(client, &req)?;
        let chunk = b64::decode(resp.get("data").unwrap_or_default())
            .map_err(|e| MrError::Wire(format!("blob {name}: {e}")))?;
        let more = resp.get("more") == Some("1");
        if more && chunk.is_empty() {
            return Err(MrError::Wire(format!(
                "blob {name}: empty chunk with more data claimed"
            )));
        }
        out.extend_from_slice(&chunk);
        if !more {
            let len = resp
                .get_parsed::<usize>("len")
                .ok()
                .flatten()
                .unwrap_or(out.len());
            if out.len() != len {
                return Err(MrError::Wire(format!(
                    "blob {name}: got {} bytes, coordinator reported {len}",
                    out.len()
                )));
            }
            return Ok(out);
        }
    }
}

/// Uploads `bytes` as blob `name`, chunked under the frame cap.
fn push_blob(client: &mut Client, name: &str, bytes: &[u8]) -> Result<(), MrError> {
    let mut offset = 0;
    loop {
        let end = bytes.len().min(offset + RAW_CHUNK_BYTES);
        let last = end == bytes.len();
        let mut req = Message::new(verb::BLOB_PUT);
        req.push("name", name);
        req.push("offset", offset);
        req.push("data", b64::encode(&bytes[offset..end]));
        req.push("last", u8::from(last));
        rpc(client, &req)?;
        if last {
            return Ok(());
        }
        offset = end;
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

type RunnerCache = HashMap<(String, Vec<u8>), Arc<dyn TaskRunner>>;

/// Fetches, decodes and executes one dispatch, returning the encoded
/// result bytes to upload.
fn run_dispatch(
    client: &mut Client,
    registry: &JobKindRegistry,
    cache: &mut RunnerCache,
    dispatch: u64,
    phase: &str,
) -> Result<Vec<u8>, MrError> {
    let job = fetch_blob(client, &proto::job_blob(dispatch))?;
    let (kind, params) = proto::decode_job_blob(&job)
        .map_err(|e| MrError::Wire(format!("dispatch {dispatch} job blob: {e}")))?;
    let key = (kind.clone(), params.clone());
    let runner = if let Some(cached) = cache.get(&key) {
        Arc::clone(cached)
    } else {
        let built: Arc<dyn TaskRunner> = Arc::from(registry.build(&kind, &params)?);
        // A new round means new params; drop the previous round's
        // runner rather than accumulating one per round.
        cache.clear();
        cache.insert(key, Arc::clone(&built));
        built
    };
    let spec_bytes = fetch_blob(client, &proto::spec_blob(dispatch))?;
    let outcome = match phase {
        "map" => {
            let spec = MapTaskSpec::from_bytes(&spec_bytes)
                .map_err(|e| MrError::Wire(format!("dispatch {dispatch} map spec: {e}")))?;
            std::panic::catch_unwind(AssertUnwindSafe(|| runner.run_map(&spec)))
                .map(|r| r.map(|res| res.to_bytes()))
        }
        "reduce" => {
            let spec = ReduceTaskSpec::from_bytes(&spec_bytes)
                .map_err(|e| MrError::Wire(format!("dispatch {dispatch} reduce spec: {e}")))?;
            std::panic::catch_unwind(AssertUnwindSafe(|| runner.run_reduce(&spec)))
                .map(|r| r.map(|res| res.to_bytes()))
        }
        other => {
            return Err(MrError::Wire(format!(
                "dispatch {dispatch} has unknown phase {other:?}"
            )))
        }
    };
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(MrError::TaskFailed {
            phase: if phase == "map" { "map" } else { "reduce" },
            task: dispatch as usize,
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Connects to the coordinator and serves tasks until told to shut
/// down (coordinator `shutdown 1` response or SIGINT/SIGTERM after
/// [`signals::install`]).
///
/// # Errors
/// [`MrError::Wire`] when the coordinator link breaks or rejects this
/// worker (e.g. it was declared dead after a heartbeat lapse).
pub fn run_worker(config: &WorkerConfig, registry: &JobKindRegistry) -> Result<(), MrError> {
    let mut client = Client::connect(&config.addr)
        .map_err(|e| MrError::Wire(format!("connect {}: {e}", config.addr)))?;
    let resp = rpc(&mut client, &Message::new(verb::REGISTER))?;
    let worker_id: u64 = resp
        .get_parsed("worker")
        .ok()
        .flatten()
        .ok_or_else(|| MrError::Wire("register response carried no worker id".into()))?;

    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let stop = Arc::clone(&stop);
        let addr = config.addr.clone();
        let interval = config.heartbeat_interval;
        std::thread::spawn(move || {
            let Ok(mut client) = Client::connect(&addr) else {
                return;
            };
            let mut ping = Message::new(verb::HEARTBEAT);
            ping.push("worker", worker_id);
            while !stop.load(Ordering::SeqCst) && !signals::requested() {
                match client.request(&ping) {
                    Ok(resp) if resp.head == status::OK => {}
                    _ => return,
                }
                std::thread::sleep(interval);
            }
        })
    };

    let mut cache: RunnerCache = HashMap::new();
    let result = loop {
        if signals::requested() {
            break Ok(());
        }
        let mut req = Message::new(verb::TASK_REQUEST);
        req.push("worker", worker_id);
        let resp = match rpc(&mut client, &req) {
            Ok(r) => r,
            Err(_) if signals::requested() => break Ok(()),
            Err(e) => break Err(e),
        };
        if resp.get("shutdown").is_some() {
            break Ok(());
        }
        if resp.get("none").is_some() {
            std::thread::sleep(config.poll_interval);
            continue;
        }
        let (Ok(Some(dispatch)), Some(phase)) =
            (resp.get_parsed::<u64>("dispatch"), resp.get("phase"))
        else {
            break Err(MrError::Wire(
                "task-request response carried neither work nor idle/shutdown".into(),
            ));
        };
        let phase = phase.to_string();
        match run_dispatch(&mut client, registry, &mut cache, dispatch, &phase) {
            Ok(result_bytes) => {
                if let Err(e) = push_blob(&mut client, &proto::result_blob(dispatch), &result_bytes)
                {
                    break Err(e);
                }
                let mut done = Message::new(verb::TASK_DONE);
                done.push("worker", worker_id);
                done.push("dispatch", dispatch);
                done.push("status", "ok");
                if let Err(e) = rpc(&mut client, &done) {
                    break Err(e);
                }
            }
            Err(task_err) => {
                let mut done = Message::new(verb::TASK_DONE);
                done.push("worker", worker_id);
                done.push("dispatch", dispatch);
                done.push("status", "err");
                done.push("message", task_err.to_string());
                if let Err(e) = rpc(&mut client, &done) {
                    break Err(e);
                }
            }
        }
    };
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    result
}
