//! Minimal standard-alphabet base64, written by hand because the
//! workspace builds with zero registry dependencies.
//!
//! Blob chunks travel inside [`Message`](ffmr_service::Message) fields,
//! whose values must survive the protocol's whitespace-sensitive text
//! encoding — the base64 alphabet (`A–Z a–z 0–9 + / =`) contains no
//! whitespace or newlines, so encoded chunks pass through untouched.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `data` as padded standard base64.
#[must_use]
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

fn decode_char(c: u8) -> Result<u32, String> {
    match c {
        b'A'..=b'Z' => Ok(u32::from(c - b'A')),
        b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(format!("invalid base64 byte 0x{c:02x}")),
    }
}

/// Decodes padded standard base64.
///
/// # Errors
/// On characters outside the alphabet, bad length, or misplaced padding.
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("base64 length {} not a multiple of 4", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = quad.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err("misplaced base64 padding".into());
        }
        if pad >= 1 && quad[3] != b'=' {
            return Err("misplaced base64 padding".into());
        }
        if pad == 2 && quad[2] != b'=' {
            return Err("misplaced base64 padding".into());
        }
        let c0 = decode_char(quad[0])?;
        let c1 = decode_char(quad[1])?;
        let c2 = if pad == 2 { 0 } else { decode_char(quad[2])? };
        let c3 = if pad >= 1 { 0 } else { decode_char(quad[3])? };
        let triple = (c0 << 18) | (c1 << 12) | (c2 << 6) | c3;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn round_trips_every_length_and_byte() {
        let mut rng = ffmr_prng::SplitMix64::seed_from_u64(0xb64);
        for len in 0..130 {
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let enc = encode(&data);
            assert_eq!(decode(&enc).unwrap(), data, "len {len}");
        }
        let all: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&all)).unwrap(), all);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode("Zm9").is_err(), "bad length");
        assert!(decode("Zm=v").is_err(), "pad mid-quad");
        assert!(decode("Zg==Zg==").is_err(), "pad before final quad");
        assert!(decode("Zm9\n").is_err(), "whitespace");
        assert!(decode("Zm9!").is_err(), "out of alphabet");
    }
}
