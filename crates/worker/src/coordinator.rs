//! Driver-side coordination for distributed mode: a TCP task-dispatch
//! server plus the [`RemoteExecutor`] that plugs into the MapReduce
//! runtime as its [`TaskExecutor`].
//!
//! The division of labor keeps the simulation contract intact: worker
//! processes only ever *execute task bodies over bytes*. Every cost-model
//! and scheduling decision — simulated task durations, shuffle and
//! cross-node accounting, retry budgets, speculative execution — stays in
//! the driver, computed from the numbers each task result reports. A
//! distributed run therefore prices out identically to the in-process
//! run it mirrors.
//!
//! Failure model: a worker is declared dead when its registration
//! connection drops (a `kill -9` closes the socket, so this is the fast
//! path) or when its heartbeats go quiet past the configured timeout.
//! Death fails that worker's in-flight dispatches with
//! [`MrError::TaskFailed`], which re-enters the runtime's existing
//! retry/speculation machinery; the re-dispatch gets a *fresh* dispatch
//! id, so a `task-done` from a zombie attempt refers to a retired id and
//! is discarded — recovery is exactly-once. If every worker is gone for
//! [`CoordinatorConfig::dead_cluster_timeout`], pending dispatches fail
//! instead of hanging forever.

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ffmr_obs::DispatchNote;
use ffmr_service::{error_response, status, write_frame, Message, MAX_FRAME_BYTES};
use ffmr_sync::{Condvar, Mutex};
use mapreduce::{
    MapTaskResult, MapTaskSpec, MrError, ReduceTaskResult, ReduceTaskSpec, TaskExecutor, WireSpec,
};

use crate::b64;
use crate::proto::{self, verb, RAW_CHUNK_BYTES};

/// How long a connection lingers after shutdown to let workers drain.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(2);
/// Socket read timeout; doubles as the shutdown poll interval.
const POLL: Duration = Duration::from_millis(50);
/// Heartbeat-monitor scan interval.
const MONITOR_INTERVAL: Duration = Duration::from_millis(100);
/// Dispatch-note backstop: a runtime that never drains (recorder turned
/// on with no job collecting stats) must not grow memory without bound.
const NOTES_CAP: usize = 65_536;

/// Tuning knobs for [`Coordinator::start`].
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Silence longer than this marks a worker dead (its connection
    /// dropping is detected immediately, independent of this).
    pub heartbeat_timeout: Duration,
    /// How long a dispatch may sit with zero live workers before it is
    /// failed rather than left waiting for a worker that may never come.
    pub dead_cluster_timeout: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            heartbeat_timeout: Duration::from_secs(3),
            dead_cluster_timeout: Duration::from_secs(30),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Map,
    Reduce,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Map => "map",
            Phase::Reduce => "reduce",
        }
    }
}

#[derive(Debug)]
struct Dispatch {
    phase: Phase,
    task: usize,
    running_on: Option<u64>,
    outcome: Option<Result<Vec<u8>, String>>,
    /// When the driver enqueued this dispatch, on the process-epoch
    /// clock ([`ffmr_obs::span::epoch_us`]).
    queued_us: u64,
    /// Trace context handed to the worker on `task-request` (zero when
    /// the driver is not tracing).
    trace: u64,
    span: u64,
}

#[derive(Debug)]
struct WorkerEntry {
    last_seen: Instant,
    alive: bool,
    /// Told to shut down cleanly; not a death when it disconnects.
    departing: bool,
    running: Vec<u64>,
    /// Estimated worker-clock → coordinator-clock offset in µs, from
    /// the lowest-RTT heartbeat sample (see `crate::proto` docs).
    offset_us: i64,
    /// RTT of the sample backing `offset_us` (`u64::MAX` until the
    /// first heartbeat carries one).
    min_rtt_us: u64,
    last_rtt_us: u64,
    tasks_ok: u64,
    tasks_failed: u64,
    bytes_in: u64,
    bytes_out: u64,
}

#[derive(Debug, Default)]
struct State {
    blobs: HashMap<String, Vec<u8>>,
    queue: VecDeque<u64>,
    dispatches: HashMap<u64, Dispatch>,
    workers: HashMap<u64, WorkerEntry>,
    next_worker: u64,
    next_dispatch: u64,
    deaths: u64,
    /// Flight-recorder notes, one per completed dispatch attempt;
    /// drained by the runtime through
    /// [`TaskExecutor::drain_dispatch_notes`]. Only populated while the
    /// global event recorder is enabled.
    notes: Vec<DispatchNote>,
    /// Dispatch id → index into `notes`, so the executor can attach
    /// driver-side serialization time after the fact.
    note_index: HashMap<u64, usize>,
}

impl State {
    fn live_workers(&self) -> usize {
        self.workers
            .values()
            .filter(|w| w.alive && !w.departing)
            .count()
    }
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    changed: Condvar,
    shutdown: AtomicBool,
    heartbeat_timeout: Duration,
    dead_cluster_timeout: Duration,
}

impl Shared {
    fn publish_worker_gauge(&self, state: &State) {
        ffmr_obs::global()
            .gauge("ffmr_dist_workers", &[])
            .set(state.live_workers() as i64);
    }

    /// Marks `worker` dead and fails its in-flight dispatches so the
    /// runtime's retry path re-dispatches them.
    fn mark_dead(&self, worker: u64, why: &str) {
        let mut st = self.state.lock();
        let Some(entry) = st.workers.get_mut(&worker) else {
            return;
        };
        if !entry.alive {
            return;
        }
        entry.alive = false;
        let departing = entry.departing;
        let running = std::mem::take(&mut entry.running);
        if !departing {
            st.deaths += 1;
            ffmr_obs::global()
                .counter("ffmr_dist_worker_deaths_total", &[])
                .inc();
        }
        for d in running {
            if let Some(dispatch) = st.dispatches.get_mut(&d) {
                if dispatch.outcome.is_none() {
                    dispatch.outcome = Some(Err(format!(
                        "worker {worker} died ({why}) while running {} task {} (dispatch {d})",
                        dispatch.phase.as_str(),
                        dispatch.task,
                    )));
                }
            }
        }
        self.publish_worker_gauge(&st);
        drop(st);
        self.changed.notify_all();
    }
}

/// The distributed-mode coordinator: owns the dispatch server, blob
/// store and worker table. Create one per driver process, register it
/// with the runtime via [`Coordinator::executor`], and point `ffmr
/// worker` processes at [`Coordinator::local_addr`].
pub struct Coordinator {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl Coordinator {
    /// Binds the dispatch server and starts the accept loop and the
    /// heartbeat monitor.
    ///
    /// # Errors
    /// If the listener cannot bind `config.addr`.
    pub fn start(config: CoordinatorConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            changed: Condvar::new(),
            shutdown: AtomicBool::new(false),
            heartbeat_timeout: config.heartbeat_timeout,
            dead_cluster_timeout: config.dead_cluster_timeout,
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || accept_loop(&listener, &shared, &connections))
        };
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || monitor_loop(&shared))
        };

        Ok(Self {
            shared,
            local_addr,
            accept: Some(accept),
            monitor: Some(monitor),
            connections,
        })
    }

    /// The bound address workers should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A [`TaskExecutor`] handle for
    /// [`MrRuntime::set_task_executor`](mapreduce::MrRuntime::set_task_executor).
    #[must_use]
    pub fn executor(&self) -> Arc<RemoteExecutor> {
        Arc::new(RemoteExecutor {
            shared: Arc::clone(&self.shared),
        })
    }

    /// Number of registered workers currently believed alive.
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.shared.state.lock().live_workers()
    }

    /// Total workers declared dead so far (connection drop or heartbeat
    /// timeout; clean departures don't count).
    #[must_use]
    pub fn worker_deaths(&self) -> u64 {
        self.shared.state.lock().deaths
    }

    /// Blocks until at least `n` workers are live, or `timeout` passes.
    /// Returns whether the quorum arrived.
    pub fn wait_for_workers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        while st.live_workers() < n {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.shared.changed.wait_timeout(&mut st, deadline - now);
        }
        true
    }

    /// Stops the server: connected workers get `shutdown 1` on their
    /// next `task-request`, then all coordinator threads are joined.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.changed.notify_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.connections.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || serve_connection(stream, &shared));
                connections.lock().push(handle);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn monitor_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(MONITOR_INTERVAL);
        let stale: Vec<u64> = {
            let st = shared.state.lock();
            st.workers
                .iter()
                .filter(|(_, w)| {
                    w.alive && !w.departing && w.last_seen.elapsed() > shared.heartbeat_timeout
                })
                .map(|(&id, _)| id)
                .collect()
        };
        for id in stale {
            shared.mark_dead(id, "heartbeat timeout");
        }
    }
}

enum Close {
    Eof,
    Shutdown,
    Error,
}

/// Fills `buf` from `stream`, polling the shutdown flag on read
/// timeouts. Once shutdown is requested the read keeps serving for
/// [`SHUTDOWN_GRACE`] so in-flight workers can drain, then closes.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    grace: &mut Option<Instant>,
) -> Result<(), Close> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(Close::Eof),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let started = *grace.get_or_insert_with(Instant::now);
                    if started.elapsed() > SHUTDOWN_GRACE {
                        return Err(Close::Shutdown);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(Close::Error),
        }
    }
    Ok(())
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let mut registered: Option<u64> = None;
    let mut grace: Option<Instant> = None;
    loop {
        let mut header = [0u8; 4];
        if read_full(&mut stream, &mut header, shared, &mut grace).is_err() {
            break;
        }
        let len = u32::from_be_bytes(header);
        if len > MAX_FRAME_BYTES {
            break; // protocol violation: drop the connection
        }
        let mut body = vec![0u8; len as usize];
        if read_full(&mut stream, &mut body, shared, &mut grace).is_err() {
            break;
        }
        let Ok(payload) = String::from_utf8(body) else {
            break;
        };
        let response = match Message::decode(&payload) {
            Ok(request) => handle_request(shared, &request, &mut registered),
            Err(e) => error_response(format!("bad request: {e}")),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
    }
    if let Some(id) = registered {
        shared.mark_dead(id, "connection closed");
    }
}

/// Worker-clock → coordinator-clock offset: the worker stamped `now_us`
/// roughly half an RTT before the coordinator read it.
fn clock_offset(now_us: u64, rtt_us: u64) -> i64 {
    let received = i128::from(ffmr_obs::span::epoch_us());
    let sent = i128::from(now_us) + i128::from(rtt_us / 2);
    i64::try_from(received - sent).unwrap_or(0)
}

/// Maps a worker-clock timestamp onto the coordinator's process-epoch
/// clock, clamping at zero.
fn align_to_driver(worker_us: u64, offset_us: i64) -> u64 {
    u64::try_from(i128::from(worker_us) + i128::from(offset_us)).unwrap_or(0)
}

/// Merges telemetry payloads a worker piggybacked on `task-done` (or
/// sent as a final `telemetry` flush): a cumulative metrics snapshot
/// merged into the driver registry under a `worker` label, and captured
/// span JSONL forwarded verbatim to the driver's trace sink.
fn absorb_telemetry(request: &Message, worker: u64) {
    if let Some(encoded) = request.get("metrics") {
        if let Ok(bytes) = b64::decode(encoded) {
            if let Ok(text) = String::from_utf8(bytes) {
                ffmr_obs::global().merge_snapshot(&text, ("worker", &worker.to_string()));
            }
        }
    }
    if let Some(encoded) = request.get("spans") {
        if let Ok(bytes) = b64::decode(encoded) {
            if let Ok(text) = String::from_utf8(bytes) {
                for line in text.lines().filter(|l| !l.is_empty()) {
                    ffmr_obs::span::emit_raw(line);
                }
            }
        }
    }
}

fn parse_u64(request: &Message, key: &str) -> Result<u64, Message> {
    match request.get_parsed::<u64>(key) {
        Ok(Some(v)) => Ok(v),
        Ok(None) => Err(error_response(format!("missing field {key}"))),
        Err(e) => Err(error_response(format!("bad field {key}: {e}"))),
    }
}

fn handle_request(
    shared: &Arc<Shared>,
    request: &Message,
    registered: &mut Option<u64>,
) -> Message {
    match request.head.as_str() {
        verb::REGISTER => {
            if registered.is_some() {
                return error_response("connection already registered a worker");
            }
            // Crude first offset estimate from the registration itself;
            // refined by every lower-RTT heartbeat sample.
            let offset_us = request
                .get_parsed::<u64>("now-us")
                .ok()
                .flatten()
                .map_or(0, |now| clock_offset(now, 0));
            let mut st = shared.state.lock();
            let id = st.next_worker;
            st.next_worker += 1;
            st.workers.insert(
                id,
                WorkerEntry {
                    last_seen: Instant::now(),
                    alive: true,
                    departing: false,
                    running: Vec::new(),
                    offset_us,
                    min_rtt_us: u64::MAX,
                    last_rtt_us: 0,
                    tasks_ok: 0,
                    tasks_failed: 0,
                    bytes_in: 0,
                    bytes_out: 0,
                },
            );
            *registered = Some(id);
            shared.publish_worker_gauge(&st);
            drop(st);
            shared.changed.notify_all();
            let mut resp = Message::new(status::OK);
            resp.push("worker", id);
            resp
        }
        verb::HEARTBEAT => {
            let worker = match parse_u64(request, "worker") {
                Ok(v) => v,
                Err(resp) => return resp,
            };
            let now_us = request.get_parsed::<u64>("now-us").ok().flatten();
            let rtt_us = request.get_parsed::<u64>("rtt-us").ok().flatten();
            if let Some(rtt) = rtt_us {
                ffmr_obs::global()
                    .histogram("ffmr_dist_heartbeat_rtt_us", &[])
                    .record(rtt);
            }
            let mut st = shared.state.lock();
            match st.workers.get_mut(&worker) {
                Some(entry) if entry.alive => {
                    entry.last_seen = Instant::now();
                    match (now_us, rtt_us) {
                        // The lowest-RTT sample bounds the one-way delay
                        // tightest, so it wins the offset estimate.
                        (Some(now), Some(rtt)) => {
                            entry.last_rtt_us = rtt;
                            if rtt <= entry.min_rtt_us {
                                entry.min_rtt_us = rtt;
                                entry.offset_us = clock_offset(now, rtt);
                            }
                        }
                        (Some(now), None) if entry.min_rtt_us == u64::MAX => {
                            entry.offset_us = clock_offset(now, 0);
                        }
                        _ => {}
                    }
                    Message::new(status::OK)
                }
                _ => error_response(format!("unknown or dead worker {worker}")),
            }
        }
        verb::TASK_REQUEST => {
            let worker = match parse_u64(request, "worker") {
                Ok(v) => v,
                Err(resp) => return resp,
            };
            let mut st = shared.state.lock();
            let Some(entry) = st.workers.get_mut(&worker) else {
                return error_response(format!("unknown worker {worker}"));
            };
            if !entry.alive {
                return error_response(format!("worker {worker} was declared dead"));
            }
            entry.last_seen = Instant::now();
            if shared.shutdown.load(Ordering::SeqCst) {
                entry.departing = true;
                shared.publish_worker_gauge(&st);
                let mut resp = Message::new(status::OK);
                resp.push("shutdown", 1);
                return resp;
            }
            if let Some(d) = st.queue.pop_front() {
                let (phase, trace, span) = {
                    let dispatch = st
                        .dispatches
                        .get_mut(&d)
                        .expect("queued dispatch has an entry");
                    dispatch.running_on = Some(worker);
                    (dispatch.phase, dispatch.trace, dispatch.span)
                };
                st.workers
                    .get_mut(&worker)
                    .expect("checked above")
                    .running
                    .push(d);
                let mut resp = Message::new(status::OK);
                resp.push("dispatch", d);
                resp.push("phase", phase.as_str());
                if trace != 0 {
                    resp.push("trace", trace);
                    resp.push("span", span);
                }
                resp
            } else {
                let mut resp = Message::new(status::OK);
                resp.push("none", 1);
                resp
            }
        }
        verb::BLOB_GET => {
            let started = Instant::now();
            let resp = (|| {
                let Some(name) = request.get("name") else {
                    return error_response("missing field name");
                };
                let offset = match parse_u64(request, "offset") {
                    Ok(v) => v as usize,
                    Err(resp) => return resp,
                };
                let st = shared.state.lock();
                let Some(blob) = st.blobs.get(name) else {
                    return error_response(format!("no such blob {name}"));
                };
                if offset > blob.len() {
                    return error_response(format!(
                        "blob {name} offset {offset} out of range (len {})",
                        blob.len()
                    ));
                }
                let end = blob.len().min(offset + RAW_CHUNK_BYTES);
                let chunk = &blob[offset..end];
                ffmr_obs::global()
                    .counter("ffmr_dist_blob_bytes_total", &[("dir", "get")])
                    .add(chunk.len() as u64);
                let mut resp = Message::new(status::OK);
                resp.push("data", b64::encode(chunk));
                resp.push("len", blob.len());
                resp.push("more", u8::from(end < blob.len()));
                resp
            })();
            ffmr_obs::global()
                .histogram("ffmr_dist_blob_get_us", &[])
                .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
            resp
        }
        verb::BLOB_PUT => {
            let started = Instant::now();
            let resp = (|| {
                let Some(name) = request.get("name") else {
                    return error_response("missing field name");
                };
                let offset = match parse_u64(request, "offset") {
                    Ok(v) => v as usize,
                    Err(resp) => return resp,
                };
                let data = match b64::decode(request.get("data").unwrap_or_default()) {
                    Ok(d) => d,
                    Err(e) => return error_response(format!("bad blob chunk: {e}")),
                };
                let mut st = shared.state.lock();
                let blob = if offset == 0 {
                    st.blobs.insert(name.to_string(), Vec::new());
                    st.blobs.get_mut(name).expect("just inserted")
                } else {
                    match st.blobs.get_mut(name) {
                        Some(b) if b.len() == offset => b,
                        Some(b) => {
                            let len = b.len();
                            return error_response(format!(
                                "blob {name} offset {offset} does not match length {len}"
                            ));
                        }
                        None => return error_response(format!("no such blob {name}")),
                    }
                };
                ffmr_obs::global()
                    .counter("ffmr_dist_blob_bytes_total", &[("dir", "put")])
                    .add(data.len() as u64);
                blob.extend_from_slice(&data);
                Message::new(status::OK)
            })();
            ffmr_obs::global()
                .histogram("ffmr_dist_blob_put_us", &[])
                .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
            resp
        }
        verb::TASK_DONE => {
            let worker = match parse_u64(request, "worker") {
                Ok(v) => v,
                Err(resp) => return resp,
            };
            let d = match parse_u64(request, "dispatch") {
                Ok(v) => v,
                Err(resp) => return resp,
            };
            let ok = match request.get("status") {
                Some("ok") => true,
                Some("err") => false,
                _ => return error_response("missing or bad field status"),
            };
            absorb_telemetry(request, worker);
            let done_us = ffmr_obs::span::epoch_us();
            let t = |key: &str| request.get_parsed::<u64>(key).ok().flatten();
            let (t_start, t_end) = (t("t-start-us"), t("t-end-us"));
            let (fetch_us, push_us) = (t("t-fetch-us"), t("t-push-us"));
            let (bytes_in, bytes_out) = (t("t-bytes-in"), t("t-bytes-out"));
            let mut st = shared.state.lock();
            let offset_us = match st.workers.get_mut(&worker) {
                Some(entry) => {
                    entry.last_seen = Instant::now();
                    entry.running.retain(|&r| r != d);
                    if ok {
                        entry.tasks_ok += 1;
                    } else {
                        entry.tasks_failed += 1;
                    }
                    entry.bytes_in += bytes_in.unwrap_or(0);
                    entry.bytes_out += bytes_out.unwrap_or(0);
                    entry.offset_us
                }
                None => 0,
            };
            // A dispatch the coordinator no longer tracks (or that was
            // reassigned after this worker was declared dead) is a stale
            // attempt: acknowledge and discard so retries stay
            // exactly-once.
            let current = st
                .dispatches
                .get(&d)
                .is_some_and(|disp| disp.running_on == Some(worker) && disp.outcome.is_none());
            if current {
                if ffmr_obs::events::recorder().enabled() && st.notes.len() < NOTES_CAP {
                    let disp = st.dispatches.get(&d).expect("checked above");
                    let queued_us = disp.queued_us;
                    let note = DispatchNote {
                        phase: disp.phase.as_str().to_string(),
                        task: disp.task,
                        worker,
                        ok,
                        queued_us,
                        done_us,
                        started_us: t_start.map_or(queued_us, |t| align_to_driver(t, offset_us)),
                        finished_us: t_end.map_or(done_us, |t| align_to_driver(t, offset_us)),
                        fetch_us: fetch_us.unwrap_or(0),
                        push_us: push_us.unwrap_or(0),
                        ser_us: 0,
                        bytes_in: bytes_in.unwrap_or(0),
                        bytes_out: bytes_out.unwrap_or(0),
                    };
                    let idx = st.notes.len();
                    st.notes.push(note);
                    st.note_index.insert(d, idx);
                }
                let outcome = if ok {
                    match st.blobs.remove(&proto::result_blob(d)) {
                        Some(bytes) => Ok(bytes),
                        None => Err(format!(
                            "worker {worker} reported dispatch {d} ok but uploaded no result"
                        )),
                    }
                } else {
                    Err(request
                        .get("message")
                        .unwrap_or("worker reported failure without a message")
                        .to_string())
                };
                st.dispatches.get_mut(&d).expect("checked above").outcome = Some(outcome);
                drop(st);
                shared.changed.notify_all();
            }
            Message::new(status::OK)
        }
        verb::TELEMETRY => {
            let worker = match parse_u64(request, "worker") {
                Ok(v) => v,
                Err(resp) => return resp,
            };
            absorb_telemetry(request, worker);
            Message::new(status::OK)
        }
        verb::WORKERS => {
            let st = shared.state.lock();
            let mut resp = Message::new(status::OK);
            resp.push("queue-depth", st.queue.len());
            let mut ids: Vec<u64> = st.workers.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                let w = &st.workers[&id];
                resp.push("worker", id);
                resp.push(
                    "state",
                    if !w.alive {
                        "dead"
                    } else if w.departing {
                        "departing"
                    } else {
                        "live"
                    },
                );
                resp.push("hb-age-ms", w.last_seen.elapsed().as_millis());
                resp.push("rtt-us", w.last_rtt_us);
                resp.push("offset-us", w.offset_us);
                resp.push("inflight", w.running.len());
                resp.push("tasks-ok", w.tasks_ok);
                resp.push("tasks-failed", w.tasks_failed);
                resp.push("bytes-in", w.bytes_in);
                resp.push("bytes-out", w.bytes_out);
            }
            resp
        }
        other => error_response(format!("unknown verb {other:?}")),
    }
}

/// The [`TaskExecutor`] that ships tasks to worker processes.
///
/// `execute_map`/`execute_reduce` stage the job and spec blobs, enqueue
/// a dispatch, and block until a worker uploads the result (or the
/// dispatch fails). Called concurrently from the runtime's task threads,
/// so `worker_threads` bounds how many dispatches are in flight.
#[derive(Debug)]
pub struct RemoteExecutor {
    shared: Arc<Shared>,
}

impl RemoteExecutor {
    fn run_remote(
        &self,
        phase: Phase,
        task: usize,
        wire: &WireSpec,
        spec_bytes: Vec<u8>,
    ) -> Result<(Vec<u8>, u64), MrError> {
        // The dispatch span parents the worker-side task span: its id
        // travels in the `task-request` response and returns inside the
        // worker's captured span lines, stitching driver and worker
        // into one trace (the trace id is the job span's id).
        let trace = ffmr_obs::span::current_trace_id();
        let mut dispatch_span = if trace == 0 {
            ffmr_obs::span("mr.dispatch")
        } else {
            ffmr_obs::span_child_of("mr.dispatch", trace)
        };
        dispatch_span.field("phase", phase.as_str());
        dispatch_span.field("task", task);
        let d = {
            let mut st = self.shared.state.lock();
            let d = st.next_dispatch;
            st.next_dispatch += 1;
            st.blobs.insert(
                proto::job_blob(d),
                proto::encode_job_blob(&wire.kind, &wire.params),
            );
            st.blobs.insert(proto::spec_blob(d), spec_bytes);
            st.dispatches.insert(
                d,
                Dispatch {
                    phase,
                    task,
                    running_on: None,
                    outcome: None,
                    queued_us: ffmr_obs::span::epoch_us(),
                    trace,
                    span: dispatch_span.id(),
                },
            );
            st.queue.push_back(d);
            d
        };
        dispatch_span.field("dispatch", d);
        ffmr_obs::global()
            .counter("ffmr_dist_dispatches_total", &[("phase", phase.as_str())])
            .inc();
        self.shared.changed.notify_all();

        let mut no_worker_since: Option<Instant> = None;
        let mut st = self.shared.state.lock();
        loop {
            if let Some(outcome) = st
                .dispatches
                .get_mut(&d)
                .and_then(|disp| disp.outcome.take())
            {
                cleanup_dispatch(&mut st, d);
                drop(st);
                return outcome
                    .map(|bytes| (bytes, d))
                    .map_err(|message| MrError::TaskFailed {
                        phase: phase.as_str(),
                        task,
                        message,
                    });
            }
            if st.live_workers() == 0 {
                let since = *no_worker_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= self.shared.dead_cluster_timeout {
                    cleanup_dispatch(&mut st, d);
                    drop(st);
                    return Err(MrError::TaskFailed {
                        phase: phase.as_str(),
                        task,
                        message: format!(
                            "no live workers for {:?}; dispatch {d} abandoned",
                            self.shared.dead_cluster_timeout
                        ),
                    });
                }
            } else {
                no_worker_since = None;
            }
            self.shared.changed.wait_timeout(&mut st, MONITOR_INTERVAL);
        }
    }

    /// Attaches driver-side serialization time to the note `dispatch`
    /// produced (no-op when no note was recorded).
    fn record_ser_us(&self, dispatch: u64, ser_us: u64) {
        let mut st = self.shared.state.lock();
        if let Some(&idx) = st.note_index.get(&dispatch) {
            if let Some(note) = st.notes.get_mut(idx) {
                note.ser_us = ser_us;
            }
        }
    }
}

fn cleanup_dispatch(st: &mut State, d: u64) {
    st.dispatches.remove(&d);
    st.queue.retain(|&q| q != d);
    st.blobs.remove(&proto::job_blob(d));
    st.blobs.remove(&proto::spec_blob(d));
    st.blobs.remove(&proto::result_blob(d));
}

impl TaskExecutor for RemoteExecutor {
    fn execute_map(&self, wire: &WireSpec, spec: MapTaskSpec) -> Result<MapTaskResult, MrError> {
        let task = spec.task;
        let encode_started = Instant::now();
        let spec_bytes = spec.to_bytes();
        let encode_us = encode_started.elapsed();
        let (bytes, d) = self.run_remote(Phase::Map, task, wire, spec_bytes)?;
        let decode_started = Instant::now();
        let result = MapTaskResult::from_bytes(&bytes)
            .map_err(|e| MrError::Wire(format!("map task {task} result: {e}")));
        let ser = encode_us + decode_started.elapsed();
        self.record_ser_us(d, u64::try_from(ser.as_micros()).unwrap_or(u64::MAX));
        result
    }

    fn execute_reduce(
        &self,
        wire: &WireSpec,
        spec: ReduceTaskSpec,
    ) -> Result<ReduceTaskResult, MrError> {
        let task = spec.task;
        let encode_started = Instant::now();
        let spec_bytes = spec.to_bytes();
        let encode_us = encode_started.elapsed();
        let (bytes, d) = self.run_remote(Phase::Reduce, task, wire, spec_bytes)?;
        let decode_started = Instant::now();
        let result = ReduceTaskResult::from_bytes(&bytes)
            .map_err(|e| MrError::Wire(format!("reduce task {task} result: {e}")));
        let ser = encode_us + decode_started.elapsed();
        self.record_ser_us(d, u64::try_from(ser.as_micros()).unwrap_or(u64::MAX));
        result
    }

    fn drain_dispatch_notes(&self) -> Vec<ffmr_obs::DispatchNote> {
        let mut st = self.shared.state.lock();
        st.note_index.clear();
        std::mem::take(&mut st.notes)
    }
}
