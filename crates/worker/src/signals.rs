//! Process-signal plumbing for graceful shutdown, std-only.
//!
//! The workspace takes no registry dependencies, so instead of a `signal`
//! crate this module binds libc's `signal(2)` directly — the only
//! `unsafe` in the workspace, confined to these few lines. The handler
//! does the single async-signal-safe thing possible: it flips a static
//! [`AtomicBool`] that `ffmr serve` / `ffmr worker` loops poll.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe operations are allowed here; an atomic
    // store qualifies, almost nothing else does.
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers that set the [`requested`] flag.
/// Idempotent; call once near process start.
pub fn install() {
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// True once SIGINT or SIGTERM has been delivered (after [`install`]).
#[must_use]
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Sets or clears the flag directly — lets tests (and in-process worker
/// threads) exercise the signal-driven shutdown path without signals.
pub fn set_requested(value: bool) {
    REQUESTED.store(value, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        set_requested(false);
        assert!(!requested());
        set_requested(true);
        assert!(requested());
        set_requested(false);
    }
}
