//! End-to-end tests of the MapReduce runtime: dataflow correctness,
//! determinism, schimmy, combiners, services, counters, cost-model
//! monotonicity and failure injection.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mapreduce::{
    ClusterConfig, JobBuilder, MapContext, MrError, MrRuntime, ReduceContext, Service,
};

fn word_count_input() -> Vec<(u64, String)> {
    vec![
        (0, "a b c a".to_string()),
        (1, "b a".to_string()),
        (2, "c c c".to_string()),
        (3, String::new()),
    ]
}

fn run_word_count(rt: &mut MrRuntime, combine: bool) -> mapreduce::JobStats {
    rt.dfs_mut()
        .write_records("in", 3, word_count_input())
        .unwrap();
    let mapped = JobBuilder::new("wc")
        .input("in")
        .output("out")
        .reducers(4)
        .map(
            |_k: &u64, line: &String, ctx: &mut MapContext<String, u64>| {
                for w in line.split_whitespace() {
                    ctx.emit(w.to_string(), 1);
                }
            },
        );
    let mapped = if combine {
        mapped.combine(
            |w: &String, vs: &mut dyn Iterator<Item = u64>, ctx: &mut MapContext<String, u64>| {
                ctx.emit(w.clone(), vs.sum());
            },
        )
    } else {
        mapped
    };
    let job = mapped.reduce(
        |w: &String, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<String, u64>| {
            ctx.emit(w.clone(), vs.sum());
        },
    );
    rt.run(job).unwrap()
}

fn sorted_counts(rt: &MrRuntime) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = rt.dfs().read_records("out").unwrap();
    out.sort();
    out
}

#[test]
fn word_count_end_to_end() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
    let stats = run_word_count(&mut rt, false);
    assert_eq!(
        sorted_counts(&rt),
        vec![
            ("a".to_string(), 3),
            ("b".to_string(), 2),
            ("c".to_string(), 4)
        ]
    );
    assert_eq!(stats.map_input_records, 4);
    assert_eq!(stats.map_output_records, 9);
    assert_eq!(stats.reduce_output_records, 3);
    assert_eq!(stats.map_tasks, 3);
    assert_eq!(stats.reduce_tasks, 4);
    assert!(stats.sim_seconds > 0.0);
    assert!(stats.shuffle_bytes > 0);
}

#[test]
fn combiner_reduces_shuffle_bytes_but_not_result() {
    let mut rt_plain = MrRuntime::new(ClusterConfig::small_cluster(3));
    let plain = run_word_count(&mut rt_plain, false);
    let mut rt_comb = MrRuntime::new(ClusterConfig::small_cluster(3));
    let combined = run_word_count(&mut rt_comb, true);
    assert_eq!(sorted_counts(&rt_plain), sorted_counts(&rt_comb));
    assert!(
        combined.shuffle_bytes < plain.shuffle_bytes,
        "combiner must shrink shuffle: {} vs {}",
        combined.shuffle_bytes,
        plain.shuffle_bytes
    );
    // Map output records are counted pre-combiner.
    assert_eq!(combined.map_output_records, plain.map_output_records);
}

#[test]
fn deterministic_mode_reproduces_stats_exactly() {
    let run = || {
        let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
        rt.set_worker_threads(Some(1));
        let stats = run_word_count(&mut rt, false);
        (stats.shuffle_bytes, stats.sim_seconds, sorted_counts(&rt))
    };
    let (b1, s1, r1) = run();
    let (b2, s2, r2) = run();
    assert_eq!(b1, b2);
    assert_eq!(s1, s2);
    assert_eq!(r1, r2);
}

#[test]
fn parallel_and_serial_agree_on_everything_deterministic() {
    let mut rt1 = MrRuntime::new(ClusterConfig::small_cluster(3));
    rt1.set_worker_threads(Some(1));
    let s1 = run_word_count(&mut rt1, false);
    let mut rt8 = MrRuntime::new(ClusterConfig::small_cluster(3));
    rt8.set_worker_threads(Some(8));
    let s8 = run_word_count(&mut rt8, false);
    assert_eq!(sorted_counts(&rt1), sorted_counts(&rt8));
    assert_eq!(s1.shuffle_bytes, s8.shuffle_bytes);
    assert_eq!(s1.map_output_records, s8.map_output_records);
}

#[test]
fn multi_round_chain_threads_output_to_input() {
    // Round 1: double every value; round 2: sum by parity of key.
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    rt.dfs_mut()
        .write_records("r0", 2, (0u64..10).map(|i| (i, i)))
        .unwrap();
    let j1 = JobBuilder::new("double")
        .input("r0")
        .output("r1")
        .reducers(3)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, v * 2))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                for v in vs {
                    ctx.emit(*k, v);
                }
            },
        );
    rt.run(j1).unwrap();
    let j2 = JobBuilder::new("parity-sum")
        .input("r1")
        .output("r2")
        .reducers(2)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(k % 2, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    rt.run(j2).unwrap();
    let mut out: Vec<(u64, u64)> = rt.dfs().read_records("r2").unwrap();
    out.sort();
    // evens: 0+2+4+6+8 = 20 doubled = 40; odds: 1+3+5+7+9 = 25 doubled = 50.
    assert_eq!(out, vec![(0, 40), (1, 50)]);
}

#[test]
fn schimmy_merges_master_records_without_shuffling_them() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    let reducers = 3;

    // Produce a hash-partitioned "graph" file via an identity job.
    rt.dfs_mut()
        .write_records("raw", 2, (0u64..20).map(|i| (i, (i + 1) * 100)))
        .unwrap();
    let seed = JobBuilder::new("seed")
        .input("raw")
        .output("graph")
        .reducers(reducers)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                for v in vs {
                    ctx.emit(*k, v);
                }
            },
        );
    rt.run(seed).unwrap();

    // Messages for a subset of keys only.
    rt.dfs_mut()
        .write_records("msgs", 2, vec![(3u64, 1u64), (7, 2), (3, 3)])
        .unwrap();

    // Schimmy job: masters come from "graph" (not shuffled), messages from
    // "msgs". Sum messages into the master value.
    let job = JobBuilder::new("apply")
        .input("msgs")
        .output("applied")
        .reducers(reducers)
        .schimmy_input("graph")
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                let all: Vec<u64> = vs.collect();
                // Master (>= 100) arrives first thanks to schimmy-first merge.
                assert!(all[0] >= 100, "master must come first for key {k}");
                ctx.emit(*k, all.iter().sum());
            },
        );
    let stats = rt.run(job).unwrap();

    let mut out: Vec<(u64, u64)> = rt.dfs().read_records("applied").unwrap();
    out.sort();
    assert_eq!(out.len(), 20, "every master re-emitted");
    assert_eq!(out[3], (3, 404)); // 400 + 1 + 3
    assert_eq!(out[7], (7, 802)); // 800 + 2
    assert_eq!(out[5], (5, 600)); // untouched master
    assert!(stats.schimmy_bytes > 0);
    // Only the 3 small messages were shuffled, not the 20 masters.
    assert_eq!(stats.map_output_records, 3);
}

#[test]
fn schimmy_partition_mismatch_is_rejected() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    rt.dfs_mut()
        .write_records("graph", 2, vec![(1u64, 1u64)])
        .unwrap();
    rt.dfs_mut()
        .write_records("msgs", 1, vec![(1u64, 1u64)])
        .unwrap();
    let job = JobBuilder::new("bad")
        .input("msgs")
        .output("out")
        .reducers(5) // != 2 partitions of "graph"
        .schimmy_input("graph")
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    assert!(matches!(rt.run(job), Err(MrError::InvalidJob(_))));
}

#[derive(Default)]
struct Collector {
    submitted: AtomicU64,
    rounds_begun: AtomicU64,
    rounds_ended: AtomicU64,
}

impl Service for Collector {
    fn begin_round(&self) {
        self.rounds_begun.fetch_add(1, Ordering::SeqCst);
    }
    fn end_round(&self) {
        self.rounds_ended.fetch_add(1, Ordering::SeqCst);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn services_are_reachable_from_map_and_reduce() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    rt.dfs_mut()
        .write_records("in", 2, (0u64..6).map(|i| (i, i)))
        .unwrap();
    let collector = Arc::new(Collector::default());
    let job = JobBuilder::new("svc")
        .input("in")
        .output("out")
        .reducers(2)
        .attach_service("collector", Arc::clone(&collector) as Arc<dyn Service>)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| {
            let c: &Collector = ctx.service("collector").unwrap();
            c.submitted.fetch_add(1, Ordering::SeqCst);
            ctx.emit(*k, *v);
        })
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                let c: &Collector = ctx.service("collector").unwrap();
                c.submitted.fetch_add(10, Ordering::SeqCst);
                ctx.emit(*k, vs.sum());
            },
        );
    rt.run(job).unwrap();
    assert_eq!(collector.submitted.load(Ordering::SeqCst), 6 + 60);
    assert_eq!(collector.rounds_begun.load(Ordering::SeqCst), 1);
    assert_eq!(collector.rounds_ended.load(Ordering::SeqCst), 1);
}

#[test]
fn missing_service_surfaces_as_error_in_task() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    rt.dfs_mut()
        .write_records("in", 1, vec![(1u64, 1u64)])
        .unwrap();
    let job = JobBuilder::new("no-svc")
        .input("in")
        .output("out")
        .reducers(1)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| {
            let r: Result<&Collector, _> = ctx.service("ghost");
            assert!(r.is_err());
            ctx.emit(*k, *v);
        })
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    rt.run(job).unwrap();
}

#[test]
fn counters_flow_back_in_stats() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    rt.dfs_mut()
        .write_records("in", 2, (0u64..10).map(|i| (i, i)))
        .unwrap();
    let job = JobBuilder::new("cnt")
        .input("in")
        .output("out")
        .reducers(2)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| {
            if k.is_multiple_of(2) {
                ctx.incr("even", 1);
            }
            ctx.emit(*k, *v);
        })
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.incr("groups", 1);
                ctx.emit(*k, vs.sum());
            },
        );
    let stats = rt.run(job).unwrap();
    assert_eq!(stats.counter("even"), 5);
    assert_eq!(stats.counter("groups"), 10);
    assert_eq!(stats.counter("missing"), 0);
}

#[test]
fn mapper_panic_fails_job_with_context() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    rt.dfs_mut()
        .write_records("in", 2, (0u64..4).map(|i| (i, i)))
        .unwrap();
    let job = JobBuilder::new("boom")
        .input("in")
        .output("out")
        .reducers(1)
        .map(|k: &u64, _v: &u64, _ctx: &mut MapContext<u64, u64>| {
            assert!(*k != 2, "injected mapper failure");
        })
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    match rt.run(job) {
        Err(MrError::TaskFailed { phase, message, .. }) => {
            assert_eq!(phase, "map");
            assert!(message.contains("injected mapper failure"));
        }
        other => panic!("expected TaskFailed, got {other:?}"),
    }
    // Failed job must not leave a partial output behind.
    assert!(!rt.dfs().exists("out"));
}

#[test]
fn reducer_panic_fails_job() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    rt.dfs_mut()
        .write_records("in", 1, vec![(1u64, 1u64)])
        .unwrap();
    let job = JobBuilder::new("boom2")
        .input("in")
        .output("out")
        .reducers(2)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |_k: &u64, _vs: &mut dyn Iterator<Item = u64>, _ctx: &mut ReduceContext<u64, u64>| {
                panic!("injected reducer failure");
            },
        );
    assert!(matches!(
        rt.run(job),
        Err(MrError::TaskFailed {
            phase: "reduce",
            ..
        })
    ));
}

#[test]
fn invalid_jobs_are_rejected_before_running() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    rt.dfs_mut()
        .write_records("in", 1, vec![(1u64, 1u64)])
        .unwrap();
    rt.dfs_mut()
        .write_records("occupied", 1, vec![(1u64, 1u64)])
        .unwrap();

    let mk = |input: &str, output: &str, reducers: usize| {
        JobBuilder::new("bad")
            .input(input)
            .output(output)
            .reducers(reducers)
            .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
            .reduce(
                |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                    ctx.emit(*k, vs.sum());
                },
            )
    };
    assert!(matches!(
        rt.run(mk("in", "out", 0)),
        Err(MrError::InvalidJob(_))
    ));
    assert!(matches!(
        rt.run(mk("ghost", "out", 1)),
        Err(MrError::FileNotFound(_))
    ));
    assert!(matches!(
        rt.run(mk("in", "occupied", 1)),
        Err(MrError::OutputExists(_))
    ));
}

#[test]
fn empty_input_produces_empty_output() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    rt.dfs_mut()
        .write_records::<u64, u64, _>("in", 3, Vec::new())
        .unwrap();
    let job = JobBuilder::new("empty")
        .input("in")
        .output("out")
        .reducers(2)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    let stats = rt.run(job).unwrap();
    assert_eq!(stats.map_input_records, 0);
    assert_eq!(stats.reduce_output_records, 0);
    assert_eq!(rt.dfs().file_records("out"), 0);
}

#[test]
fn skewed_keys_all_land_in_one_group() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
    rt.dfs_mut()
        .write_records("in", 4, (0u64..100).map(|i| (i, 1u64)))
        .unwrap();
    let job = JobBuilder::new("skew")
        .input("in")
        .output("out")
        .reducers(8)
        .map(|_k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(42, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    rt.run(job).unwrap();
    let out: Vec<(u64, u64)> = rt.dfs().read_records("out").unwrap();
    assert_eq!(out, vec![(42, 100)]);
}

#[test]
fn more_nodes_reduce_simulated_time_on_heavy_jobs() {
    let run_with = |nodes: usize| {
        let mut rt = MrRuntime::new(ClusterConfig::paper_cluster(nodes));
        rt.dfs_mut()
            .write_records("in", 64, (0u64..40_000).map(|i| (i, vec![0u8; 64])))
            .unwrap();
        let job = JobBuilder::new("heavy")
            .input("in")
            .output("out")
            .reducers(64)
            .map(|k: &u64, v: &Vec<u8>, ctx: &mut MapContext<u64, Vec<u8>>| {
                ctx.emit(*k, v.clone());
            })
            .reduce(
                |k: &u64,
                 vs: &mut dyn Iterator<Item = Vec<u8>>,
                 ctx: &mut ReduceContext<u64, u64>| {
                    ctx.emit(*k, vs.map(|v| v.len() as u64).sum());
                },
            );
        rt.run(job).unwrap().sim_seconds
    };
    let t5 = run_with(5);
    let t20 = run_with(20);
    assert!(
        t20 < t5,
        "20 nodes ({t20}s) should beat 5 nodes ({t5}s) on a shuffle-heavy job"
    );
}

#[test]
fn small_dfs_blocks_create_more_map_tasks_with_identical_output() {
    let run_with_block = |block_mb: f64| {
        let mut cluster = ClusterConfig::small_cluster(3);
        cluster.dfs_block_mb = block_mb;
        let mut rt = MrRuntime::new(cluster);
        rt.dfs_mut()
            .write_records("in", 2, (0..500u64).map(|i| (i, vec![0u8; 40])))
            .unwrap();
        let job = JobBuilder::new("split")
            .input("in")
            .output("out")
            .reducers(4)
            .map(|k: &u64, v: &Vec<u8>, ctx: &mut MapContext<u64, u64>| {
                ctx.emit(k % 10, v.len() as u64);
            })
            .reduce(
                |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                    ctx.emit(*k, vs.sum());
                },
            );
        let stats = rt.run(job).unwrap();
        let mut out: Vec<(u64, u64)> = rt.dfs().read_records("out").unwrap();
        out.sort();
        (stats.map_tasks, out)
    };
    let (big_tasks, big_out) = run_with_block(64.0);
    let (small_tasks, small_out) = run_with_block(0.001); // ~1 KiB blocks
    assert_eq!(big_tasks, 2, "one split per partition at 64 MB blocks");
    assert!(
        small_tasks > 10,
        "1 KiB blocks must split ~21 KiB of data into many tasks ({small_tasks})"
    );
    assert_eq!(big_out, small_out, "splitting cannot change results");
}

#[test]
fn shuffle_bytes_scale_with_payload_size() {
    let run_payload = |len: usize| {
        let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
        rt.dfs_mut()
            .write_records("in", 4, (0u64..100).map(|i| (i, vec![0u8; len])))
            .unwrap();
        let job = JobBuilder::new("payload")
            .input("in")
            .output("out")
            .reducers(4)
            .map(|k: &u64, v: &Vec<u8>, ctx: &mut MapContext<u64, Vec<u8>>| {
                ctx.emit(*k, v.clone());
            })
            .reduce(
                |k: &u64,
                 vs: &mut dyn Iterator<Item = Vec<u8>>,
                 ctx: &mut ReduceContext<u64, u64>| {
                    ctx.emit(*k, vs.count() as u64);
                },
            );
        rt.run(job).unwrap().shuffle_bytes
    };
    let small = run_payload(8);
    let large = run_payload(512);
    assert!(large > small * 10);
}

#[test]
fn flight_recorder_captures_task_timeline() {
    // The recorder is process-global: enabling it here may also populate
    // `task_events` for jobs run by concurrently executing tests, which
    // is harmless (nothing asserts the field is empty).
    ffmr_obs::events::recorder().set_enabled(true);
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
    let stats = run_word_count(&mut rt, false);
    let events = &stats.task_events;

    let phase_count = |p: &str| events.iter().filter(|e| e.phase == p).count();
    assert_eq!(phase_count("map"), stats.map_tasks);
    assert_eq!(phase_count("shuffle"), 1);
    assert_eq!(phase_count("reduce"), stats.reduce_tasks);

    for e in events {
        assert_eq!(e.job, "wc");
        assert_eq!(e.outcome, ffmr_obs::TaskOutcome::Ok);
        assert!(e.sim_end >= e.sim_start, "timeline runs forward: {e:?}");
        assert!(e.wall_end_us >= e.wall_start_us);
        assert_eq!(e.partition.is_some(), e.phase == "reduce");
    }

    // Barrier ordering on the simulated timeline: every map attempt ends
    // by the time the shuffle starts, and every reduce attempt starts
    // once the shuffle ends.
    let shuffle = events.iter().find(|e| e.phase == "shuffle").unwrap();
    for e in events.iter().filter(|e| e.phase == "map") {
        assert!(e.sim_end <= shuffle.sim_start + 1e-9);
    }
    for e in events.iter().filter(|e| e.phase == "reduce") {
        assert!(e.sim_start >= shuffle.sim_end - 1e-9);
    }

    // Reduce inputs account for all fetched bytes.
    let fetched: u64 = events
        .iter()
        .filter(|e| e.phase == "reduce")
        .map(|e| e.bytes_in)
        .sum();
    assert!(fetched >= stats.shuffle_bytes);

    // The same events were pushed into the global ring.
    assert!(ffmr_obs::events::recorder().recorded() >= events.len() as u64);
}
