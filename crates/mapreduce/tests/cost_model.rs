//! Properties of the cluster cost model: simulated time must respond to
//! the knobs the way a real cluster would — more data costs more, more
//! nodes cost less, scaled clusters preserve proportions.

use mapreduce::{ClusterConfig, JobBuilder, MapContext, MrRuntime, ReduceContext};

/// Runs an identity job over `records` records of `payload` bytes each.
fn run_identity(cluster: ClusterConfig, records: u64, payload: usize) -> mapreduce::JobStats {
    let mut rt = MrRuntime::new(cluster);
    rt.dfs_mut()
        .write_records("in", 8, (0..records).map(|i| (i, vec![0u8; payload])))
        .unwrap();
    let job = JobBuilder::new("identity")
        .input("in")
        .output("out")
        .reducers(8)
        .map(|k: &u64, v: &Vec<u8>, ctx: &mut MapContext<u64, Vec<u8>>| {
            ctx.emit(*k, v.clone());
        })
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = Vec<u8>>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.count() as u64);
            },
        );
    rt.run(job).unwrap()
}

#[test]
fn sim_time_grows_with_data_volume() {
    let small = run_identity(ClusterConfig::paper_cluster(5), 1_000, 64);
    let large = run_identity(ClusterConfig::paper_cluster(5), 10_000, 640);
    assert!(large.shuffle_bytes > 50 * small.shuffle_bytes);
    assert!(
        large.sim_seconds > small.sim_seconds,
        "100x the bytes must cost more simulated time ({} vs {})",
        large.sim_seconds,
        small.sim_seconds
    );
}

#[test]
fn sim_time_never_below_round_overhead() {
    let cluster = ClusterConfig::paper_cluster(20);
    let overhead = cluster.round_overhead_s;
    let stats = run_identity(cluster, 1, 1);
    assert!(stats.sim_seconds >= overhead);
    assert!(
        stats.sim_seconds < overhead + 1.0,
        "tiny job ≈ pure overhead"
    );
}

#[test]
fn scaled_cluster_inflates_data_time_only() {
    let plain = run_identity(ClusterConfig::paper_cluster(20), 5_000, 256);
    let scaled = run_identity(ClusterConfig::scaled_paper_cluster(20, 1_000.0), 5_000, 256);
    let overhead = ClusterConfig::paper_cluster(20).round_overhead_s;
    let plain_data = plain.sim_seconds - overhead;
    let scaled_data = scaled.sim_seconds - overhead;
    assert!(
        scaled_data > 500.0 * plain_data.max(1e-6),
        "slowdown 1000 should inflate data time ~1000x ({plain_data} -> {scaled_data})"
    );
}

#[test]
fn slowdown_below_one_is_clamped() {
    let a = ClusterConfig::scaled_paper_cluster(5, 0.0);
    let b = ClusterConfig::scaled_paper_cluster(5, 1.0);
    assert_eq!(a, b);
}

#[test]
fn more_replication_costs_more() {
    let mut two = ClusterConfig::paper_cluster(5);
    two.dfs_replication = 2;
    let mut five = ClusterConfig::paper_cluster(5);
    five.dfs_replication = 5;
    let t2 = run_identity(two, 20_000, 128).sim_seconds;
    let t5 = run_identity(five, 20_000, 128).sim_seconds;
    assert!(t5 > t2, "extra replicas cost network time ({t2} vs {t5})");
}

#[test]
fn stats_byte_accounting_is_consistent() {
    let stats = run_identity(ClusterConfig::paper_cluster(5), 2_000, 100);
    assert_eq!(stats.map_input_records, 2_000);
    assert_eq!(stats.map_output_records, 2_000);
    assert_eq!(stats.reduce_output_records, 2_000);
    assert_eq!(stats.map_output_bytes, stats.shuffle_bytes);
    assert!(stats.input_bytes > 2_000 * 100, "payloads counted");
    assert!(stats.output_bytes > 0);
    assert_eq!(stats.map_tasks, 8);
    assert_eq!(stats.reduce_tasks, 8);
}

#[test]
fn skewed_partition_creates_straggler_time() {
    // All records to one key => one reduce task does all the work; the
    // makespan model must charge the straggler, so the skewed job cannot
    // be faster than a balanced one with the same volume.
    let cluster = ClusterConfig::paper_cluster(5);
    let balanced = run_identity(cluster.clone(), 20_000, 64).sim_seconds;

    let mut rt = MrRuntime::new(cluster);
    rt.dfs_mut()
        .write_records("in", 8, (0..20_000u64).map(|i| (i, vec![0u8; 64])))
        .unwrap();
    let job = JobBuilder::new("skewed")
        .input("in")
        .output("out")
        .reducers(8)
        .map(
            |_k: &u64, v: &Vec<u8>, ctx: &mut MapContext<u64, Vec<u8>>| {
                ctx.emit(7, v.clone());
            },
        )
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = Vec<u8>>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.count() as u64);
            },
        );
    let skewed = rt.run(job).unwrap().sim_seconds;
    assert!(
        skewed >= balanced * 0.99,
        "skew cannot beat balance ({skewed} vs {balanced})"
    );
}

#[test]
fn side_blobs_are_charged_per_map_task() {
    let cluster = ClusterConfig::scaled_paper_cluster(5, 10_000.0);
    let run_with_blob = |blob_bytes: usize| {
        let mut rt = MrRuntime::new(cluster.clone());
        rt.dfs_mut()
            .write_records("in", 8, (0..100u64).map(|i| (i, i)))
            .unwrap();
        rt.dfs_mut().write_blob("delta", vec![0u8; blob_bytes]);
        let job = JobBuilder::new("blob")
            .input("in")
            .output("out")
            .reducers(2)
            .side_blob("delta")
            .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
            .reduce(
                |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                    ctx.emit(*k, vs.sum());
                },
            );
        rt.run(job).unwrap().sim_seconds
    };
    let small = run_with_blob(10);
    let large = run_with_blob(10_000_000);
    assert!(
        large > small,
        "a 10 MB side file read by every mapper must cost time ({small} vs {large})"
    );
}
