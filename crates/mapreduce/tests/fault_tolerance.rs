//! Fault tolerance: task retries, counter isolation across failed
//! attempts, node failure with replica recovery — the properties the
//! paper's Sec. I leans on MapReduce to provide.

use mapreduce::{
    ClusterConfig, FailurePolicy, JobBuilder, MapContext, MrError, MrRuntime, ReduceContext,
};

fn word_job(rt: &mut MrRuntime, out: &str) -> mapreduce::JobStats {
    let job = JobBuilder::new("count")
        .input("in")
        .output(out)
        .reducers(4)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| {
            ctx.incr("mapped", 1);
            ctx.emit(k % 5, *v);
        })
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.incr("groups", 1);
                ctx.emit(*k, vs.sum());
            },
        );
    rt.run(job).unwrap()
}

fn load_input(rt: &mut MrRuntime) {
    rt.dfs_mut()
        .write_records("in", 6, (0..60u64).map(|i| (i, 1u64)))
        .unwrap();
}

#[test]
fn transient_faults_are_retried_transparently() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
    load_input(&mut rt);
    // Every task's first attempt dies.
    rt.set_failure_policy(FailurePolicy::with_injector(3, |_, _, attempt| {
        attempt == 0
    }));
    let stats = word_job(&mut rt, "out");
    let mut result: Vec<(u64, u64)> = rt.dfs().read_records("out").unwrap();
    result.sort();
    assert_eq!(result, (0..5u64).map(|k| (k, 12)).collect::<Vec<_>>());
    // 6 map tasks + 4 reduce tasks each lost one attempt.
    assert_eq!(stats.failed_attempts, 10);
}

#[test]
fn counters_exclude_failed_attempts() {
    let clean = {
        let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
        load_input(&mut rt);
        word_job(&mut rt, "out")
    };
    let faulty = {
        let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
        load_input(&mut rt);
        rt.set_failure_policy(FailurePolicy::with_injector(4, |_, task, attempt| {
            task % 2 == 0 && attempt < 2
        }));
        word_job(&mut rt, "out")
    };
    assert_eq!(
        clean.counter("mapped"),
        faulty.counter("mapped"),
        "retries must not double-count"
    );
    assert_eq!(clean.counter("groups"), faulty.counter("groups"));
    assert!(faulty.failed_attempts > 0);
}

#[test]
fn retries_cost_simulated_time() {
    let time = |policy: Option<FailurePolicy>| {
        let mut rt = MrRuntime::new(ClusterConfig::scaled_paper_cluster(3, 10_000.0));
        load_input(&mut rt);
        if let Some(p) = policy {
            rt.set_failure_policy(p);
        }
        word_job(&mut rt, "out").sim_seconds
    };
    let clean = time(None);
    let faulty = time(Some(FailurePolicy::with_injector(4, |_, _, a| a < 2)));
    assert!(
        faulty > clean,
        "double-failed attempts occupy slots ({clean} vs {faulty})"
    );
}

#[test]
fn budget_exhaustion_fails_the_job_without_output() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
    load_input(&mut rt);
    rt.set_failure_policy(FailurePolicy::with_injector(2, |phase, task, _| {
        phase == "reduce" && task == 0
    }));
    let job = JobBuilder::new("doomed")
        .input("in")
        .output("out")
        .reducers(2)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    assert!(matches!(
        rt.run(job),
        Err(MrError::TaskFailed {
            phase: "reduce",
            task: 0,
            ..
        })
    ));
    assert!(!rt.dfs().exists("out"));
}

#[test]
fn single_node_failure_is_survivable_with_replication_2() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
    load_input(&mut rt);
    word_job(&mut rt, "out");
    // Kill one node: every partition still has a replica.
    rt.dfs_mut().fail_node(0);
    rt.dfs().check_available("out").unwrap();
    let result: Vec<(u64, u64)> = rt.dfs().read_records("out").unwrap();
    assert_eq!(result.len(), 5);
    // A follow-up job reading the surviving data works.
    let job = JobBuilder::new("follow")
        .input("out")
        .output("out2")
        .reducers(2)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    rt.run(job).unwrap();
}

#[test]
fn adjacent_node_failures_lose_data_and_recovery_restores_it() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
    load_input(&mut rt);
    word_job(&mut rt, "out");
    // Replicas live on consecutive nodes: killing two adjacent nodes
    // loses any partition homed on the first.
    rt.dfs_mut().fail_node(1);
    rt.dfs_mut().fail_node(2);
    let err = rt.dfs().check_available("out").unwrap_err();
    assert!(matches!(err, MrError::DataLost { .. }));
    assert!(err.to_string().contains("out"));

    // A job over the damaged input must refuse to run.
    let job = JobBuilder::new("blocked")
        .input("out")
        .output("out3")
        .reducers(2)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    assert!(matches!(rt.run(job), Err(MrError::DataLost { .. })));

    // Recovery brings the data back.
    rt.dfs_mut().recover_node(1);
    rt.dfs().check_available("out").unwrap();
}

#[test]
fn higher_replication_survives_more_failures() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt.dfs_mut().set_replication(3);
    load_input(&mut rt);
    word_job(&mut rt, "out");
    rt.dfs_mut().fail_node(1);
    rt.dfs_mut().fail_node(2);
    rt.dfs().check_available("out").unwrap();
}
