//! Fault tolerance: task retries, counter isolation across failed
//! attempts, node failure with replica recovery — the properties the
//! paper's Sec. I leans on MapReduce to provide.

use mapreduce::{
    ClusterConfig, FailurePolicy, JobBuilder, MapContext, MrError, MrRuntime, ReduceContext,
};

fn word_job(rt: &mut MrRuntime, out: &str) -> mapreduce::JobStats {
    let job = JobBuilder::new("count")
        .input("in")
        .output(out)
        .reducers(4)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| {
            ctx.incr("mapped", 1);
            ctx.emit(k % 5, *v);
        })
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.incr("groups", 1);
                ctx.emit(*k, vs.sum());
            },
        );
    rt.run(job).unwrap()
}

fn load_input(rt: &mut MrRuntime) {
    rt.dfs_mut()
        .write_records("in", 6, (0..60u64).map(|i| (i, 1u64)))
        .unwrap();
}

#[test]
fn transient_faults_are_retried_transparently() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
    load_input(&mut rt);
    // Every task's first attempt dies.
    rt.set_failure_policy(FailurePolicy::with_injector(3, |_, _, attempt| {
        attempt == 0
    }));
    let stats = word_job(&mut rt, "out");
    let mut result: Vec<(u64, u64)> = rt.dfs().read_records("out").unwrap();
    result.sort();
    assert_eq!(result, (0..5u64).map(|k| (k, 12)).collect::<Vec<_>>());
    // 6 map tasks + 4 reduce tasks each lost one attempt.
    assert_eq!(stats.failed_attempts, 10);
}

#[test]
fn counters_exclude_failed_attempts() {
    let clean = {
        let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
        load_input(&mut rt);
        word_job(&mut rt, "out")
    };
    let faulty = {
        let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
        load_input(&mut rt);
        rt.set_failure_policy(FailurePolicy::with_injector(4, |_, task, attempt| {
            task % 2 == 0 && attempt < 2
        }));
        word_job(&mut rt, "out")
    };
    assert_eq!(
        clean.counter("mapped"),
        faulty.counter("mapped"),
        "retries must not double-count"
    );
    assert_eq!(clean.counter("groups"), faulty.counter("groups"));
    assert!(faulty.failed_attempts > 0);
}

#[test]
fn retries_cost_simulated_time() {
    let time = |policy: Option<FailurePolicy>| {
        let mut rt = MrRuntime::new(ClusterConfig::scaled_paper_cluster(3, 10_000.0));
        load_input(&mut rt);
        if let Some(p) = policy {
            rt.set_failure_policy(p);
        }
        word_job(&mut rt, "out").sim_seconds
    };
    let clean = time(None);
    let faulty = time(Some(FailurePolicy::with_injector(4, |_, _, a| a < 2)));
    assert!(
        faulty > clean,
        "double-failed attempts occupy slots ({clean} vs {faulty})"
    );
}

#[test]
fn budget_exhaustion_fails_the_job_without_output() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
    load_input(&mut rt);
    rt.set_failure_policy(FailurePolicy::with_injector(2, |phase, task, _| {
        phase == "reduce" && task == 0
    }));
    let job = JobBuilder::new("doomed")
        .input("in")
        .output("out")
        .reducers(2)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    assert!(matches!(
        rt.run(job),
        Err(MrError::TaskFailed {
            phase: "reduce",
            task: 0,
            ..
        })
    ));
    assert!(!rt.dfs().exists("out"));
}

#[test]
fn single_node_failure_is_survivable_with_replication_2() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
    load_input(&mut rt);
    word_job(&mut rt, "out");
    // Kill one node: every partition still has a replica.
    rt.dfs_mut().fail_node(0);
    rt.dfs().check_available("out").unwrap();
    let result: Vec<(u64, u64)> = rt.dfs().read_records("out").unwrap();
    assert_eq!(result.len(), 5);
    // A follow-up job reading the surviving data works.
    let job = JobBuilder::new("follow")
        .input("out")
        .output("out2")
        .reducers(2)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    rt.run(job).unwrap();
}

#[test]
fn adjacent_node_failures_lose_data_and_recovery_restores_it() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
    load_input(&mut rt);
    word_job(&mut rt, "out");
    // Replicas live on consecutive nodes: killing two adjacent nodes
    // loses any partition homed on the first.
    rt.dfs_mut().fail_node(1);
    rt.dfs_mut().fail_node(2);
    let err = rt.dfs().check_available("out").unwrap_err();
    assert!(matches!(err, MrError::DataLost { .. }));
    assert!(err.to_string().contains("out"));

    // A job over the damaged input must refuse to run.
    let job = JobBuilder::new("blocked")
        .input("out")
        .output("out3")
        .reducers(2)
        .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
        .reduce(
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                ctx.emit(*k, vs.sum());
            },
        );
    assert!(matches!(rt.run(job), Err(MrError::DataLost { .. })));

    // Recovery brings the data back.
    rt.dfs_mut().recover_node(1);
    rt.dfs().check_available("out").unwrap();
}

#[test]
fn higher_replication_survives_more_failures() {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
    rt.dfs_mut().set_replication(3);
    load_input(&mut rt);
    word_job(&mut rt, "out");
    rt.dfs_mut().fail_node(1);
    rt.dfs_mut().fail_node(2);
    rt.dfs().check_available("out").unwrap();
}

#[test]
fn failing_every_node_loses_data_even_past_the_cluster_edge() {
    // Regression: replica placement wraps around the cluster, so a
    // partition homed on the last node replicates onto node 0 — and
    // failing *every* node must report the loss rather than believing a
    // phantom replica on a node that does not exist.
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
    load_input(&mut rt);
    word_job(&mut rt, "out");
    for node in 0..3 {
        rt.dfs_mut().fail_node(node);
    }
    assert!(matches!(
        rt.dfs().check_available("out").unwrap_err(),
        MrError::DataLost { .. }
    ));
}

#[test]
fn job_against_lost_data_recovers_after_node_repair() {
    // The full outage lifecycle: data is lost mid-sequence, the dependent
    // job fails fast, the node comes back, and a retried job completes
    // with exactly the result an undisturbed run would have produced.
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
    load_input(&mut rt);
    word_job(&mut rt, "out");
    let clean: Vec<(u64, u64)> = rt.dfs().read_records("out").unwrap();

    rt.dfs_mut().fail_node(1);
    rt.dfs_mut().fail_node(2);
    let follow = |rt: &mut MrRuntime, out: &str| {
        let job = JobBuilder::new("follow")
            .input("out")
            .output(out)
            .reducers(2)
            .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k, *v))
            .reduce(
                |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
                    ctx.emit(*k, vs.sum());
                },
            );
        rt.run(job)
    };
    assert!(matches!(
        follow(&mut rt, "out2"),
        Err(MrError::DataLost { .. })
    ));
    assert!(!rt.dfs().exists("out2"), "failed job must leave no output");

    rt.dfs_mut().recover_node(1);
    follow(&mut rt, "out2").unwrap();
    let after: Vec<(u64, u64)> = rt.dfs().read_records("out").unwrap();
    assert_eq!(after, clean, "recovered data is the original data");
    assert_eq!(rt.dfs().file_records("out2"), 5);
}

#[test]
fn speculation_cuts_straggler_makespan_with_identical_output() {
    let run = |speculate: bool| {
        let mut cluster = ClusterConfig::scaled_paper_cluster(4, 10_000.0);
        // Map task 2 runs 10x slower than its peers (a sick node).
        cluster.slow_tasks.push(mapreduce::SlowTask {
            phase: "map",
            task: 2,
            factor: 10.0,
        });
        let mut rt = MrRuntime::new(cluster);
        load_input(&mut rt);
        if speculate {
            rt.set_speculation(mapreduce::SpeculationPolicy::hadoop_default());
        }
        let stats = word_job(&mut rt, "out");
        let output: Vec<(u64, u64)> = rt.dfs().read_records("out").unwrap();
        (stats, output)
    };
    let (plain, plain_out) = run(false);
    let (spec, spec_out) = run(true);

    assert_eq!(spec_out, plain_out, "speculation must not change results");
    assert_eq!(
        spec.counter("mapped"),
        plain.counter("mapped"),
        "duplicate attempts must not double-count user counters"
    );
    assert!(spec.speculative_launched >= 1, "straggler gets a duplicate");
    assert!(
        spec.speculative_won >= 1,
        "healthy duplicate finishes first"
    );
    assert_eq!(plain.speculative_launched, 0);
    assert!(
        spec.sim_seconds < plain.sim_seconds,
        "duplicate beats the straggler: {} vs {}",
        spec.sim_seconds,
        plain.sim_seconds
    );
    // The duplicates surface on the metrics endpoint (`ffmr stats`).
    let m = ffmr_obs::global();
    assert!(
        m.counter_value("ffmr_mr_speculative_launched_total")
            .unwrap_or(0)
            >= 1
    );
    assert!(
        m.counter_value("ffmr_mr_speculative_won_total")
            .unwrap_or(0)
            >= 1
    );
}

#[test]
fn speculation_leaves_healthy_jobs_alone() {
    let run = |speculate: bool| {
        let mut rt = MrRuntime::new(ClusterConfig::scaled_paper_cluster(4, 10_000.0));
        load_input(&mut rt);
        if speculate {
            rt.set_speculation(mapreduce::SpeculationPolicy::hadoop_default());
        }
        word_job(&mut rt, "out")
    };
    let plain = run(false);
    let spec = run(true);
    assert_eq!(spec.speculative_launched, 0, "no stragglers, no duplicates");
    assert_eq!(
        spec.sim_seconds.to_bits(),
        plain.sim_seconds.to_bits(),
        "an idle policy must not change the cost model"
    );
}

#[test]
fn speculative_duplicates_tolerate_their_own_faults() {
    // A duplicate attempt can itself crash (its injected attempt index
    // continues the retry numbering); the original still completes and
    // the job must succeed without charging the crashed duplicate a win.
    let mut cluster = ClusterConfig::scaled_paper_cluster(4, 10_000.0);
    cluster.slow_tasks.push(mapreduce::SlowTask {
        phase: "map",
        task: 1,
        factor: 20.0,
    });
    let mut rt = MrRuntime::new(cluster);
    load_input(&mut rt);
    // Attempt 1 of map task 1 is the speculative duplicate (attempt 0
    // succeeded, so no retry consumes that index); kill it.
    rt.set_failure_policy(FailurePolicy::with_injector(3, |phase, task, attempt| {
        phase == "map" && task == 1 && attempt == 1
    }));
    rt.set_speculation(mapreduce::SpeculationPolicy::hadoop_default());
    let stats = word_job(&mut rt, "out");
    assert_eq!(stats.speculative_launched, 1);
    assert_eq!(stats.speculative_won, 0, "a crashed duplicate cannot win");
    let mut result: Vec<(u64, u64)> = rt.dfs().read_records("out").unwrap();
    result.sort();
    assert_eq!(result, (0..5u64).map(|k| (k, 12)).collect::<Vec<_>>());
}
