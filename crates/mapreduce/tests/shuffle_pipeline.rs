//! Property tests for the map-side-sort / reduce-side-merge pipeline.
//!
//! The determinism contract under test: k-way merging the map tasks'
//! key-sorted spill runs (schimmy side input first, then map-task index
//! order) produces *byte-identical* partition data to the reference
//! semantics — one global stable sort of the concatenated task outputs.
//!
//! Cases are drawn from a seeded [`SplitMix64`] stream (one seed per case
//! index), so every run covers the same deterministic corpus — a failure
//! reproduces by its case number alone.

use ffmr_prng::SplitMix64;
use mapreduce::{partition_of, ClusterConfig, JobBuilder, MapContext, MrRuntime, ReduceContext};

/// Random printable-ish value: varied lengths, including empty.
fn random_value(rng: &mut SplitMix64) -> String {
    let len = rng.gen_range(0u64..12) as usize;
    (0..len)
        .map(|_| char::from(b'a' + (rng.gen_range(0u64..26) as u8)))
        .collect()
}

/// One random corpus: records plus the job/geometry knobs for a case.
struct Case {
    records: Vec<(u64, String)>,
    input_partitions: usize,
    reducers: usize,
}

fn draw_case(case: u64) -> Case {
    let mut rng = SplitMix64::seed_from_u64(0x51f7_e000_0000_0000u64.wrapping_add(case));
    let n = rng.gen_range(0u64..120) as usize;
    let key_range = rng.gen_range(1u64..16);
    let records = (0..n)
        .map(|_| (rng.gen_range(0..key_range), random_value(&mut rng)))
        .collect();
    Case {
        records,
        input_partitions: rng.gen_range(1u64..4) as usize,
        reducers: rng.gen_range(1u64..6) as usize,
    }
}

/// Reference semantics of the shuffle: concatenate the map tasks' outputs
/// in task order (`write_records` spreads records round-robin, one map
/// task per input partition), prepend the schimmy records, stable-sort by
/// key, and slice out one reduce partition. With identity map and reduce
/// functions, the output partition's bytes must encode exactly this
/// sequence.
fn reference_partition(
    records: &[(u64, String)],
    schimmy: &[(u64, String)],
    input_partitions: usize,
    reducers: usize,
    partition: usize,
) -> Vec<(u64, String)> {
    let mut concat: Vec<(u64, String)> = schimmy.to_vec();
    for t in 0..input_partitions {
        concat.extend(
            records
                .iter()
                .enumerate()
                .filter(|(i, _)| i % input_partitions == t)
                .map(|(_, r)| r.clone()),
        );
    }
    let mut slice: Vec<(u64, String)> = concat
        .into_iter()
        .filter(|(k, _)| partition_of(k, reducers) == partition)
        .collect();
    slice.sort_by_key(|r| r.0); // stable, like the old reduce sort
    slice
}

/// Runs an identity job over the case's records and returns the raw bytes
/// of every output partition.
fn run_identity(case: &Case, worker_threads: Option<usize>) -> Vec<Vec<u8>> {
    let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
    rt.set_worker_threads(worker_threads);
    rt.dfs_mut()
        .write_records("in", case.input_partitions, case.records.iter().cloned())
        .unwrap();
    let job = JobBuilder::new("identity")
        .input("in")
        .output("out")
        .reducers(case.reducers)
        .map(|k: &u64, v: &String, ctx: &mut MapContext<u64, String>| ctx.emit(*k, v.clone()))
        .reduce(
            |k: &u64,
             vs: &mut dyn Iterator<Item = String>,
             ctx: &mut ReduceContext<u64, String>| {
                for v in vs {
                    ctx.emit(*k, v);
                }
            },
        );
    rt.run(job).unwrap();
    let file = rt.dfs().file("out").unwrap();
    file.partitions.iter().map(|p| p.data.clone()).collect()
}

/// Encodes records exactly as the runtime writes output partitions, by
/// round-tripping them through a single-partition DFS file.
fn encode_reference(records: Vec<(u64, String)>) -> Vec<u8> {
    let mut dfs = mapreduce::Dfs::new();
    dfs.write_records("ref", 1, records).unwrap();
    dfs.file("ref").unwrap().partitions[0].data.clone()
}

#[test]
fn merge_matches_naive_sort_reference() {
    for case_no in 0..24u64 {
        let case = draw_case(case_no);
        let parts = run_identity(&case, Some(1));
        assert_eq!(parts.len(), case.reducers, "case {case_no}");
        for (p, data) in parts.iter().enumerate() {
            let expected = encode_reference(reference_partition(
                &case.records,
                &[],
                case.input_partitions,
                case.reducers,
                p,
            ));
            assert_eq!(*data, expected, "case {case_no} partition {p}");
        }
    }
}

#[test]
fn output_is_thread_count_invariant() {
    for case_no in 0..12u64 {
        let case = draw_case(1000 + case_no);
        let sequential = run_identity(&case, Some(1));
        assert_eq!(
            sequential,
            run_identity(&case, Some(3)),
            "case {case_no}: Some(3) diverged"
        );
        assert_eq!(
            sequential,
            run_identity(&case, None),
            "case {case_no}: None diverged"
        );
    }
}

#[test]
fn schimmy_merge_matches_reference_with_side_input_first() {
    for case_no in 0..12u64 {
        let mut rng = SplitMix64::seed_from_u64(0xdeed_0000 + case_no);
        let case = draw_case(2000 + case_no);
        // Distinct master values so schimmy records are recognizable.
        let masters: Vec<(u64, String)> = (0..rng.gen_range(1u64..20))
            .map(|i| (rng.gen_range(0..16), format!("M{i}")))
            .collect();

        let mut rt = MrRuntime::new(ClusterConfig::small_cluster(3));
        rt.set_worker_threads(Some(1));
        // Produce a hash-partitioned schimmy file via an identity seed job.
        rt.dfs_mut()
            .write_records("masters_raw", 2, masters.iter().cloned())
            .unwrap();
        let seed = JobBuilder::new("seed")
            .input("masters_raw")
            .output("masters")
            .reducers(case.reducers)
            .map(|k: &u64, v: &String, ctx: &mut MapContext<u64, String>| ctx.emit(*k, v.clone()))
            .reduce(
                |k: &u64,
                 vs: &mut dyn Iterator<Item = String>,
                 ctx: &mut ReduceContext<u64, String>| {
                    for v in vs {
                        ctx.emit(*k, v);
                    }
                },
            );
        rt.run(seed).unwrap();

        rt.dfs_mut()
            .write_records("in", case.input_partitions, case.records.iter().cloned())
            .unwrap();
        let job = JobBuilder::new("apply")
            .input("in")
            .output("out")
            .reducers(case.reducers)
            .schimmy_input("masters")
            .map(|k: &u64, v: &String, ctx: &mut MapContext<u64, String>| ctx.emit(*k, v.clone()))
            .reduce(
                |k: &u64,
                 vs: &mut dyn Iterator<Item = String>,
                 ctx: &mut ReduceContext<u64, String>| {
                    for v in vs {
                        ctx.emit(*k, v);
                    }
                },
            );
        rt.run(job).unwrap();

        // The schimmy side of the reference is each partition's stored
        // records (the seed job wrote them key-sorted), which the merge
        // must deliver before any shuffled record of the same key.
        let schimmy_file = rt.dfs().file("masters").unwrap();
        let out = rt.dfs().file("out").unwrap();
        for p in 0..case.reducers {
            let schimmy_records: Vec<(u64, String)> =
                schimmy_file.partitions[p].decode_all().unwrap();
            let expected = encode_reference(reference_partition(
                &case.records,
                &schimmy_records,
                case.input_partitions,
                case.reducers,
                p,
            ));
            assert_eq!(
                out.partitions[p].data, expected,
                "case {case_no} partition {p}"
            );
        }
    }
}
