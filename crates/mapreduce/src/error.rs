//! Error types for the MapReduce runtime.

use std::error::Error;
use std::fmt;

/// A record failed to decode from its wire representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: String,
}

impl DecodeError {
    /// Creates a decode error with a human-readable reason.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.message)
    }
}

impl Error for DecodeError {}

/// Errors surfaced by [`MrRuntime`](crate::MrRuntime) when running a job.
#[derive(Debug)]
#[non_exhaustive]
pub enum MrError {
    /// An input, side-file or schimmy path does not exist in the DFS.
    FileNotFound(String),
    /// An output path already exists (Hadoop refuses to clobber outputs).
    OutputExists(String),
    /// A record could not be decoded.
    Decode(DecodeError),
    /// A mapper or reducer task panicked; the job is failed.
    TaskFailed {
        /// `"map"` or `"reduce"`.
        phase: &'static str,
        /// Index of the failed task.
        task: usize,
        /// Panic payload rendered to a string if possible.
        message: String,
    },
    /// The job configuration is invalid (e.g. zero reducers).
    InvalidJob(String),
    /// A service required by the job was not attached.
    ServiceMissing(String),
    /// Every replica of a partition lived on failed nodes.
    DataLost {
        /// The file whose data is gone.
        path: String,
        /// The unavailable partition index.
        partition: usize,
    },
    /// A distributed-mode wire failure: a task spec or result failed to
    /// encode/decode, or the coordinator/worker link misbehaved in a way
    /// that is not attributable to one task attempt (those surface as
    /// [`MrError::TaskFailed`] so the retry policy can re-dispatch them).
    Wire(String),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::FileNotFound(p) => write!(f, "dfs file not found: {p}"),
            MrError::OutputExists(p) => write!(f, "dfs output path already exists: {p}"),
            MrError::Decode(e) => write!(f, "{e}"),
            MrError::TaskFailed {
                phase,
                task,
                message,
            } => write!(f, "{phase} task {task} failed: {message}"),
            MrError::InvalidJob(m) => write!(f, "invalid job: {m}"),
            MrError::ServiceMissing(name) => write!(f, "service not attached: {name}"),
            MrError::DataLost { path, partition } => {
                write!(f, "all replicas lost for {path} partition {partition}")
            }
            MrError::Wire(m) => write!(f, "wire error: {m}"),
        }
    }
}

impl Error for MrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MrError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for MrError {
    fn from(e: DecodeError) -> Self {
        MrError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<MrError> = vec![
            MrError::FileNotFound("x".into()),
            MrError::OutputExists("y".into()),
            MrError::Decode(DecodeError::new("bad byte")),
            MrError::TaskFailed {
                phase: "map",
                task: 3,
                message: "boom".into(),
            },
            MrError::InvalidJob("no reducers".into()),
            MrError::ServiceMissing("aug_proc".into()),
            MrError::Wire("truncated result".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn decode_error_is_source() {
        let e = MrError::from(DecodeError::new("oops"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MrError>();
        assert_send_sync::<DecodeError>();
    }
}
