//! A simulated distributed file system (HDFS/GFS stand-in).
//!
//! Files are named, immutable-once-written collections of *partitions*
//! (Hadoop `part-NNNNN` outputs). Each partition stores encoded records and
//! remembers its home node, so the runtime can price remote vs. local reads
//! and replication traffic.

use std::collections::{HashMap, HashSet};

use crate::encode::{get_bytes, get_varint, put_bytes, put_varint};
use crate::error::{DecodeError, MrError};
use crate::record::{decode_record, encode_record, Datum};

/// One `part-NNNNN` output: a byte run of encoded records.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    /// Encoded `(key, value)` records, back to back.
    pub data: Vec<u8>,
    /// Number of records in `data`.
    pub records: u64,
    /// Node holding the primary replica.
    pub home_node: usize,
}

impl Partition {
    /// Decodes every record in this partition.
    ///
    /// # Errors
    /// Returns [`DecodeError`] if the byte run is malformed.
    pub fn decode_all<K: Datum, V: Datum>(&self) -> Result<Vec<(K, V)>, DecodeError> {
        let mut out = Vec::with_capacity(self.records as usize);
        let mut input = self.data.as_slice();
        while !input.is_empty() {
            out.push(decode_record(&mut input)?);
        }
        if out.len() as u64 != self.records {
            return Err(DecodeError::new("partition record count mismatch"));
        }
        Ok(out)
    }

    /// Splits the byte run into input splits of at most `block_bytes`
    /// (each ending on a record boundary, like HDFS block-aligned
    /// `InputSplit`s). Returns `(start, end, records)` ranges covering
    /// the partition in order.
    ///
    /// # Errors
    /// [`DecodeError`] if the record framing is malformed.
    pub fn splits(&self, block_bytes: usize) -> Result<Vec<(usize, usize, u64)>, DecodeError> {
        let block_bytes = block_bytes.max(1);
        let mut out = Vec::new();
        let total = self.data.len();
        let mut input = self.data.as_slice();
        let mut start = 0usize;
        let mut records_in_split = 0u64;
        while !input.is_empty() {
            // Skip one record: two length-prefixed byte runs.
            let before = total - input.len();
            crate::encode::get_bytes(&mut input)?;
            crate::encode::get_bytes(&mut input)?;
            let after = total - input.len();
            records_in_split += 1;
            if after - start >= block_bytes || input.is_empty() {
                out.push((start, after, records_in_split));
                start = after;
                records_in_split = 0;
            }
            let _ = before;
        }
        Ok(out)
    }
}

/// One map-task input: a record-aligned byte range of a partition.
#[derive(Debug, Clone, Copy)]
pub struct InputSplit<'a> {
    /// The encoded records of this split, back to back.
    pub data: &'a [u8],
    /// Number of records in `data`.
    pub records: u64,
}

impl<'a> InputSplit<'a> {
    /// Decodes every record in this split.
    ///
    /// # Errors
    /// [`DecodeError`] on malformed framing or count mismatch.
    pub fn decode_all<K: Datum, V: Datum>(&self) -> Result<Vec<(K, V)>, DecodeError> {
        let mut out = Vec::with_capacity(self.records as usize);
        let mut input = self.data;
        while !input.is_empty() {
            out.push(decode_record(&mut input)?);
        }
        if out.len() as u64 != self.records {
            return Err(DecodeError::new("split record count mismatch"));
        }
        Ok(out)
    }
}

/// A named file: an ordered list of partitions.
#[derive(Debug, Clone, Default)]
pub struct DfsFile {
    /// The partitions, in partition-index order.
    pub partitions: Vec<Partition>,
}

impl DfsFile {
    /// Total encoded bytes across partitions (one replica).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.data.len() as u64).sum()
    }

    /// Total records across partitions.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.partitions.iter().map(|p| p.records).sum()
    }
}

/// The simulated DFS: a namespace of [`DfsFile`]s plus raw side-file blobs.
///
/// # Example
/// ```
/// # fn main() -> Result<(), mapreduce::MrError> {
/// let mut dfs = mapreduce::Dfs::new();
/// dfs.write_records("in", 2, vec![(1u64, 10i64), (2, 20), (3, 30)])?;
/// let back: Vec<(u64, i64)> = dfs.read_records("in")?;
/// assert_eq!(back.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Dfs {
    files: HashMap<String, DfsFile>,
    blobs: HashMap<String, Vec<u8>>,
    failed_nodes: HashSet<usize>,
    replication: u32,
    /// Cluster node count replica placement wraps around (0 = unbounded,
    /// for standalone `Dfs` instances not owned by a runtime).
    nodes: usize,
}

/// Version tag of the serialized [`Dfs`] image format.
const DFS_IMAGE_VERSION: u64 = 1;

impl Dfs {
    /// Creates an empty DFS with replication factor 2 (the paper's
    /// Hadoop configuration).
    #[must_use]
    pub fn new() -> Self {
        Self {
            replication: 2,
            ..Self::default()
        }
    }

    /// Sets the replication factor used for availability decisions.
    pub fn set_replication(&mut self, replication: u32) {
        self.replication = replication.max(1);
    }

    /// Sets the cluster node count replica placement wraps around
    /// (0 keeps the legacy unbounded namespace). The runtime calls this
    /// with its `ClusterConfig::nodes` so replicas of partitions homed on
    /// the last node land back on real nodes instead of phantom ones.
    pub fn set_nodes(&mut self, nodes: usize) {
        self.nodes = nodes;
    }

    /// Simulates the death of a cluster node: partitions whose replicas
    /// all lived on failed nodes become unavailable. With the default
    /// replication of 2 a single node failure never loses data — the
    /// fault-tolerance property the paper leans on MapReduce for.
    pub fn fail_node(&mut self, node: usize) {
        self.failed_nodes.insert(node);
    }

    /// Brings a failed node back (its data is intact in this model).
    pub fn recover_node(&mut self, node: usize) {
        self.failed_nodes.remove(&node);
    }

    /// Whether any replica of `p` survives (replicas live on consecutive
    /// nodes starting at the home node, wrapping at the cluster edge — a
    /// simple deterministic placement).
    fn partition_available(&self, p: &Partition) -> bool {
        (0..self.replication as usize)
            .map(|i| self.replica_node(p.home_node, i))
            .any(|n| !self.failed_nodes.contains(&n))
    }

    /// The node holding replica `i` of a partition homed on `home`.
    /// Placement wraps modulo the cluster node count so the last node's
    /// replicas land on real nodes (that can fail) rather than phantom
    /// ones past the cluster edge.
    fn replica_node(&self, home: usize, i: usize) -> usize {
        let n = home + i;
        if self.nodes > 0 {
            n % self.nodes
        } else {
            n
        }
    }

    /// Checks that every partition of `path` is readable.
    ///
    /// # Errors
    /// [`MrError::FileNotFound`] if absent; [`MrError::DataLost`] if a
    /// partition's replicas all lived on failed nodes.
    pub fn check_available(&self, path: &str) -> Result<(), MrError> {
        let file = self.file(path)?;
        for (i, p) in file.partitions.iter().enumerate() {
            if !self.partition_available(p) {
                return Err(MrError::DataLost {
                    path: path.to_owned(),
                    partition: i,
                });
            }
        }
        Ok(())
    }

    /// Writes typed records into `path`, spread round-robin over
    /// `partitions` partitions. Intended for loading raw job input;
    /// job outputs are written by the runtime with hash partitioning.
    ///
    /// # Errors
    /// Returns [`MrError::OutputExists`] if `path` exists, or
    /// [`MrError::InvalidJob`] if `partitions == 0`.
    pub fn write_records<K, V, I>(
        &mut self,
        path: &str,
        partitions: usize,
        records: I,
    ) -> Result<(), MrError>
    where
        K: Datum,
        V: Datum,
        I: IntoIterator<Item = (K, V)>,
    {
        if partitions == 0 {
            return Err(MrError::InvalidJob("partitions must be > 0".into()));
        }
        if self.files.contains_key(path) {
            return Err(MrError::OutputExists(path.to_owned()));
        }
        let mut parts: Vec<Partition> = (0..partitions)
            .map(|i| Partition {
                home_node: i,
                ..Partition::default()
            })
            .collect();
        for (i, (k, v)) in records.into_iter().enumerate() {
            let p = &mut parts[i % partitions];
            encode_record(&k, &v, &mut p.data);
            p.records += 1;
        }
        self.files
            .insert(path.to_owned(), DfsFile { partitions: parts });
        Ok(())
    }

    /// Reads and decodes every record of `path`, partition order then
    /// record order.
    ///
    /// # Errors
    /// [`MrError::FileNotFound`] or a decode failure.
    pub fn read_records<K: Datum, V: Datum>(&self, path: &str) -> Result<Vec<(K, V)>, MrError> {
        let file = self.file(path)?;
        let mut out = Vec::with_capacity(file.records() as usize);
        for p in &file.partitions {
            out.extend(p.decode_all()?);
        }
        Ok(out)
    }

    /// Inserts a file assembled by the runtime (reduce outputs).
    ///
    /// # Errors
    /// [`MrError::OutputExists`] if `path` exists.
    pub(crate) fn insert_file(&mut self, path: &str, file: DfsFile) -> Result<(), MrError> {
        if self.files.contains_key(path) {
            return Err(MrError::OutputExists(path.to_owned()));
        }
        self.files.insert(path.to_owned(), file);
        Ok(())
    }

    /// Borrows a file.
    ///
    /// # Errors
    /// [`MrError::FileNotFound`].
    pub fn file(&self, path: &str) -> Result<&DfsFile, MrError> {
        self.files
            .get(path)
            .ok_or_else(|| MrError::FileNotFound(path.to_owned()))
    }

    /// Whether `path` names a record file.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Removes a record file, returning whether it existed. Removing
    /// intermediate round outputs keeps long chains memory-bounded.
    pub fn delete(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Total bytes of one replica of `path` (0 if absent) — the paper's
    /// "Size" column for the graph file.
    #[must_use]
    pub fn file_bytes(&self, path: &str) -> u64 {
        self.files.get(path).map_or(0, DfsFile::bytes)
    }

    /// Total records in `path` (0 if absent).
    #[must_use]
    pub fn file_records(&self, path: &str) -> u64 {
        self.files.get(path).map_or(0, DfsFile::records)
    }

    /// Writes (or replaces) a raw side-file blob, e.g. the per-round
    /// `AugmentedEdges` table every mapper reads.
    pub fn write_blob(&mut self, path: &str, bytes: Vec<u8>) {
        self.blobs.insert(path.to_owned(), bytes);
    }

    /// Appends bytes to a side-file blob, creating it if absent. Unlike
    /// rewriting via [`Dfs::write_blob`], the cost is proportional to
    /// the appended slice — what a per-round log (the job history) needs.
    pub fn append_blob(&mut self, path: &str, bytes: &[u8]) {
        self.blobs
            .entry(path.to_owned())
            .or_default()
            .extend_from_slice(bytes);
    }

    /// Reads a side-file blob.
    ///
    /// # Errors
    /// [`MrError::FileNotFound`].
    pub fn read_blob(&self, path: &str) -> Result<&[u8], MrError> {
        self.blobs
            .get(path)
            .map(Vec::as_slice)
            .ok_or_else(|| MrError::FileNotFound(path.to_owned()))
    }

    /// Size of a blob in bytes (0 if absent).
    #[must_use]
    pub fn blob_bytes(&self, path: &str) -> u64 {
        self.blobs.get(path).map_or(0, |b| b.len() as u64)
    }

    /// Names of all record files, sorted (deterministic listing).
    #[must_use]
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.files.keys().cloned().collect();
        names.sort();
        names
    }

    /// Serializes the whole namespace — files, blobs, failure state and
    /// placement parameters — into a deterministic byte image. A driver
    /// process about to exit (or crash, in tests) can persist this and a
    /// later process can [`Dfs::from_image`] it to resume where the first
    /// left off; this is the simulated analogue of HDFS simply outliving
    /// the job driver.
    #[must_use]
    pub fn to_image(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint(DFS_IMAGE_VERSION, &mut out);
        put_varint(u64::from(self.replication), &mut out);
        put_varint(self.nodes as u64, &mut out);
        let mut failed: Vec<usize> = self.failed_nodes.iter().copied().collect();
        failed.sort_unstable();
        put_varint(failed.len() as u64, &mut out);
        for node in failed {
            put_varint(node as u64, &mut out);
        }
        let mut names = self.list();
        put_varint(names.len() as u64, &mut out);
        for name in &names {
            let file = &self.files[name];
            put_bytes(name.as_bytes(), &mut out);
            put_varint(file.partitions.len() as u64, &mut out);
            for p in &file.partitions {
                put_varint(p.home_node as u64, &mut out);
                put_varint(p.records, &mut out);
                put_bytes(&p.data, &mut out);
            }
        }
        names = self.blobs.keys().cloned().collect();
        names.sort();
        put_varint(names.len() as u64, &mut out);
        for name in &names {
            put_bytes(name.as_bytes(), &mut out);
            put_bytes(&self.blobs[name], &mut out);
        }
        out
    }

    /// Reconstructs a [`Dfs`] from a [`Dfs::to_image`] byte image.
    ///
    /// # Errors
    /// [`DecodeError`] on truncation, trailing bytes, or a version this
    /// build does not understand.
    pub fn from_image(mut input: &[u8]) -> Result<Self, DecodeError> {
        let input = &mut input;
        if get_varint(input)? != DFS_IMAGE_VERSION {
            return Err(DecodeError::new("unsupported DFS image version"));
        }
        let mut dfs = Self {
            replication: u32::try_from(get_varint(input)?)
                .map_err(|_| DecodeError::new("replication out of range"))?,
            ..Self::default()
        };
        dfs.nodes = usize::try_from(get_varint(input)?)
            .map_err(|_| DecodeError::new("node count out of range"))?;
        for _ in 0..get_varint(input)? {
            dfs.failed_nodes.insert(
                usize::try_from(get_varint(input)?)
                    .map_err(|_| DecodeError::new("failed node out of range"))?,
            );
        }
        for _ in 0..get_varint(input)? {
            let name = String::from_utf8(get_bytes(input)?.to_vec())
                .map_err(|_| DecodeError::new("file name is not UTF-8"))?;
            let parts = get_varint(input)?;
            let mut partitions = Vec::with_capacity(parts as usize);
            for _ in 0..parts {
                partitions.push(Partition {
                    home_node: usize::try_from(get_varint(input)?)
                        .map_err(|_| DecodeError::new("home node out of range"))?,
                    records: get_varint(input)?,
                    data: get_bytes(input)?.to_vec(),
                });
            }
            dfs.files.insert(name, DfsFile { partitions });
        }
        for _ in 0..get_varint(input)? {
            let name = String::from_utf8(get_bytes(input)?.to_vec())
                .map_err(|_| DecodeError::new("blob name is not UTF-8"))?;
            dfs.blobs.insert(name, get_bytes(input)?.to_vec());
        }
        if !input.is_empty() {
            return Err(DecodeError::new("trailing bytes after DFS image"));
        }
        Ok(dfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_partitioning() {
        let mut dfs = Dfs::new();
        dfs.write_records("f", 3, (0..10u64).map(|i| (i, i * 2)))
            .unwrap();
        let file = dfs.file("f").unwrap();
        assert_eq!(file.partitions.len(), 3);
        assert_eq!(file.partitions[0].records, 4); // 0,3,6,9
        assert_eq!(file.partitions[1].records, 3);
        assert_eq!(file.partitions[2].records, 3);
        assert_eq!(file.records(), 10);
    }

    #[test]
    fn read_returns_all_records() {
        let mut dfs = Dfs::new();
        let input: Vec<(u64, String)> = (0..5).map(|i| (i, format!("v{i}"))).collect();
        dfs.write_records("f", 2, input.clone()).unwrap();
        let mut back: Vec<(u64, String)> = dfs.read_records("f").unwrap();
        back.sort();
        assert_eq!(back, input);
    }

    #[test]
    fn overwrite_is_refused() {
        let mut dfs = Dfs::new();
        dfs.write_records("f", 1, vec![(1u64, 1u64)]).unwrap();
        let err = dfs.write_records("f", 1, vec![(2u64, 2u64)]).unwrap_err();
        assert!(matches!(err, MrError::OutputExists(_)));
    }

    #[test]
    fn missing_file_is_error() {
        let dfs = Dfs::new();
        assert!(matches!(
            dfs.read_records::<u64, u64>("nope"),
            Err(MrError::FileNotFound(_))
        ));
        assert_eq!(dfs.file_bytes("nope"), 0);
    }

    #[test]
    fn zero_partitions_rejected() {
        let mut dfs = Dfs::new();
        let err = dfs.write_records("f", 0, vec![(1u64, 1u64)]).unwrap_err();
        assert!(matches!(err, MrError::InvalidJob(_)));
    }

    #[test]
    fn delete_frees_name_for_rewrite() {
        let mut dfs = Dfs::new();
        dfs.write_records("f", 1, vec![(1u64, 1u64)]).unwrap();
        assert!(dfs.delete("f"));
        assert!(!dfs.delete("f"));
        dfs.write_records("f", 1, vec![(2u64, 2u64)]).unwrap();
        let back: Vec<(u64, u64)> = dfs.read_records("f").unwrap();
        assert_eq!(back, vec![(2, 2)]);
    }

    #[test]
    fn blobs_are_separate_namespace() {
        let mut dfs = Dfs::new();
        dfs.write_blob("b", vec![1, 2, 3]);
        assert_eq!(dfs.read_blob("b").unwrap(), &[1, 2, 3]);
        assert_eq!(dfs.blob_bytes("b"), 3);
        assert!(!dfs.exists("b"));
        assert!(dfs.read_blob("missing").is_err());
    }

    #[test]
    fn empty_input_makes_empty_partitions() {
        let mut dfs = Dfs::new();
        dfs.write_records::<u64, u64, _>("f", 4, Vec::new())
            .unwrap();
        assert_eq!(dfs.file_records("f"), 0);
        assert_eq!(dfs.file("f").unwrap().partitions.len(), 4);
    }

    #[test]
    fn splits_cover_partition_at_record_boundaries() {
        let mut dfs = Dfs::new();
        dfs.write_records("f", 1, (0..100u64).map(|i| (i, vec![0u8; 10])))
            .unwrap();
        let part = &dfs.file("f").unwrap().partitions[0];
        for block in [1usize, 16, 64, 1 << 20] {
            let splits = part.splits(block).unwrap();
            let total_records: u64 = splits.iter().map(|&(_, _, r)| r).sum();
            assert_eq!(total_records, 100, "block {block}");
            // Contiguous coverage.
            let mut expect = 0;
            for &(a, b, _) in &splits {
                assert_eq!(a, expect);
                assert!(b > a);
                expect = b;
            }
            assert_eq!(expect, part.data.len());
            // Every split decodes.
            for &(a, b, r) in &splits {
                let split = InputSplit {
                    data: &part.data[a..b],
                    records: r,
                };
                assert_eq!(split.decode_all::<u64, Vec<u8>>().unwrap().len() as u64, r);
            }
        }
        // Tiny blocks: one record per split; huge blocks: one split.
        assert_eq!(part.splits(1).unwrap().len(), 100);
        assert_eq!(part.splits(1 << 20).unwrap().len(), 1);
    }

    #[test]
    fn splits_of_empty_partition() {
        let p = Partition::default();
        assert!(p.splits(64).unwrap().is_empty());
    }

    #[test]
    fn replica_placement_wraps_at_cluster_edge() {
        // 4 nodes, replication 2: a partition homed on node 3 replicates
        // to nodes {3, 0}. Failing both must lose it; the pre-fix phantom
        // replica on "node 4" made it immortal.
        let mut dfs = Dfs::new();
        dfs.set_nodes(4);
        dfs.write_records("f", 4, (0..8u64).map(|i| (i, i)))
            .unwrap();
        assert_eq!(dfs.file("f").unwrap().partitions[3].home_node, 3);
        dfs.fail_node(3);
        dfs.fail_node(0);
        assert!(matches!(
            dfs.check_available("f"),
            Err(MrError::DataLost { partition: 3, .. })
        ));
        dfs.recover_node(0);
        dfs.check_available("f").unwrap();
    }

    #[test]
    fn unbounded_dfs_keeps_legacy_placement() {
        let mut dfs = Dfs::new();
        dfs.write_records("f", 2, (0..4u64).map(|i| (i, i)))
            .unwrap();
        dfs.fail_node(1);
        // Without a node count, partition 1's second replica sits on
        // "node 2" and survives.
        dfs.check_available("f").unwrap();
    }

    #[test]
    fn image_round_trips_every_field() {
        let mut dfs = Dfs::new();
        dfs.set_replication(3);
        dfs.set_nodes(5);
        dfs.write_records("f", 2, (0..6u64).map(|i| (i, format!("v{i}"))))
            .unwrap();
        dfs.write_blob("side", vec![9, 8, 7]);
        dfs.fail_node(4);
        let image = dfs.to_image();
        let back = Dfs::from_image(&image).unwrap();
        assert_eq!(back.to_image(), image, "image is a fixed point");
        assert_eq!(back.replication, 3);
        assert_eq!(back.nodes, 5);
        assert!(back.failed_nodes.contains(&4));
        let recs: Vec<(u64, String)> = back.read_records("f").unwrap();
        assert_eq!(recs.len(), 6);
        assert_eq!(back.read_blob("side").unwrap(), &[9, 8, 7]);
    }

    #[test]
    fn image_rejects_corruption() {
        let dfs = Dfs::new();
        let mut image = dfs.to_image();
        assert!(
            Dfs::from_image(&image[..image.len() - 1]).is_err(),
            "truncated"
        );
        image.push(0);
        assert!(Dfs::from_image(&image).is_err(), "trailing byte");
        image[0] = 99; // bad version
        assert!(Dfs::from_image(&image[..image.len() - 1]).is_err());
    }

    #[test]
    fn corrupted_partition_fails_decode() {
        let mut dfs = Dfs::new();
        dfs.write_records("f", 1, vec![(1u64, 2u64)]).unwrap();
        // Corrupt the stored bytes.
        let file = dfs.files.get_mut("f").unwrap();
        file.partitions[0].data.truncate(1);
        assert!(dfs.read_records::<u64, u64>("f").is_err());
    }
}
