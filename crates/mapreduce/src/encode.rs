//! Low-level variable-length integer encoding primitives.
//!
//! All record serialization in this crate bottoms out in LEB128-style
//! varints (with zig-zag for signed values), so encoded sizes are compact
//! and byte-exact — they stand in for Hadoop's `Writable` wire format when
//! the runtime accounts for disk and shuffle bytes.

use crate::error::DecodeError;

/// Appends `v` to `buf` as an unsigned LEB128 varint (1–10 bytes).
///
/// # Example
/// ```
/// let mut buf = Vec::new();
/// mapreduce::encode::put_varint(300, &mut buf);
/// assert_eq!(buf, [0xAC, 0x02]);
/// ```
pub fn put_varint(mut v: u64, buf: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned varint from the front of `input`, advancing it.
///
/// # Errors
/// Returns [`DecodeError`] if the input ends mid-varint or the varint is
/// longer than 10 bytes (overflow).
pub fn get_varint(input: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (idx, &byte) in input.iter().enumerate() {
        if shift >= 64 {
            return Err(DecodeError::new("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            *input = &input[idx + 1..];
            return Ok(v);
        }
        shift += 7;
    }
    Err(DecodeError::new("truncated varint"))
}

/// Number of bytes [`put_varint`] would append for `v`.
#[must_use]
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    let bits = 64 - v.leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Zig-zag maps a signed integer to unsigned so small magnitudes stay short.
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed varint (zig-zag + LEB128).
pub fn put_varint_signed(v: i64, buf: &mut Vec<u8>) {
    put_varint(zigzag(v), buf);
}

/// Reads a signed varint written by [`put_varint_signed`].
///
/// # Errors
/// Propagates [`get_varint`] errors.
pub fn get_varint_signed(input: &mut &[u8]) -> Result<i64, DecodeError> {
    Ok(unzigzag(get_varint(input)?))
}

/// Appends a length-prefixed byte slice.
pub fn put_bytes(v: &[u8], buf: &mut Vec<u8>) {
    put_varint(v.len() as u64, buf);
    buf.extend_from_slice(v);
}

/// Reads a length-prefixed byte slice written by [`put_bytes`].
///
/// # Errors
/// Returns [`DecodeError`] if the prefix or payload is truncated.
pub fn get_bytes<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], DecodeError> {
    let len = get_varint(input)? as usize;
    if input.len() < len {
        return Err(DecodeError::new("truncated byte slice"));
    }
    let (head, tail) = input.split_at(len);
    *input = tail;
    Ok(head)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(v, &mut buf);
            assert_eq!(buf.len(), varint_len(v), "len mismatch for {v}");
            let mut s = buf.as_slice();
            assert_eq!(get_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn varint_len_matches_encoding_for_all_bit_widths() {
        for bits in 0..64 {
            let v = 1u64 << bits;
            let mut buf = Vec::new();
            put_varint(v, &mut buf);
            assert_eq!(buf.len(), varint_len(v));
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_varint_signed(v, &mut buf);
            let mut s = buf.as_slice();
            assert_eq!(get_varint_signed(&mut s).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_are_short() {
        let mut buf = Vec::new();
        put_varint_signed(-1, &mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_varint_is_error() {
        let mut s: &[u8] = &[0x80];
        assert!(get_varint(&mut s).is_err());
        let mut empty: &[u8] = &[];
        assert!(get_varint(&mut empty).is_err());
    }

    #[test]
    fn overlong_varint_is_error() {
        let mut s: &[u8] = &[0xff; 11];
        assert!(get_varint(&mut s).is_err());
    }

    #[test]
    fn bytes_round_trip() {
        let mut buf = Vec::new();
        put_bytes(b"hello", &mut buf);
        put_bytes(b"", &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(get_bytes(&mut s).unwrap(), b"hello");
        assert_eq!(get_bytes(&mut s).unwrap(), b"");
        assert!(s.is_empty());
    }

    #[test]
    fn truncated_bytes_is_error() {
        let mut buf = Vec::new();
        put_bytes(b"hello", &mut buf);
        buf.truncate(3);
        let mut s = buf.as_slice();
        assert!(get_bytes(&mut s).is_err());
    }
}
