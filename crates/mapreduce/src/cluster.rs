//! The cluster cost model.
//!
//! The runtime really executes jobs on host threads; wall-clock time on the
//! host says nothing about a 21-machine Hadoop cluster, so every job is also
//! priced against a [`ClusterConfig`] describing the simulated cluster. The
//! model charges exactly the cost drivers the paper measures (Sec. V-A3):
//! DFS reads/writes, cross-node shuffle bytes, per-record CPU and a fixed
//! per-round scheduling overhead.

/// Describes the simulated cluster a job runs on.
///
/// Defaults mirror the paper's testbed: 20 slave nodes with 15 map and 15
/// reduce slots each, 1 GbE, commodity SATA disks (Sec. V).
///
/// # Example
/// ```
/// let five = mapreduce::ClusterConfig::paper_cluster(5);
/// let twenty = mapreduce::ClusterConfig::paper_cluster(20);
/// assert!(twenty.total_map_slots() > five.total_map_slots());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of slave nodes.
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// Sequential disk bandwidth per node, MB/s (shared across slots).
    pub disk_mb_per_s: f64,
    /// Network bandwidth per node, MB/s (1 GbE ≈ 110 MB/s effective).
    pub net_mb_per_s: f64,
    /// CPU cost per record processed by a map or reduce function, µs.
    pub cpu_us_per_record: f64,
    /// CPU surcharge per short-lived object allocation, µs. Models the
    /// JVM GC pressure that the paper's FF4 optimization removes.
    pub cpu_us_per_alloc: f64,
    /// Fixed per-job overhead in seconds: task scheduling, JVM reuse,
    /// job setup/teardown. The paper observes ~10–15 min floor per round
    /// on large graphs at 5 nodes; the per-node share is this value scaled
    /// by occupancy.
    pub round_overhead_s: f64,
    /// DFS replication factor (paper uses 2).
    pub dfs_replication: u32,
    /// DFS block size in MB (paper varies it with graph size).
    pub dfs_block_mb: f64,
    /// Multiplier on shuffle bytes for the sort/merge disk passes.
    pub sort_factor: f64,
    /// Injected per-task slowdowns (straggler simulation): each entry
    /// multiplies the simulated duration of one task. Empty by default —
    /// the healthy cluster. Plain data (not a closure) so the config stays
    /// `Clone + PartialEq` and serializes into test fixtures.
    pub slow_tasks: Vec<SlowTask>,
}

/// One injected straggler: task `task` of phase `phase` runs `factor`
/// times slower than the cost model says (a sick disk, a busy node).
/// An empty `phase` matches both map and reduce.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowTask {
    /// `"map"`, `"reduce"`, or `""` for both.
    pub phase: &'static str,
    /// Task index within the phase.
    pub task: usize,
    /// Duration multiplier, clamped to at least 1.
    pub factor: f64,
}

impl ClusterConfig {
    /// The paper's testbed scaled to `nodes` slave nodes: 15 map + 15
    /// reduce slots per node, 1 GbE, 3 SATA disks per node.
    #[must_use]
    pub fn paper_cluster(nodes: usize) -> Self {
        Self {
            nodes: nodes.max(1),
            map_slots_per_node: 15,
            reduce_slots_per_node: 15,
            disk_mb_per_s: 3.0 * 90.0, // 3 disks @ ~90 MB/s sequential
            net_mb_per_s: 110.0,
            // Small relative to per-record I/O: the paper stresses that
            // fetching and shuffling dwarf the MAP/REDUCE computation.
            cpu_us_per_record: 0.2,
            cpu_us_per_alloc: 0.01,
            round_overhead_s: 35.0,
            dfs_replication: 2,
            dfs_block_mb: 64.0,
            // Hadoop's shuffle costs several disk passes per byte:
            // map-side sort spills and merges plus the reduce-side merge.
            sort_factor: 3.0,
            slow_tasks: Vec::new(),
        }
    }

    /// The paper's testbed with every data-dependent cost inflated by
    /// `slowdown`: bandwidths divided and per-record/allocation CPU
    /// multiplied, while the fixed round overhead stays put.
    ///
    /// This is how scaled-down reproductions keep the paper's *ratio* of
    /// data time to scheduling overhead: a workload 50 000x smaller in
    /// bytes run against a model 50 000x slower per byte costs each round
    /// what the full workload cost the real cluster.
    #[must_use]
    pub fn scaled_paper_cluster(nodes: usize, slowdown: f64) -> Self {
        let slowdown = slowdown.max(1.0);
        let base = Self::paper_cluster(nodes);
        Self {
            disk_mb_per_s: base.disk_mb_per_s / slowdown,
            net_mb_per_s: base.net_mb_per_s / slowdown,
            cpu_us_per_record: base.cpu_us_per_record * slowdown,
            cpu_us_per_alloc: base.cpu_us_per_alloc * slowdown,
            // Shrink blocks with the data so map-task counts (and thus
            // scheduling spread) stay realistic at the reduced scale.
            dfs_block_mb: (base.dfs_block_mb / slowdown).max(1e-4),
            ..base
        }
    }

    /// A small test cluster with low fixed overheads, convenient for unit
    /// tests and doc examples.
    #[must_use]
    pub fn small_cluster(nodes: usize) -> Self {
        Self {
            nodes: nodes.max(1),
            map_slots_per_node: 2,
            reduce_slots_per_node: 2,
            disk_mb_per_s: 200.0,
            net_mb_per_s: 100.0,
            cpu_us_per_record: 1.0,
            cpu_us_per_alloc: 0.05,
            round_overhead_s: 1.0,
            dfs_replication: 2,
            dfs_block_mb: 1.0,
            sort_factor: 1.0,
            slow_tasks: Vec::new(),
        }
    }

    /// Combined injected slowdown for one task (product of matching
    /// entries; 1.0 when none match).
    #[must_use]
    pub fn slowdown_for(&self, phase: &str, task: usize) -> f64 {
        self.slow_tasks
            .iter()
            .filter(|s| s.task == task && (s.phase.is_empty() || s.phase == phase))
            .map(|s| s.factor.max(1.0))
            .product()
    }

    /// Total map slots across the cluster.
    #[must_use]
    pub fn total_map_slots(&self) -> usize {
        self.nodes * self.map_slots_per_node
    }

    /// Total reduce slots across the cluster.
    #[must_use]
    pub fn total_reduce_slots(&self) -> usize {
        self.nodes * self.reduce_slots_per_node
    }

    /// The node a map task with this index is scheduled on (round-robin,
    /// matching Hadoop's roughly uniform task spread).
    #[must_use]
    pub fn map_node(&self, task: usize) -> usize {
        task % self.nodes
    }

    /// The node a reduce partition is scheduled on.
    #[must_use]
    pub fn reduce_node(&self, partition: usize) -> usize {
        partition % self.nodes
    }

    /// The node a speculative duplicate of a task on `node` is placed
    /// on: the next node round-robin — a healthy stand-in, since
    /// `slow_tasks` slowdowns are keyed by task index, not node.
    #[must_use]
    pub fn speculation_node(&self, node: usize) -> usize {
        if self.nodes <= 1 {
            node
        } else {
            (node + 1) % self.nodes
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper_cluster(20)
    }
}

/// Accumulates the cost of one phase (map or reduce) task by task, then
/// converts to simulated seconds using a wave/makespan model.
#[derive(Debug, Default, Clone)]
pub struct PhaseCost {
    task_seconds: Vec<f64>,
}

impl PhaseCost {
    /// Creates an empty phase.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one task's cost in simulated seconds.
    pub fn push_task(&mut self, seconds: f64) {
        self.task_seconds.push(seconds);
    }

    /// Phase makespan given `slots` parallel executors: the classic
    /// `max(longest task, total work / slots)` lower bound, which is within
    /// 2x of optimal for list scheduling and deterministic.
    #[must_use]
    pub fn makespan(&self, slots: usize) -> f64 {
        let slots = slots.max(1) as f64;
        let total: f64 = self.task_seconds.iter().sum();
        let longest = self.task_seconds.iter().cloned().fold(0.0, f64::max);
        longest.max(total / slots)
    }

    /// Number of tasks recorded.
    #[must_use]
    pub fn tasks(&self) -> usize {
        self.task_seconds.len()
    }
}

/// Cost of one task, assembled from the model's primitive charges.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskCost {
    /// Bytes read from local/remote DFS.
    pub read_bytes: u64,
    /// Bytes written to local disk (spills, outputs before replication).
    pub write_bytes: u64,
    /// Records processed by the user function.
    pub records: u64,
    /// Short-lived allocations attributed to the user function.
    pub allocs: u64,
}

impl TaskCost {
    /// Converts the primitive charges to simulated seconds under `cfg`.
    #[must_use]
    pub fn seconds(&self, cfg: &ClusterConfig) -> f64 {
        let mb = 1024.0 * 1024.0;
        let io = (self.read_bytes + self.write_bytes) as f64 / mb / cfg.disk_mb_per_s;
        let cpu = (self.records as f64 * cfg.cpu_us_per_record
            + self.allocs as f64 * cfg.cpu_us_per_alloc)
            / 1.0e6;
        io + cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_is_total_over_slots_when_balanced() {
        let mut p = PhaseCost::new();
        for _ in 0..10 {
            p.push_task(1.0);
        }
        assert!((p.makespan(5) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_is_longest_task_when_skewed() {
        let mut p = PhaseCost::new();
        p.push_task(10.0);
        for _ in 0..9 {
            p.push_task(0.1);
        }
        assert!((p.makespan(100) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_of_empty_phase_is_zero() {
        assert_eq!(PhaseCost::new().makespan(4), 0.0);
    }

    #[test]
    fn zero_slots_does_not_divide_by_zero() {
        let mut p = PhaseCost::new();
        p.push_task(1.0);
        assert!(p.makespan(0).is_finite());
    }

    #[test]
    fn task_cost_charges_io_and_cpu() {
        let cfg = ClusterConfig::small_cluster(1);
        let t = TaskCost {
            read_bytes: 200 * 1024 * 1024,
            write_bytes: 0,
            records: 1_000_000,
            allocs: 0,
        };
        // 200 MB at 200 MB/s = 1s, plus 1M records at 1 µs = 1s.
        assert!((t.seconds(&cfg) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn more_nodes_means_more_slots() {
        assert_eq!(ClusterConfig::paper_cluster(20).total_map_slots(), 300);
        assert_eq!(ClusterConfig::paper_cluster(5).total_reduce_slots(), 75);
    }

    #[test]
    fn nodes_clamped_to_one() {
        assert_eq!(ClusterConfig::paper_cluster(0).nodes, 1);
    }

    #[test]
    fn slowdown_matches_phase_and_task() {
        let mut cfg = ClusterConfig::small_cluster(2);
        assert_eq!(cfg.slowdown_for("map", 0), 1.0);
        cfg.slow_tasks.push(SlowTask {
            phase: "map",
            task: 3,
            factor: 10.0,
        });
        cfg.slow_tasks.push(SlowTask {
            phase: "",
            task: 3,
            factor: 2.0,
        });
        assert_eq!(cfg.slowdown_for("map", 3), 20.0);
        assert_eq!(cfg.slowdown_for("reduce", 3), 2.0);
        assert_eq!(cfg.slowdown_for("map", 2), 1.0);
        // Sub-unit factors clamp to 1 (slowdowns never speed a task up).
        cfg.slow_tasks = vec![SlowTask {
            phase: "map",
            task: 0,
            factor: 0.5,
        }];
        assert_eq!(cfg.slowdown_for("map", 0), 1.0);
    }
}
