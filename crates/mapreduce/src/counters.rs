//! Hadoop-style named event counters.
//!
//! Counters are the only sanctioned channel from inside `MAP`/`REDUCE` back
//! to the driving program (paper Fig. 2 reads `source move` / `sink move`
//! after each round to decide termination).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use ffmr_sync::RwLock;

/// A concurrent set of named `u64` counters.
///
/// Cloneable handles are cheap (`Arc` internally is not needed: the runtime
/// shares it by reference); increments are lock-free once a counter exists.
///
/// # Example
/// ```
/// let counters = mapreduce::Counters::new();
/// counters.incr("source move", 1);
/// counters.incr("source move", 2);
/// assert_eq!(counters.value("source move"), 3);
/// assert_eq!(counters.value("never touched"), 0);
/// ```
#[derive(Debug, Default)]
pub struct Counters {
    inner: RwLock<HashMap<String, AtomicU64>>,
}

impl Counters {
    /// Creates an empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter named `name`, creating it at zero first
    /// if it does not exist.
    pub fn incr(&self, name: &str, delta: u64) {
        {
            let read = self.inner.read();
            if let Some(c) = read.get(name) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        let mut write = self.inner.write();
        write
            .entry(name.to_owned())
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of `name`, or 0 if never incremented.
    #[must_use]
    pub fn value(&self, name: &str) -> u64 {
        self.inner
            .read()
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Snapshot of every counter, sorted by name (deterministic output).
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        out.sort();
        out
    }

    /// Resets every counter to zero (used between rounds when a driver
    /// reuses one counter set).
    pub fn reset(&self) {
        for (_, v) in self.inner.read().iter() {
            v.store(0, Ordering::Relaxed);
        }
    }

    /// Rolls every counter back to a [`Counters::snapshot`] taken earlier
    /// from this same set; counters created since the snapshot drop to
    /// zero. The runtime uses this to discard a speculative duplicate
    /// attempt's increments — only one attempt's counters may count, just
    /// as Hadoop keeps only the winning attempt's counters.
    pub fn restore(&self, snapshot: &[(String, u64)]) {
        for (name, v) in self.inner.read().iter() {
            let old = snapshot
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
                .map_or(0, |i| snapshot[i].1);
            v.store(old, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_increments_sum() {
        let counters = Arc::new(Counters::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&counters);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr("hits", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counters.value("hits"), 8000);
    }

    #[test]
    fn snapshot_is_sorted() {
        let c = Counters::new();
        c.incr("zebra", 1);
        c.incr("apple", 2);
        let snap = c.snapshot();
        assert_eq!(snap[0].0, "apple");
        assert_eq!(snap[1].0, "zebra");
    }

    #[test]
    fn restore_rolls_back_to_snapshot() {
        let c = Counters::new();
        c.incr("kept", 5);
        let snap = c.snapshot();
        c.incr("kept", 3);
        c.incr("new since snapshot", 7);
        c.restore(&snap);
        assert_eq!(c.value("kept"), 5);
        assert_eq!(c.value("new since snapshot"), 0);
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let c = Counters::new();
        c.incr("x", 5);
        c.reset();
        assert_eq!(c.value("x"), 0);
        assert_eq!(c.snapshot().len(), 1);
    }
}
