//! Typed record encoding: the [`Datum`] trait and implementations.
//!
//! Every key and value that flows through a job implements [`Datum`], a
//! compact binary wire format analogous to Hadoop's `Writable`. The runtime
//! uses [`Datum::encoded_len`] to account, byte-exactly, for the disk and
//! network traffic each record causes.

use std::hash::Hash;

use crate::encode::{
    get_bytes, get_varint, get_varint_signed, put_bytes, put_varint, put_varint_signed,
};
use crate::error::DecodeError;

/// A value that can cross the simulated wire.
///
/// Implementations must round-trip: `decode(encode(x)) == x`, consuming
/// exactly the bytes that `encode` produced.
///
/// # Example
/// ```
/// use mapreduce::Datum;
/// let mut buf = Vec::new();
/// 42u64.encode(&mut buf);
/// let mut s = buf.as_slice();
/// assert_eq!(u64::decode(&mut s).unwrap(), 42);
/// ```
pub trait Datum: Sized + Send + Clone + 'static {
    /// Appends the wire representation of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `input`, advancing it.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated or malformed input.
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError>;

    /// Number of bytes [`Datum::encode`] would append.
    ///
    /// The default implementation encodes into a scratch buffer; override
    /// for hot types where the size is cheap to compute directly.
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// A [`Datum`] usable as an intermediate key: hashable for partitioning and
/// ordered for the shuffle sort.
pub trait KeyDatum: Datum + Ord + Eq + Hash {}

impl<T: Datum + Ord + Eq + Hash> KeyDatum for T {}

impl Datum for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(*self, buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        get_varint(input)
    }
    fn encoded_len(&self) -> usize {
        crate::encode::varint_len(*self)
    }
}

impl Datum for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(u64::from(*self), buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = get_varint(input)?;
        u32::try_from(v).map_err(|_| DecodeError::new("u32 out of range"))
    }
    fn encoded_len(&self) -> usize {
        crate::encode::varint_len(u64::from(*self))
    }
}

impl Datum for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint_signed(*self, buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        get_varint_signed(input)
    }
    fn encoded_len(&self) -> usize {
        crate::encode::varint_len(crate::encode::zigzag(*self))
    }
}

impl Datum for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_bytes(self.as_bytes(), buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let raw = get_bytes(input)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| DecodeError::new("invalid utf-8 string"))
    }
    fn encoded_len(&self) -> usize {
        crate::encode::varint_len(self.len() as u64) + self.len()
    }
}

impl Datum for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_bytes(self, buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(get_bytes(input)?.to_vec())
    }
    fn encoded_len(&self) -> usize {
        crate::encode::varint_len(self.len() as u64) + self.len()
    }
}

impl Datum for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(())
    }
    fn encoded_len(&self) -> usize {
        0
    }
}

impl<A: Datum, B: Datum> Datum for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<T: Datum> Datum for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(self.len() as u64, buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = get_varint(input)? as usize;
        // Guard against hostile length prefixes: each element needs >= 0
        // bytes, but cap pre-allocation at what the input could hold.
        let mut out = Vec::with_capacity(n.min(input.len().max(16)));
        for _ in 0..n {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
    fn encoded_len(&self) -> usize {
        crate::encode::varint_len(self.len() as u64)
            + self.iter().map(Datum::encoded_len).sum::<usize>()
    }
}

impl<T: Datum> Datum for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match input.split_first() {
            Some((&0, rest)) => {
                *input = rest;
                Ok(None)
            }
            Some((&1, rest)) => {
                *input = rest;
                Ok(Some(T::decode(input)?))
            }
            Some(_) => Err(DecodeError::new("invalid option tag")),
            None => Err(DecodeError::new("truncated option")),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Datum::encoded_len)
    }
}

/// Encodes one `(key, value)` record with a length-prefixed key so records
/// can be scanned without knowing the value type.
pub(crate) fn encode_record<K: Datum, V: Datum>(key: &K, value: &V, buf: &mut Vec<u8>) {
    put_varint(key.encoded_len() as u64, buf);
    key.encode(buf);
    put_varint(value.encoded_len() as u64, buf);
    value.encode(buf);
}

/// Decodes one record written by [`encode_record`].
pub(crate) fn decode_record<K: Datum, V: Datum>(input: &mut &[u8]) -> Result<(K, V), DecodeError> {
    let (kraw, vraw) = split_record(input)?;
    Ok((decode_exact(kraw, "key")?, decode_exact(vraw, "value")?))
}

/// Splits the next record's raw encoded key and value byte runs off
/// `input` without decoding either — the spill-merge path uses this to
/// walk record frames while only the *keys* it compares get decoded.
pub(crate) fn split_record<'a>(input: &mut &'a [u8]) -> Result<(&'a [u8], &'a [u8]), DecodeError> {
    let kraw = get_bytes(input)?;
    let vraw = get_bytes(input)?;
    Ok((kraw, vraw))
}

/// Decodes a datum from its raw (already length-stripped) slot, rejecting
/// trailing garbage. `what` names the slot for the error message.
pub(crate) fn decode_exact<T: Datum>(mut raw: &[u8], what: &str) -> Result<T, DecodeError> {
    let v = T::decode(&mut raw)?;
    if !raw.is_empty() {
        return Err(DecodeError::new(format!("trailing {what} bytes")));
    }
    Ok(v)
}

/// One key-sorted run of pre-encoded records — the unit of the map→reduce
/// spill format. Each map task writes one run per reduce partition
/// (records in key order, framed by `encode_record`); reduce tasks
/// k-way-merge the runs instead of re-sorting the partition. `data.len()`
/// is the run's exact wire size, so the shuffle accounts bytes per spill
/// rather than iterating records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillRun {
    /// Encoded records, back to back, in key order.
    pub data: Vec<u8>,
    /// Number of records in `data`.
    pub records: u64,
}

impl SpillRun {
    /// Appends one record (caller upholds the key-order invariant).
    pub fn push<K: Datum, V: Datum>(&mut self, key: &K, value: &V) {
        encode_record(key, value, &mut self.data);
        self.records += 1;
    }

    /// The run's exact wire size — its contribution to spill and shuffle
    /// byte accounting.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64
    }
}

/// Wire size of one record as stored in the DFS and counted by the shuffle.
/// Production accounting now sums spill-run byte lengths instead; this is
/// kept to assert the two agree.
#[cfg(test)]
pub(crate) fn record_len<K: Datum, V: Datum>(key: &K, value: &V) -> usize {
    let kl = key.encoded_len();
    let vl = value.encoded_len();
    crate::encode::varint_len(kl as u64) + kl + crate::encode::varint_len(vl as u64) + vl
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Datum + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len(), "encoded_len mismatch");
        let mut s = buf.as_slice();
        assert_eq!(T::decode(&mut s).unwrap(), v);
        assert!(s.is_empty(), "bytes left over");
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(7u32);
        round_trip(u32::MAX);
        round_trip(-12345i64);
        round_trip(String::from("héllo wörld"));
        round_trip(String::new());
        round_trip(vec![1u8, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip(());
    }

    #[test]
    fn compound_round_trips() {
        round_trip((42u64, String::from("x")));
        round_trip(vec![(1u64, 2i64), (3, -4)]);
        round_trip(Some(9u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![Some(1u64), None, Some(3)]);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        put_bytes(&[0xff, 0xfe], &mut buf);
        let mut s = buf.as_slice();
        assert!(String::decode(&mut s).is_err());
    }

    #[test]
    fn record_round_trip() {
        let mut buf = Vec::new();
        encode_record(&5u64, &String::from("abc"), &mut buf);
        assert_eq!(buf.len(), record_len(&5u64, &String::from("abc")));
        let mut s = buf.as_slice();
        let (k, v): (u64, String) = decode_record(&mut s).unwrap();
        assert_eq!((k, v), (5, "abc".to_string()));
    }

    #[test]
    fn record_rejects_trailing_key_bytes() {
        // Encode a record whose key slot has extra bytes after the key.
        let mut buf = Vec::new();
        let mut kbuf = Vec::new();
        5u64.encode(&mut kbuf);
        kbuf.push(0xAA);
        put_bytes(&kbuf, &mut buf);
        put_bytes(&[], &mut buf);
        let mut s = buf.as_slice();
        assert!(decode_record::<u64, ()>(&mut s).is_err());
    }

    #[test]
    fn hostile_vec_length_prefix_does_not_oom() {
        let mut buf = Vec::new();
        put_varint(u64::MAX, &mut buf); // claims 2^64-1 elements
        let mut s = buf.as_slice();
        assert!(Vec::<u64>::decode(&mut s).is_err());
    }

    #[test]
    fn option_invalid_tag_is_error() {
        let mut s: &[u8] = &[7];
        assert!(Option::<u64>::decode(&mut s).is_err());
    }
}
