//! A deterministic, multi-threaded MapReduce runtime with a cluster cost model.
//!
//! This crate is the substrate for the FFMR reproduction (Halim, Yap, Wu,
//! ICDCS 2011): a Hadoop-like MapReduce framework that really executes the
//! map → shuffle → reduce dataflow on threads, while a *cluster cost model*
//! ([`ClusterConfig`]) charges simulated time for disk I/O, network shuffle,
//! per-record CPU and per-round scheduling overheads — the cost drivers the
//! paper identifies (its Sec. V-A3 shows runtime is approximately linear in
//! shuffle bytes plus fixed round overheads).
//!
//! # Architecture
//!
//! * [`dfs`] — a simulated distributed file system ([`Dfs`]) holding encoded
//!   record files partitioned like Hadoop `part-NNNNN` outputs.
//! * [`record`] — byte-exact encoding of keys and values ([`Datum`]); every
//!   byte that would cross a disk or the network is counted.
//! * [`job`] — [`JobBuilder`] describing one MR round: mapper, reducer,
//!   partition count, optional schimmy input, side files and services.
//! * [`runtime`] — [`MrRuntime::run`] executes a job in parallel and returns
//!   [`JobStats`] (record counts, shuffle bytes, simulated seconds).
//! * [`cluster`] — the cost model.
//! * [`service`] — the stateful extension point used by FF2's `aug_proc`.
//! * [`counters`] — Hadoop-style named counters, readable by the driver.
//!
//! # Example
//!
//! A word-count round:
//!
//! ```
//! use mapreduce::{ClusterConfig, Dfs, JobBuilder, MapContext, MrRuntime, ReduceContext};
//!
//! # fn main() -> Result<(), mapreduce::MrError> {
//! let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
//! let words = vec![
//!     (0u64, "the quick brown fox".to_string()),
//!     (1u64, "the lazy dog".to_string()),
//! ];
//! rt.dfs_mut().write_records("input", 2, words.iter().cloned())?;
//!
//! let job = JobBuilder::new("wordcount")
//!     .input("input")
//!     .output("counts")
//!     .reducers(2)
//!     .map(|_k: &u64, line: &String, ctx: &mut MapContext<String, u64>| {
//!         for w in line.split_whitespace() {
//!             ctx.emit(w.to_string(), 1u64);
//!         }
//!     })
//!     .reduce(
//!         |word: &String,
//!          ones: &mut dyn Iterator<Item = u64>,
//!          ctx: &mut ReduceContext<String, u64>| {
//!             ctx.emit(word.clone(), ones.sum::<u64>());
//!         },
//!     );
//! let stats = rt.run(job)?;
//! assert_eq!(stats.reduce_output_records, 6); // 6 distinct words
//! let counts: Vec<(String, u64)> = rt.dfs().read_records("counts")?;
//! assert!(counts.contains(&("the".to_string(), 2)));
//! # Ok(())
//! # }
//! ```
//!
//! # Determinism
//!
//! Results are deterministic regardless of thread count: partitioning is
//! by key hash, map tasks emit key-sorted spill runs, and reducers k-way
//! merge those runs in map-task order (schimmy side input first), so the
//! same job on the same input produces byte-identical output. *Side effects* outside
//! the dataflow — the invocation order of stateful [`Service`] calls
//! (e.g. FF2's `aug_proc`) and the interleaving of counter updates — do
//! depend on scheduling. For fully deterministic service-call ordering
//! (reproducing a failure, diffing two runs record-for-record), pin the
//! host thread pool to a single worker:
//!
//! ```
//! # use mapreduce::{ClusterConfig, MrRuntime};
//! let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
//! rt.set_worker_threads(Some(1)); // sequential execution, stable ordering
//! ```
//!
//! `None` (the default) uses the host's available parallelism. The knob
//! changes wall-clock speed only — never simulated time or results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod counters;
pub mod dfs;
pub mod driver;
pub mod encode;
pub mod error;
pub mod exec;
pub mod job;
pub mod record;
pub mod runtime;
pub mod service;
pub mod stats;

pub use cluster::{ClusterConfig, SlowTask};
pub use counters::Counters;
pub use dfs::Dfs;
pub use error::MrError;
pub use exec::{
    JobTaskRunner, MapTaskResult, MapTaskSpec, ReduceTaskResult, ReduceTaskSpec, TaskExecutor,
    TaskRunner,
};
pub use job::{JobBuilder, MapContext, Mapper, ReduceContext, Reducer, WireSpec};
pub use record::{Datum, KeyDatum, SpillRun};
pub use runtime::{partition_of, FailurePolicy, MrRuntime, SpeculationPolicy};
pub use service::{Service, ServiceHandle};
pub use stats::JobStats;
