//! Job descriptions: mappers, reducers, combiners and their contexts.
//!
//! A job is built in two stages so the intermediate and output record types
//! are inferred from the user functions:
//!
//! ```
//! use mapreduce::{JobBuilder, MapContext, ReduceContext};
//! let job = JobBuilder::new("count")
//!     .input("in")
//!     .output("out")
//!     .reducers(4)
//!     .map(|k: &u64, v: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*k % 2, *v))
//!     .reduce(
//!         |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<u64, u64>| {
//!             ctx.emit(*k, vs.sum::<u64>());
//!         },
//!     );
//! assert_eq!(job.config().name, "count");
//! ```

use std::sync::Arc;

use crate::counters::Counters;
use crate::error::MrError;
use crate::record::{Datum, KeyDatum};
use crate::service::{Service, ServiceHandle};

/// The `MAP` function of a job.
///
/// Implemented for any `Fn(&KI, &VI, &mut MapContext<KM, VM>)`; implement
/// the trait directly to override [`Mapper::finish_split`] (the in-mapper
/// combining pattern from Lin & Schatz, referenced by the paper).
pub trait Mapper<KI, VI, KM, VM>: Send + Sync
where
    KM: KeyDatum,
    VM: Datum,
{
    /// Processes one input record, emitting intermediate records.
    fn map(&self, key: &KI, value: &VI, ctx: &mut MapContext<'_, KM, VM>);

    /// Called once after the last record of each input split; emit any
    /// split-local aggregates here.
    fn finish_split(&self, _ctx: &mut MapContext<'_, KM, VM>) {}
}

impl<F, KI, VI, KM, VM> Mapper<KI, VI, KM, VM> for F
where
    F: Fn(&KI, &VI, &mut MapContext<'_, KM, VM>) + Send + Sync,
    KM: KeyDatum,
    VM: Datum,
{
    fn map(&self, key: &KI, value: &VI, ctx: &mut MapContext<'_, KM, VM>) {
        self(key, value, ctx);
    }
}

/// The `REDUCE` function of a job. Values arrive grouped by key, in a
/// deterministic order: schimmy side-input records first, then each map
/// task's records in task-index order, each task's in emission order.
/// (Keys arrive in ascending order — the runtime k-way merges the map
/// tasks' key-sorted spill runs rather than re-sorting the partition.)
pub trait Reducer<KM, VM, KO, VO>: Send + Sync
where
    KO: Datum,
    VO: Datum,
{
    /// Processes one key group.
    fn reduce(
        &self,
        key: &KM,
        values: &mut dyn Iterator<Item = VM>,
        ctx: &mut ReduceContext<'_, KO, VO>,
    );
}

impl<F, KM, VM, KO, VO> Reducer<KM, VM, KO, VO> for F
where
    F: Fn(&KM, &mut dyn Iterator<Item = VM>, &mut ReduceContext<'_, KO, VO>) + Send + Sync,
    KO: Datum,
    VO: Datum,
{
    fn reduce(
        &self,
        key: &KM,
        values: &mut dyn Iterator<Item = VM>,
        ctx: &mut ReduceContext<'_, KO, VO>,
    ) {
        self(key, values, ctx);
    }
}

/// Emission context handed to mappers (and combiners).
///
/// Counter increments are buffered locally and merged into the job's
/// counters only when the task attempt *succeeds* — so retried task
/// attempts (see [`FailurePolicy`](crate::runtime::FailurePolicy)) never
/// double-count, matching Hadoop's exclusion of failed-attempt counters.
#[derive(Debug)]
pub struct MapContext<'a, KM, VM> {
    pub(crate) out: Vec<(KM, VM)>,
    pub(crate) local_counters: Vec<(String, u64)>,
    services: &'a ServiceHandle,
    allocs: u64,
    task: usize,
}

impl<'a, KM: KeyDatum, VM: Datum> MapContext<'a, KM, VM> {
    pub(crate) fn new(_counters: &'a Counters, services: &'a ServiceHandle, task: usize) -> Self {
        Self {
            out: Vec::new(),
            local_counters: Vec::new(),
            services,
            allocs: 0,
            task,
        }
    }

    /// Flushes this attempt's buffered counter increments into `counters`
    /// (the runtime calls this when the attempt succeeds; tests of
    /// mapper logic may call it manually).
    pub fn merge_counters_into(&self, counters: &Counters) {
        for (name, delta) in &self.local_counters {
            counters.incr(name, *delta);
        }
    }

    /// A standalone context for unit-testing mappers outside a job run.
    #[must_use]
    pub fn for_testing(counters: &'a Counters, services: &'a ServiceHandle) -> Self {
        Self::new(counters, services, 0)
    }

    /// Records emitted so far (primarily for tests of mapper logic).
    #[must_use]
    pub fn emitted(&self) -> &[(KM, VM)] {
        &self.out
    }

    /// Emits one intermediate record.
    pub fn emit(&mut self, key: KM, value: VM) {
        self.allocs += 1;
        self.out.push((key, value));
    }

    /// Increments a named job counter (applied only if this task attempt
    /// succeeds).
    pub fn incr(&mut self, name: &str, delta: u64) {
        if let Some(entry) = self.local_counters.iter_mut().find(|(n, _)| n == name) {
            entry.1 += delta;
        } else {
            self.local_counters.push((name.to_owned(), delta));
        }
    }

    /// Typed access to an attached stateful service (FF2's `aug_proc`).
    ///
    /// # Errors
    /// [`MrError::ServiceMissing`] if not attached under `name`.
    pub fn service<T: Service>(&self, name: &str) -> Result<&T, MrError> {
        self.services.get(name)
    }

    /// Records `n` short-lived allocations performed by the user function,
    /// feeding the FF4 allocation cost model.
    pub fn charge_allocs(&mut self, n: u64) {
        self.allocs += n;
    }

    /// Index of the map task this context belongs to.
    #[must_use]
    pub fn task(&self) -> usize {
        self.task
    }

    pub(crate) fn allocs(&self) -> u64 {
        self.allocs
    }
}

/// Emission context handed to reducers.
///
/// Counter increments are buffered locally and merged only when the
/// task attempt succeeds (see [`MapContext`]).
#[derive(Debug)]
pub struct ReduceContext<'a, KO, VO> {
    pub(crate) out: Vec<(KO, VO)>,
    pub(crate) local_counters: Vec<(String, u64)>,
    services: &'a ServiceHandle,
    allocs: u64,
    task: usize,
}

impl<'a, KO: Datum, VO: Datum> ReduceContext<'a, KO, VO> {
    pub(crate) fn new(_counters: &'a Counters, services: &'a ServiceHandle, task: usize) -> Self {
        Self {
            out: Vec::new(),
            local_counters: Vec::new(),
            services,
            allocs: 0,
            task,
        }
    }

    /// Flushes this attempt's buffered counter increments into `counters`
    /// (the runtime calls this when the attempt succeeds; tests of
    /// reducer logic may call it manually).
    pub fn merge_counters_into(&self, counters: &Counters) {
        for (name, delta) in &self.local_counters {
            counters.incr(name, *delta);
        }
    }

    /// A standalone context for unit-testing reducers outside a job run.
    #[must_use]
    pub fn for_testing(counters: &'a Counters, services: &'a ServiceHandle) -> Self {
        Self::new(counters, services, 0)
    }

    /// Records emitted so far (primarily for tests of reducer logic).
    #[must_use]
    pub fn emitted(&self) -> &[(KO, VO)] {
        &self.out
    }

    /// Emits one output record.
    pub fn emit(&mut self, key: KO, value: VO) {
        self.allocs += 1;
        self.out.push((key, value));
    }

    /// Increments a named job counter (applied only if this task attempt
    /// succeeds).
    pub fn incr(&mut self, name: &str, delta: u64) {
        if let Some(entry) = self.local_counters.iter_mut().find(|(n, _)| n == name) {
            entry.1 += delta;
        } else {
            self.local_counters.push((name.to_owned(), delta));
        }
    }

    /// Typed access to an attached stateful service.
    ///
    /// # Errors
    /// [`MrError::ServiceMissing`] if not attached under `name`.
    pub fn service<T: Service>(&self, name: &str) -> Result<&T, MrError> {
        self.services.get(name)
    }

    /// Records `n` short-lived allocations (see [`MapContext::charge_allocs`]).
    pub fn charge_allocs(&mut self, n: u64) {
        self.allocs += n;
    }

    /// Index of the reduce partition this context belongs to.
    #[must_use]
    pub fn task(&self) -> usize {
        self.task
    }

    pub(crate) fn allocs(&self) -> u64 {
        self.allocs
    }
}

/// How a job's user code travels to a remote worker process: a registered
/// job-kind name plus an opaque parameter blob the worker-side factory
/// turns back into mapper/combiner/reducer instances. Jobs without a wire
/// spec always execute in-process (closures cannot be shipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpec {
    /// Job-kind name, resolved by the worker's job-kind registry.
    pub kind: String,
    /// Opaque, kind-specific construction parameters.
    pub params: Vec<u8>,
}

/// Untyped job configuration shared by every stage of the builder.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Job name (for stats and diagnostics).
    pub name: String,
    /// Input record-file paths (read in order).
    pub inputs: Vec<String>,
    /// Output record-file path (must not exist).
    pub output: String,
    /// Number of reduce partitions.
    pub reducers: usize,
    /// Schimmy side input: a previous output, hash-partitioned the same
    /// way, merged into reducers without being shuffled (paper Sec. IV-B).
    pub schimmy: Option<String>,
    /// Side-file blobs each map task reads (e.g. `AugmentedEdges`); the
    /// cost model charges their bytes per map task.
    pub side_blobs: Vec<String>,
    /// Remote-execution description; `None` pins the job in-process even
    /// when the runtime has a task executor.
    pub wire: Option<WireSpec>,
}

/// First builder stage: paths, partitions, services.
#[derive(Debug, Default)]
pub struct JobBuilder {
    name: String,
    inputs: Vec<String>,
    output: String,
    reducers: usize,
    schimmy: Option<String>,
    side_blobs: Vec<String>,
    wire: Option<WireSpec>,
    services: ServiceHandle,
}

impl JobBuilder {
    /// Starts describing a job.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            reducers: 1,
            ..Self::default()
        }
    }

    /// Adds an input path (may be called repeatedly).
    #[must_use]
    pub fn input(mut self, path: impl Into<String>) -> Self {
        self.inputs.push(path.into());
        self
    }

    /// Sets the output path.
    #[must_use]
    pub fn output(mut self, path: impl Into<String>) -> Self {
        self.output = path.into();
        self
    }

    /// Sets the number of reduce partitions (default 1).
    #[must_use]
    pub fn reducers(mut self, n: usize) -> Self {
        self.reducers = n;
        self
    }

    /// Declares a schimmy side input (see [`JobConfig::schimmy`]).
    #[must_use]
    pub fn schimmy_input(mut self, path: impl Into<String>) -> Self {
        self.schimmy = Some(path.into());
        self
    }

    /// Declares a side-file blob read by every map task.
    #[must_use]
    pub fn side_blob(mut self, path: impl Into<String>) -> Self {
        self.side_blobs.push(path.into());
        self
    }

    /// Attaches a stateful service under `name`.
    #[must_use]
    pub fn attach_service(mut self, name: &str, service: Arc<dyn Service>) -> Self {
        self.services.attach(name, service);
        self
    }

    /// Declares how remote workers reconstruct this job's user code (see
    /// [`WireSpec`]). Without this, the job runs in-process even on a
    /// runtime with a task executor.
    #[must_use]
    pub fn wire(mut self, kind: impl Into<String>, params: Vec<u8>) -> Self {
        self.wire = Some(WireSpec {
            kind: kind.into(),
            params,
        });
        self
    }

    /// Supplies the `MAP` function, fixing the input and intermediate
    /// record types.
    pub fn map<M, KI, VI, KM, VM>(self, mapper: M) -> MappedJob<KI, VI, KM, VM>
    where
        M: Mapper<KI, VI, KM, VM> + 'static,
        KI: Datum,
        VI: Datum,
        KM: KeyDatum,
        VM: Datum,
    {
        MappedJob {
            config: JobConfig {
                name: self.name,
                inputs: self.inputs,
                output: self.output,
                reducers: self.reducers,
                schimmy: self.schimmy,
                side_blobs: self.side_blobs,
                wire: self.wire,
            },
            services: self.services,
            mapper: Arc::new(mapper),
            combiner: None,
        }
    }
}

/// Combiner function type: same shape as a reducer over intermediate types.
pub(crate) type CombinerFn<KM, VM> =
    Arc<dyn Fn(&KM, &mut dyn Iterator<Item = VM>, &mut MapContext<'_, KM, VM>) + Send + Sync>;

/// Second builder stage: the mapper is fixed; add a combiner or the reducer.
pub struct MappedJob<KI, VI, KM, VM>
where
    KM: KeyDatum,
    VM: Datum,
{
    pub(crate) config: JobConfig,
    pub(crate) services: ServiceHandle,
    pub(crate) mapper: Arc<dyn Mapper<KI, VI, KM, VM>>,
    pub(crate) combiner: Option<CombinerFn<KM, VM>>,
}

impl<KI, VI, KM, VM> MappedJob<KI, VI, KM, VM>
where
    KI: Datum,
    VI: Datum,
    KM: KeyDatum,
    VM: Datum,
{
    /// Adds a combiner, run per map task over its local output groups.
    ///
    /// The map task sorts its output by key first, so the combiner sees
    /// each distinct key exactly once, in ascending order, with values in
    /// emission order. Combiners may emit any keys (not just the group's);
    /// the runtime re-sorts afterwards only if the emitted run is out of
    /// order, preserving the spill's key-sorted invariant either way.
    #[must_use]
    pub fn combine<C>(mut self, combiner: C) -> Self
    where
        C: Fn(&KM, &mut dyn Iterator<Item = VM>, &mut MapContext<'_, KM, VM>)
            + Send
            + Sync
            + 'static,
    {
        self.combiner = Some(Arc::new(combiner));
        self
    }

    /// Supplies the `REDUCE` function, completing the job.
    pub fn reduce<R, KO, VO>(self, reducer: R) -> Job<KI, VI, KM, VM, KO, VO>
    where
        R: Reducer<KM, VM, KO, VO> + 'static,
        KO: Datum,
        VO: Datum,
    {
        Job {
            config: self.config,
            services: self.services,
            mapper: self.mapper,
            combiner: self.combiner,
            reducer: Arc::new(reducer),
        }
    }
}

/// A fully-described MapReduce job, ready for
/// [`MrRuntime::run`](crate::MrRuntime::run).
pub struct Job<KI, VI, KM, VM, KO, VO>
where
    KM: KeyDatum,
    VM: Datum,
{
    pub(crate) config: JobConfig,
    pub(crate) services: ServiceHandle,
    pub(crate) mapper: Arc<dyn Mapper<KI, VI, KM, VM>>,
    pub(crate) combiner: Option<CombinerFn<KM, VM>>,
    pub(crate) reducer: Arc<dyn Reducer<KM, VM, KO, VO>>,
}

impl<KI, VI, KM, VM, KO, VO> Job<KI, VI, KM, VM, KO, VO>
where
    KM: KeyDatum,
    VM: Datum,
{
    /// The job's configuration.
    #[must_use]
    pub fn config(&self) -> &JobConfig {
        &self.config
    }
}

impl<KI, VI, KM, VM, KO, VO> std::fmt::Debug for Job<KI, VI, KM, VM, KO, VO>
where
    KM: KeyDatum,
    VM: Datum,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("config", &self.config)
            .field("services", &self.services)
            .field("combiner", &self.combiner.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_config() {
        let job = JobBuilder::new("j")
            .input("a")
            .input("b")
            .output("o")
            .reducers(7)
            .schimmy_input("prev")
            .side_blob("delta")
            .map(|_k: &u64, _v: &u64, _ctx: &mut MapContext<'_, u64, u64>| {})
            .reduce(
                |_k: &u64,
                 _vs: &mut dyn Iterator<Item = u64>,
                 _ctx: &mut ReduceContext<'_, u64, u64>| {},
            );
        let cfg = job.config();
        assert_eq!(cfg.inputs, vec!["a", "b"]);
        assert_eq!(cfg.output, "o");
        assert_eq!(cfg.reducers, 7);
        assert_eq!(cfg.schimmy.as_deref(), Some("prev"));
        assert_eq!(cfg.side_blobs, vec!["delta"]);
    }

    #[test]
    fn contexts_collect_emissions_and_allocs() {
        let counters = Counters::new();
        let services = ServiceHandle::new();
        let mut ctx: MapContext<'_, u64, u64> = MapContext::new(&counters, &services, 3);
        ctx.emit(1, 2);
        ctx.emit(3, 4);
        ctx.charge_allocs(10);
        ctx.incr("seen", 2);
        ctx.incr("seen", 3);
        assert_eq!(ctx.out.len(), 2);
        assert_eq!(ctx.allocs(), 12);
        assert_eq!(ctx.task(), 3);
        assert_eq!(
            counters.value("seen"),
            0,
            "buffered until the attempt succeeds"
        );
        ctx.merge_counters_into(&counters);
        assert_eq!(counters.value("seen"), 5);
    }

    #[test]
    fn struct_mapper_with_finish_split() {
        struct Flusher;
        impl Mapper<u64, u64, u64, u64> for Flusher {
            fn map(&self, _k: &u64, _v: &u64, _ctx: &mut MapContext<'_, u64, u64>) {}
            fn finish_split(&self, ctx: &mut MapContext<'_, u64, u64>) {
                ctx.emit(99, 99);
            }
        }
        let counters = Counters::new();
        let services = ServiceHandle::new();
        let mut ctx = MapContext::new(&counters, &services, 0);
        Flusher.map(&1, &1, &mut ctx);
        Flusher.finish_split(&mut ctx);
        assert_eq!(ctx.out, vec![(99, 99)]);
    }
}
