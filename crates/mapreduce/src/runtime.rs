//! The job executor: really runs map → shuffle → reduce on host threads,
//! while pricing the job against the cluster cost model.

use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use ffmr_sync::Mutex;

use std::sync::Arc;

use crate::cluster::{ClusterConfig, PhaseCost, TaskCost};
use crate::counters::Counters;
use crate::dfs::{Dfs, DfsFile, InputSplit, Partition};
use crate::error::MrError;
use crate::job::{Job, MapContext, ReduceContext};
use crate::record::{encode_record, record_len, Datum, KeyDatum};
use crate::stats::JobStats;

/// An environment-fault injector: `(phase, task, attempt) -> crash?`.
pub type FaultInjector = Arc<dyn Fn(&'static str, usize, u32) -> bool + Send + Sync>;

/// One task's outcome slot in the parallel runner.
type TaskSlot<R> = Option<Result<(R, u32), MrError>>;

/// Decides how task failures are handled, mirroring Hadoop's
/// `mapred.map.max.attempts`: a failed task attempt (a panic in the user
/// function, or an injected environment fault) is retried up to
/// `max_attempts` times before the whole job fails. Failed attempts'
/// counter increments are discarded; their runtime is still charged to
/// the simulated clock (the slot was occupied).
#[derive(Clone)]
pub struct FailurePolicy {
    /// Attempts per task before the job fails (Hadoop's default is 4).
    pub max_attempts: u32,
    /// Environment-fault injector: `(phase, task, attempt) -> crash?`,
    /// consulted before each attempt. Deterministic injectors make fault
    /// tests reproducible.
    pub injector: Option<FaultInjector>,
}

impl std::fmt::Debug for FailurePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailurePolicy")
            .field("max_attempts", &self.max_attempts)
            .field("injector", &self.injector.is_some())
            .finish()
    }
}

impl Default for FailurePolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            injector: None,
        }
    }
}

impl FailurePolicy {
    /// Hadoop's default: 4 attempts per task, no injected faults.
    #[must_use]
    pub fn hadoop_default() -> Self {
        Self {
            max_attempts: 4,
            injector: None,
        }
    }

    /// A policy that injects a fault whenever `f(phase, task, attempt)`
    /// says so, with the given attempt budget.
    #[must_use]
    pub fn with_injector(
        max_attempts: u32,
        f: impl Fn(&'static str, usize, u32) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            max_attempts,
            injector: Some(Arc::new(f)),
        }
    }
}

/// Executes jobs against a [`Dfs`] and accumulates simulated time.
///
/// See the [crate docs](crate) for a full word-count example.
#[derive(Debug)]
pub struct MrRuntime {
    cluster: ClusterConfig,
    dfs: Dfs,
    worker_threads: Option<usize>,
    total_sim_seconds: f64,
    failure_policy: FailurePolicy,
}

impl MrRuntime {
    /// Creates a runtime simulating `cluster`.
    #[must_use]
    pub fn new(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            dfs: Dfs::new(),
            worker_threads: None,
            total_sim_seconds: 0.0,
            failure_policy: FailurePolicy::default(),
        }
    }

    /// Sets the task failure-handling policy (default: no retries).
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.failure_policy = policy;
    }

    /// The simulated cluster configuration.
    #[must_use]
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Replaces the cluster model (affects subsequent jobs only).
    pub fn set_cluster(&mut self, cluster: ClusterConfig) {
        self.cluster = cluster;
    }

    /// Limits host worker threads (`Some(1)` gives fully deterministic
    /// service-call ordering; default uses available parallelism).
    pub fn set_worker_threads(&mut self, n: Option<usize>) {
        self.worker_threads = n;
    }

    /// Shared access to the simulated DFS.
    #[must_use]
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Mutable access to the simulated DFS (for loading inputs, deleting
    /// intermediate round outputs, writing side blobs).
    pub fn dfs_mut(&mut self) -> &mut Dfs {
        &mut self.dfs
    }

    /// Simulated seconds accumulated across every job run so far.
    #[must_use]
    pub fn total_sim_seconds(&self) -> f64 {
        self.total_sim_seconds
    }

    /// Runs one job to completion.
    ///
    /// # Errors
    /// Fails if the configuration is invalid, an input is missing, the
    /// output exists, a record fails to decode, or a task panics.
    pub fn run<KI, VI, KM, VM, KO, VO>(
        &mut self,
        job: Job<KI, VI, KM, VM, KO, VO>,
    ) -> Result<JobStats, MrError>
    where
        KI: Datum,
        VI: Datum,
        KM: KeyDatum,
        VM: Datum,
        KO: Datum,
        VO: Datum,
    {
        let wall_start = Instant::now();
        let cfg = job.config().clone();
        let mut job_span = ffmr_obs::span("mr.job");
        job_span.field("job", &cfg.name);
        if cfg.reducers == 0 {
            return Err(MrError::InvalidJob("reducers must be > 0".into()));
        }
        if cfg.inputs.is_empty() {
            return Err(MrError::InvalidJob("no input paths".into()));
        }
        if self.dfs.exists(&cfg.output) {
            return Err(MrError::OutputExists(cfg.output.clone()));
        }

        let counters = Counters::new();
        job.services.begin_round();

        // ------------------------------------------------- map phase
        // One map task per block-sized, record-aligned input split
        // (Hadoop's InputSplit), across all input files.
        let map_span = ffmr_obs::span("mr.map");
        let block_bytes = (self.cluster.dfs_block_mb * 1024.0 * 1024.0).max(1.0) as usize;
        let mut splits: Vec<InputSplit<'_>> = Vec::new();
        for input in &cfg.inputs {
            self.dfs.check_available(input)?;
            let file = self.dfs.file(input)?;
            for partition in &file.partitions {
                for (a, b, records) in partition.splits(block_bytes)? {
                    splits.push(InputSplit {
                        data: &partition.data[a..b],
                        records,
                    });
                }
            }
        }
        if let Some(schimmy) = &cfg.schimmy {
            self.dfs.check_available(schimmy)?;
        }
        let side_bytes: u64 = cfg.side_blobs.iter().map(|p| self.dfs.blob_bytes(p)).sum();

        let reducers = cfg.reducers;
        let mapper = &job.mapper;
        let combiner = &job.combiner;
        let services = &job.services;

        struct MapResult<KM, VM> {
            // Per reduce partition: records and their wire sizes.
            by_partition: Vec<Vec<(KM, VM, usize)>>,
            input_records: u64,
            output_records: u64,
            cost: TaskCost,
        }

        let map_results: Vec<(MapResult<KM, VM>, u32)> = run_parallel(
            "map",
            self.worker_threads,
            &self.failure_policy,
            splits,
            |task_idx, split| -> Result<MapResult<KM, VM>, MrError> {
                let records: Vec<(KI, VI)> = split.decode_all()?;
                let input_records = records.len() as u64;
                let mut ctx = MapContext::new(&counters, services, task_idx);
                for (k, v) in &records {
                    mapper.map(k, v, &mut ctx);
                }
                mapper.finish_split(&mut ctx);
                let output_records = ctx.out.len() as u64;
                let mut allocs = ctx.allocs() + input_records;
                ctx.merge_counters_into(&counters);
                let mut out = ctx.out;

                // Optional combiner: group task-local output by key.
                if let Some(comb) = combiner {
                    out.sort_by(|a, b| a.0.cmp(&b.0));
                    let mut cctx = MapContext::new(&counters, services, task_idx);
                    let mut it = out.into_iter().peekable();
                    while let Some((key, first)) = it.next() {
                        let mut group = vec![first];
                        while it.peek().is_some_and(|(k, _)| *k == key) {
                            group.push(it.next().expect("peeked").1);
                        }
                        comb(&key, &mut group.into_iter(), &mut cctx);
                    }
                    allocs += cctx.allocs();
                    cctx.merge_counters_into(&counters);
                    out = cctx.out;
                }

                // Partition and size the (possibly combined) output.
                let mut by_partition: Vec<Vec<(KM, VM, usize)>> =
                    (0..reducers).map(|_| Vec::new()).collect();
                let mut spill_bytes = 0u64;
                for (k, v) in out {
                    let len = record_len(&k, &v);
                    spill_bytes += len as u64;
                    by_partition[partition_of(&k, reducers)].push((k, v, len));
                }

                let cost = TaskCost {
                    read_bytes: split.data.len() as u64 + side_bytes,
                    write_bytes: spill_bytes,
                    records: input_records + output_records,
                    allocs,
                };
                Ok(MapResult {
                    by_partition,
                    input_records,
                    output_records,
                    cost,
                })
            },
        )?;

        let mut map_phase = PhaseCost::new();
        let mut map_input_records = 0u64;
        let mut map_output_records = 0u64;
        let mut input_bytes = 0u64;
        let mut failed_attempts = 0u64;
        for (r, attempts) in &map_results {
            // Failed attempts occupied a slot for about as long as the
            // successful one; charge them.
            map_phase.push_task(r.cost.seconds(&self.cluster) * f64::from(*attempts));
            failed_attempts += u64::from(attempts - 1);
            map_input_records += r.input_records;
            map_output_records += r.output_records;
            input_bytes += r.cost.read_bytes - side_bytes;
        }
        let map_tasks = map_results.len();
        drop(map_span);

        // ------------------------------------------------- shuffle
        let shuffle_span = ffmr_obs::span("mr.shuffle");
        // Route every intermediate record to its reduce partition, counting
        // total fetched bytes (Hadoop's reduce-shuffle-bytes) and the subset
        // that crosses node boundaries (network time).
        let mut groups_in: Vec<Vec<(KM, VM)>> = (0..reducers).map(|_| Vec::new()).collect();
        let mut partition_bytes: Vec<u64> = vec![0; reducers];
        let mut shuffle_bytes = 0u64;
        let mut cross_node_bytes = 0u64;
        for (task_idx, (result, _)) in map_results.into_iter().enumerate() {
            let from_node = self.cluster.map_node(task_idx);
            for (p, records) in result.by_partition.into_iter().enumerate() {
                let to_node = self.cluster.reduce_node(p);
                for (k, v, len) in records {
                    shuffle_bytes += len as u64;
                    partition_bytes[p] += len as u64;
                    if from_node != to_node {
                        cross_node_bytes += len as u64;
                    }
                    groups_in[p].push((k, v));
                }
            }
        }

        let mb = 1024.0 * 1024.0;
        let net_agg = self.cluster.net_mb_per_s * self.cluster.nodes as f64;
        let disk_agg = self.cluster.disk_mb_per_s * self.cluster.nodes as f64;
        let shuffle_seconds = cross_node_bytes as f64 / mb / net_agg
            + self.cluster.sort_factor * shuffle_bytes as f64 / mb / disk_agg;
        drop(shuffle_span);

        // ------------------------------------------------- reduce phase
        // (Per-task key sorting — Hadoop's sort phase — happens inside
        // each reduce task and is covered by this span.)
        let reduce_span = ffmr_obs::span("mr.reduce");
        // Schimmy: pull the matching partition of a previous output and
        // merge it with the shuffled records by key, without shuffling it.
        let schimmy_file: Option<&DfsFile> = match &cfg.schimmy {
            Some(path) => {
                let f = self.dfs.file(path)?;
                if f.partitions.len() != reducers {
                    return Err(MrError::InvalidJob(format!(
                        "schimmy input {} has {} partitions, job has {} reducers",
                        path,
                        f.partitions.len(),
                        reducers
                    )));
                }
                Some(f)
            }
            None => None,
        };

        let reducer = &job.reducer;
        struct ReduceResult {
            partition: Partition,
            output_records: u64,
            cost: TaskCost,
            schimmy_bytes: u64,
        }

        let reduce_inputs: Vec<(Vec<(KM, VM)>, u64)> = groups_in
            .into_iter()
            .zip(partition_bytes.iter().copied())
            .collect();

        let reduce_results: Vec<(ReduceResult, u32)> = run_parallel(
            "reduce",
            self.worker_threads,
            &self.failure_policy,
            reduce_inputs,
            |r, (mut records, fetched_bytes)| -> Result<ReduceResult, MrError> {
                // Stable sort groups equal keys while preserving map-task
                // order within a group (deterministic value order).
                records.sort_by(|a, b| a.0.cmp(&b.0));
                let consumed = records.len() as u64;

                let (schimmy_records, schimmy_bytes): (Vec<(KM, VM)>, u64) = match schimmy_file {
                    Some(f) => {
                        let part = &f.partitions[r];
                        let mut recs: Vec<(KM, VM)> = part.decode_all()?;
                        recs.sort_by(|a, b| a.0.cmp(&b.0));
                        (recs, part.data.len() as u64)
                    }
                    None => (Vec::new(), 0),
                };

                let mut ctx = ReduceContext::new(&counters, services, r);
                merge_reduce(schimmy_records, records, |key, values| {
                    reducer.reduce(key, values, &mut ctx);
                });
                ctx.merge_counters_into(&counters);

                let output_records = ctx.out.len() as u64;
                let allocs = ctx.allocs() + consumed;
                let mut data = Vec::new();
                for (k, v) in &ctx.out {
                    encode_record(k, v, &mut data);
                }
                let cost = TaskCost {
                    read_bytes: fetched_bytes + schimmy_bytes,
                    write_bytes: data.len() as u64,
                    records: consumed + output_records,
                    allocs,
                };
                Ok(ReduceResult {
                    partition: Partition {
                        data,
                        records: output_records,
                        home_node: self.cluster.reduce_node(r),
                    },
                    output_records,
                    cost,
                    schimmy_bytes,
                })
            },
        )?;

        job.services.end_round();

        let mut reduce_phase = PhaseCost::new();
        let mut reduce_output_records = 0u64;
        let mut output_bytes = 0u64;
        let mut schimmy_bytes = 0u64;
        let mut partitions = Vec::with_capacity(reducers);
        for (r, attempts) in reduce_results {
            reduce_phase.push_task(r.cost.seconds(&self.cluster) * f64::from(attempts));
            failed_attempts += u64::from(attempts - 1);
            reduce_output_records += r.output_records;
            output_bytes += r.partition.data.len() as u64;
            schimmy_bytes += r.schimmy_bytes;
            partitions.push(r.partition);
        }
        let reduce_tasks = partitions.len();
        self.dfs.insert_file(&cfg.output, DfsFile { partitions })?;
        drop(reduce_span);

        // Replication traffic for the extra DFS copies.
        let replication_seconds = output_bytes as f64
            * f64::from(self.cluster.dfs_replication.saturating_sub(1))
            / mb
            / net_agg;

        let sim_seconds = self.cluster.round_overhead_s
            + map_phase.makespan(self.cluster.total_map_slots())
            + shuffle_seconds
            + reduce_phase.makespan(self.cluster.total_reduce_slots())
            + replication_seconds;
        self.total_sim_seconds += sim_seconds;

        let stats = JobStats {
            name: cfg.name,
            map_input_records,
            map_output_records,
            map_output_bytes: shuffle_bytes,
            shuffle_bytes,
            reduce_output_records,
            output_bytes,
            input_bytes,
            schimmy_bytes,
            map_tasks,
            reduce_tasks,
            failed_attempts,
            sim_seconds,
            wall_seconds: wall_start.elapsed().as_secs_f64(),
            counters: counters.snapshot(),
        };
        fold_job_metrics(&stats);
        Ok(stats)
    }
}

/// Folds one job's statistics into the process-wide metrics registry —
/// the cumulative analogue of Hadoop's per-job counters page. Names
/// mirror [`JobStats`] fields (`mr_shuffle_bytes_total` ↔
/// `shuffle_bytes`, the paper's "Shuffle" column of Table I).
#[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
fn fold_job_metrics(stats: &JobStats) {
    let m = ffmr_obs::global();
    m.counter("ffmr_mr_jobs_total", &[]).inc();
    m.counter("ffmr_mr_map_input_records_total", &[])
        .add(stats.map_input_records);
    m.counter("ffmr_mr_map_output_records_total", &[])
        .add(stats.map_output_records);
    m.counter("ffmr_mr_shuffle_bytes_total", &[])
        .add(stats.shuffle_bytes);
    m.counter("ffmr_mr_reduce_output_records_total", &[])
        .add(stats.reduce_output_records);
    m.counter("ffmr_mr_output_bytes_total", &[])
        .add(stats.output_bytes);
    m.counter("ffmr_mr_input_bytes_total", &[])
        .add(stats.input_bytes);
    m.counter("ffmr_mr_schimmy_bytes_total", &[])
        .add(stats.schimmy_bytes);
    m.counter("ffmr_mr_map_tasks_total", &[])
        .add(stats.map_tasks as u64);
    m.counter("ffmr_mr_reduce_tasks_total", &[])
        .add(stats.reduce_tasks as u64);
    m.counter("ffmr_mr_failed_attempts_total", &[])
        .add(stats.failed_attempts);
    m.counter("ffmr_mr_sim_millis_total", &[])
        .add((stats.sim_seconds * 1_000.0).max(0.0) as u64);
    m.histogram("ffmr_mr_job_wall_us", &[])
        .record((stats.wall_seconds * 1_000_000.0).max(0.0) as u64);
}

/// Stable hash partitioner (deterministic across runs and platforms for a
/// given std release; FF only relies on within-run stability).
pub(crate) fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Merges key-sorted schimmy records with key-sorted shuffled records and
/// invokes `f` once per distinct key, schimmy values first.
fn merge_reduce<K: Ord, V>(
    schimmy: Vec<(K, V)>,
    shuffled: Vec<(K, V)>,
    mut f: impl FnMut(&K, &mut dyn Iterator<Item = V>),
) {
    let mut a = schimmy.into_iter().peekable();
    let mut b = shuffled.into_iter().peekable();
    loop {
        let take_a = match (a.peek(), b.peek()) {
            (None, None) => return,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((ka, _)), Some((kb, _))) => ka <= kb,
        };
        let (key, first) = if take_a {
            a.next().expect("peeked")
        } else {
            b.next().expect("peeked")
        };
        let mut values = Vec::new();
        values.push(first);
        while a.peek().is_some_and(|(k, _)| *k == key) {
            values.push(a.next().expect("peeked").1);
        }
        while b.peek().is_some_and(|(k, _)| *k == key) {
            values.push(b.next().expect("peeked").1);
        }
        f(&key, &mut values.into_iter());
    }
}

/// Runs `f` over `items` on a small thread pool, preserving result order,
/// converting panics into [`MrError::TaskFailed`], and retrying failed
/// tasks per the [`FailurePolicy`]. Returns each result with the number
/// of attempts it took.
fn run_parallel<T, R, F>(
    phase: &'static str,
    worker_threads: Option<usize>,
    policy: &FailurePolicy,
    items: Vec<T>,
    f: F,
) -> Result<Vec<(R, u32)>, MrError>
where
    T: Send + Clone,
    R: Send,
    F: Fn(usize, T) -> Result<R, MrError> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = worker_threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .clamp(1, n);

    if workers == 1 {
        // Fast path, also the deterministic mode.
        let mut out = Vec::with_capacity(n);
        for (i, item) in items.into_iter().enumerate() {
            out.push(run_task_with_retry(phase, policy, i, item, &f)?);
        }
        return Ok(out);
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<TaskSlot<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().pop_front();
                let Some((i, item)) = next else { break };
                let result = run_task_with_retry(phase, policy, i, item, &f);
                results.lock()[i] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every task produced a result"))
        .collect()
}

/// One task with the policy's retry budget; returns the result and the
/// attempts consumed.
fn run_task_with_retry<T, R>(
    phase: &'static str,
    policy: &FailurePolicy,
    index: usize,
    item: T,
    f: &(impl Fn(usize, T) -> Result<R, MrError> + Sync),
) -> Result<(R, u32), MrError>
where
    T: Clone,
{
    let budget = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        // Injected environment fault: the attempt dies before user code.
        let injected = policy
            .injector
            .as_ref()
            .is_some_and(|inject| inject(phase, index, attempt));
        let result = if injected {
            Err(MrError::TaskFailed {
                phase,
                task: index,
                message: format!("injected environment fault (attempt {attempt})"),
            })
        } else {
            run_task(phase, index, item.clone(), f)
        };
        attempt += 1;
        match result {
            Ok(r) => return Ok((r, attempt)),
            Err(e) if attempt >= budget => return Err(e),
            Err(_) => {} // retry
        }
    }
}

fn run_task<T, R>(
    phase: &'static str,
    index: usize,
    item: T,
    f: &(impl Fn(usize, T) -> Result<R, MrError> + Sync),
) -> Result<R, MrError> {
    match catch_unwind(AssertUnwindSafe(|| f(index, item))) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            Err(MrError::TaskFailed {
                phase,
                task: index,
                message,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for k in 0u64..1000 {
            let p = partition_of(&k, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&k, 7));
        }
    }

    #[test]
    fn merge_reduce_unions_keys_schimmy_first() {
        let schimmy = vec![(1, "m1"), (3, "m3")];
        let shuffled = vec![(1, "f1a"), (1, "f1b"), (2, "f2")];
        let mut seen = Vec::new();
        merge_reduce(schimmy, shuffled, |k, vs| {
            seen.push((*k, vs.collect::<Vec<_>>()));
        });
        assert_eq!(
            seen,
            vec![
                (1, vec!["m1", "f1a", "f1b"]),
                (2, vec!["f2"]),
                (3, vec!["m3"]),
            ]
        );
    }

    #[test]
    fn merge_reduce_empty_sides() {
        let mut count = 0;
        merge_reduce(Vec::<(u64, ())>::new(), Vec::new(), |_, _| count += 1);
        assert_eq!(count, 0);
        merge_reduce(vec![(1u64, ())], Vec::new(), |_, _| count += 1);
        assert_eq!(count, 1);
        merge_reduce(Vec::new(), vec![(1u64, ())], |_, _| count += 1);
        assert_eq!(count, 2);
    }

    #[test]
    fn run_parallel_preserves_order() {
        let policy = FailurePolicy::default();
        let out = run_parallel("map", Some(4), &policy, (0..100).collect(), |i, x: i32| {
            Ok(i as i32 * 2 + x - x)
        })
        .unwrap();
        let values: Vec<i32> = out.into_iter().map(|(v, _)| v).collect();
        assert_eq!(values, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_surfaces_panics() {
        let policy = FailurePolicy::default();
        let err = run_parallel("reduce", Some(2), &policy, vec![1, 2, 3], |_, x: i32| {
            assert!(x != 2, "boom on two");
            Ok(x)
        })
        .unwrap_err();
        match err {
            MrError::TaskFailed { phase, message, .. } => {
                assert_eq!(phase, "reduce");
                assert!(message.contains("boom"), "message: {message}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn run_parallel_empty() {
        let policy = FailurePolicy::default();
        let out: Vec<(i32, u32)> =
            run_parallel("map", None, &policy, Vec::<i32>::new(), |_, x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn retry_recovers_from_transient_faults() {
        // Fail every task's first attempt; all succeed on the second.
        let policy = FailurePolicy::with_injector(3, |_, _, attempt| attempt == 0);
        let out =
            run_parallel("map", Some(2), &policy, vec![10, 20, 30], |_, x: i32| Ok(x)).unwrap();
        for (v, attempts) in out {
            assert!(v >= 10);
            assert_eq!(attempts, 2);
        }
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_job() {
        let policy = FailurePolicy::with_injector(2, |_, task, _| task == 1);
        let err =
            run_parallel("map", Some(2), &policy, vec![1, 2, 3], |_, x: i32| Ok(x)).unwrap_err();
        assert!(matches!(err, MrError::TaskFailed { task: 1, .. }));
    }

    #[test]
    fn user_panics_are_also_retried() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let policy = FailurePolicy::hadoop_default();
        let out = run_parallel("map", Some(1), &policy, vec![1], |_, x: i32| {
            if CALLS.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("flaky");
            }
            Ok(x)
        })
        .unwrap();
        assert_eq!(out[0], (1, 3));
    }
}
