//! The job executor: really runs map → shuffle → reduce on host threads,
//! while pricing the job against the cluster cost model.
//!
//! The intermediate-data plane is Hadoop's sort/merge pipeline: map tasks
//! emit key-sorted, pre-encoded spill runs (one per reduce partition,
//! sorted inside the parallel map phase), the shuffle transposes spills
//! to per-reducer fetch lists and accounts bytes per spill, and reduce
//! tasks k-way merge the sorted runs — schimmy side input first, then
//! map-task index order — instead of re-sorting the whole partition. See
//! DESIGN.md § "Shuffle pipeline" for the format and the determinism
//! contract.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BinaryHeap, VecDeque};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use ffmr_sync::Mutex;

use std::sync::Arc;

use crate::cluster::{ClusterConfig, PhaseCost, TaskCost};
use crate::counters::Counters;
use crate::dfs::{Dfs, DfsFile, InputSplit, Partition};
use crate::error::{DecodeError, MrError};
use crate::exec::{JobTaskRunner, MapTaskResult, MapTaskSpec, ReduceTaskSpec, TaskExecutor};
use crate::job::{Job, WireSpec};
use crate::record::{decode_exact, split_record, Datum, KeyDatum, SpillRun};
use crate::stats::JobStats;

/// An environment-fault injector: `(phase, task, attempt) -> crash?`.
pub type FaultInjector = Arc<dyn Fn(&'static str, usize, u32) -> bool + Send + Sync>;

/// One attempt's host wall-clock window: `(start_us, end_us)` relative
/// to the job's `run()` entry, for the flight recorder.
type WallWindow = (u64, u64);

/// One task's outcome slot in the parallel runner.
type TaskSlot<R> = Option<Result<(R, u32, Vec<WallWindow>), MrError>>;

/// Microseconds elapsed on `epoch`, saturating.
fn elapsed_us(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Decides how task failures are handled, mirroring Hadoop's
/// `mapred.map.max.attempts`: a failed task attempt (a panic in the user
/// function, or an injected environment fault) is retried up to
/// `max_attempts` times before the whole job fails. Failed attempts'
/// counter increments are discarded; their runtime is still charged to
/// the simulated clock (the slot was occupied).
#[derive(Clone)]
pub struct FailurePolicy {
    /// Attempts per task before the job fails (Hadoop's default is 4).
    pub max_attempts: u32,
    /// Environment-fault injector: `(phase, task, attempt) -> crash?`,
    /// consulted before each attempt. Deterministic injectors make fault
    /// tests reproducible.
    pub injector: Option<FaultInjector>,
}

impl std::fmt::Debug for FailurePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailurePolicy")
            .field("max_attempts", &self.max_attempts)
            .field("injector", &self.injector.is_some())
            .finish()
    }
}

impl Default for FailurePolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            injector: None,
        }
    }
}

impl FailurePolicy {
    /// Hadoop's default: 4 attempts per task, no injected faults.
    #[must_use]
    pub fn hadoop_default() -> Self {
        Self {
            max_attempts: 4,
            injector: None,
        }
    }

    /// A policy that injects a fault whenever `f(phase, task, attempt)`
    /// says so, with the given attempt budget.
    #[must_use]
    pub fn with_injector(
        max_attempts: u32,
        f: impl Fn(&'static str, usize, u32) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            max_attempts,
            injector: Some(Arc::new(f)),
        }
    }
}

/// When and how the runtime launches speculative duplicate attempts for
/// straggling tasks — Hadoop's speculative execution, priced in the
/// simulated cost model and really re-executed on the host (outputs and
/// counters of the losing attempt are discarded; attached services see
/// the duplicate calls a real cluster would produce).
///
/// A task speculates when its simulated duration exceeds the phase's
/// `percentile` duration by more than `slack`x. The duplicate starts at
/// that detection threshold on a healthy (un-slowed) node; whichever
/// attempt finishes first wins, and the loser's slot occupancy is still
/// charged.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationPolicy {
    /// Master switch (default off: identical behavior to the pre-existing
    /// runtime).
    pub enabled: bool,
    /// Percentile (0..=1) of the phase's task durations used as the
    /// baseline for straggler detection.
    pub percentile: f64,
    /// A task is a straggler when it exceeds the percentile duration by
    /// this factor (clamped to at least 1).
    pub slack: f64,
    /// Phases with fewer tasks than this never speculate (too little
    /// signal to call anything a straggler).
    pub min_tasks: usize,
}

impl Default for SpeculationPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            percentile: 0.75,
            slack: 1.5,
            min_tasks: 2,
        }
    }
}

impl SpeculationPolicy {
    /// Speculation on, with Hadoop-like thresholds.
    #[must_use]
    pub fn hadoop_default() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Executes jobs against a [`Dfs`] and accumulates simulated time.
///
/// See the [crate docs](crate) for a full word-count example.
pub struct MrRuntime {
    cluster: ClusterConfig,
    dfs: Dfs,
    worker_threads: Option<usize>,
    total_sim_seconds: f64,
    failure_policy: FailurePolicy,
    speculation: SpeculationPolicy,
    executor: Option<Arc<dyn TaskExecutor>>,
}

impl std::fmt::Debug for MrRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MrRuntime")
            .field("cluster", &self.cluster)
            .field("worker_threads", &self.worker_threads)
            .field("total_sim_seconds", &self.total_sim_seconds)
            .field("failure_policy", &self.failure_policy)
            .field("speculation", &self.speculation)
            .field("executor", &self.executor.is_some())
            .finish_non_exhaustive()
    }
}

impl MrRuntime {
    /// Creates a runtime simulating `cluster`.
    #[must_use]
    pub fn new(cluster: ClusterConfig) -> Self {
        let mut dfs = Dfs::new();
        dfs.set_nodes(cluster.nodes);
        Self {
            cluster,
            dfs,
            worker_threads: None,
            total_sim_seconds: 0.0,
            failure_policy: FailurePolicy::default(),
            speculation: SpeculationPolicy::default(),
            executor: None,
        }
    }

    /// Installs (or clears) the task executor jobs with a
    /// [`WireSpec`] are dispatched through —
    /// distributed mode's entry point. Jobs without a wire spec, and
    /// every runtime without an executor, run tasks in process exactly
    /// as before.
    pub fn set_task_executor(&mut self, executor: Option<Arc<dyn TaskExecutor>>) {
        self.executor = executor;
    }

    /// Whether a task executor is installed (drivers use this to decide
    /// whether to attach wire specs to their jobs).
    #[must_use]
    pub fn has_task_executor(&self) -> bool {
        self.executor.is_some()
    }

    /// Sets the task failure-handling policy (default: no retries).
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.failure_policy = policy;
    }

    /// Sets the speculative-execution policy (default: off).
    pub fn set_speculation(&mut self, policy: SpeculationPolicy) {
        self.speculation = policy;
    }

    /// The simulated cluster configuration.
    #[must_use]
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Replaces the cluster model (affects subsequent jobs only).
    pub fn set_cluster(&mut self, cluster: ClusterConfig) {
        self.dfs.set_nodes(cluster.nodes);
        self.cluster = cluster;
    }

    /// Limits host worker threads (`Some(1)` gives fully deterministic
    /// service-call ordering; default uses available parallelism).
    pub fn set_worker_threads(&mut self, n: Option<usize>) {
        self.worker_threads = n;
    }

    /// Shared access to the simulated DFS.
    #[must_use]
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Mutable access to the simulated DFS (for loading inputs, deleting
    /// intermediate round outputs, writing side blobs).
    pub fn dfs_mut(&mut self) -> &mut Dfs {
        &mut self.dfs
    }

    /// Simulated seconds accumulated across every job run so far.
    #[must_use]
    pub fn total_sim_seconds(&self) -> f64 {
        self.total_sim_seconds
    }

    /// Runs one job to completion.
    ///
    /// # Errors
    /// Fails if the configuration is invalid, an input is missing, the
    /// output exists, a record fails to decode, or a task panics.
    pub fn run<KI, VI, KM, VM, KO, VO>(
        &mut self,
        job: Job<KI, VI, KM, VM, KO, VO>,
    ) -> Result<JobStats, MrError>
    where
        KI: Datum,
        VI: Datum,
        KM: KeyDatum,
        VM: Datum,
        KO: Datum,
        VO: Datum,
    {
        let wall_start = Instant::now();
        let cfg = job.config().clone();
        let mut job_span = ffmr_obs::span("mr.job");
        job_span.field("job", &cfg.name);
        // The job span's id doubles as the trace id: every span this
        // process (and, via the dispatch protocol, every worker) opens
        // until the next job carries it, stitching one cross-process
        // trace per job. Zero when tracing is off — nothing to stitch.
        ffmr_obs::set_trace_id(job_span.id());
        if cfg.reducers == 0 {
            return Err(MrError::InvalidJob("reducers must be > 0".into()));
        }
        if cfg.inputs.is_empty() {
            return Err(MrError::InvalidJob("no input paths".into()));
        }
        if self.dfs.exists(&cfg.output) {
            return Err(MrError::OutputExists(cfg.output.clone()));
        }

        let counters = Counters::new();
        job.services.begin_round();

        // ------------------------------------------------- map phase
        // One map task per block-sized, record-aligned input split
        // (Hadoop's InputSplit), across all input files.
        let map_span = ffmr_obs::span("mr.map");
        let block_bytes = (self.cluster.dfs_block_mb * 1024.0 * 1024.0).max(1.0) as usize;
        let mut splits: Vec<InputSplit<'_>> = Vec::new();
        for input in &cfg.inputs {
            self.dfs.check_available(input)?;
            let file = self.dfs.file(input)?;
            for partition in &file.partitions {
                for (a, b, records) in partition.splits(block_bytes)? {
                    splits.push(InputSplit {
                        data: &partition.data[a..b],
                        records,
                    });
                }
            }
        }
        if let Some(schimmy) = &cfg.schimmy {
            self.dfs.check_available(schimmy)?;
        }
        let side_bytes: u64 = cfg.side_blobs.iter().map(|p| self.dfs.blob_bytes(p)).sum();

        let reducers = cfg.reducers;

        // The typed task bodies (decode → map → sort → combine → spill,
        // and the reduce merge) live in `JobTaskRunner` — the same code a
        // remote worker runs after reconstructing the job from its wire
        // spec, which is what makes distributed output byte-identical.
        let runner = JobTaskRunner::from_parts(
            Arc::clone(&job.mapper),
            job.combiner.clone(),
            Arc::clone(&job.reducer),
            job.services.clone(),
        );
        // Dispatch remotely only when both halves exist: an installed
        // executor and a job that declared how to rebuild its user code.
        let remote: Option<(&Arc<dyn TaskExecutor>, &WireSpec)> =
            self.executor.as_ref().zip(cfg.wire.as_ref());

        struct MapResult {
            inner: MapTaskResult,
            cost: TaskCost,
        }

        // The split list is kept (splits are `Copy` byte-range views) so
        // speculative duplicates can re-execute a straggling task.
        let spec_splits = splits.clone();
        let map_fn = |task_idx: usize, split: InputSplit<'_>| -> Result<MapResult, MrError> {
            let inner = match remote {
                Some((executor, wire)) => executor.execute_map(
                    wire,
                    MapTaskSpec {
                        task: task_idx,
                        reducers,
                        input: split.data.to_vec(),
                    },
                )?,
                None => runner.run_map_bytes(task_idx, split.data, reducers)?,
            };
            // Merge counters here, on the attempt's success path, so
            // retried attempts never double-count and speculation's
            // snapshot/rollback still brackets them.
            for (name, delta) in &inner.counters {
                counters.incr(name, *delta);
            }
            let spill_bytes: u64 = inner.spills.iter().map(SpillRun::bytes).sum();
            let cost = TaskCost {
                read_bytes: split.data.len() as u64 + side_bytes,
                write_bytes: spill_bytes,
                records: inner.input_records + inner.output_records,
                allocs: inner.allocs,
            };
            Ok(MapResult { inner, cost })
        };

        let map_results: Vec<(MapResult, u32, Vec<WallWindow>)> = run_parallel(
            "map",
            self.worker_threads,
            &self.failure_policy,
            splits,
            map_fn,
            wall_start,
        )?;

        // Straggler mitigation: detect simulated stragglers among the map
        // durations and really re-run duplicates (outputs discarded).
        let map_durations: Vec<f64> = map_results
            .iter()
            .enumerate()
            .map(|(i, (r, ..))| r.cost.seconds(&self.cluster) * self.cluster.slowdown_for("map", i))
            .collect();
        let map_attempts: Vec<u32> = map_results.iter().map(|(_, a, _)| *a).collect();
        let map_spec = run_speculation(
            "map",
            &self.speculation,
            &self.failure_policy,
            &self.cluster,
            &counters,
            &map_durations,
            &map_attempts,
            &spec_splits,
            &map_fn,
            wall_start,
        );

        let mut map_phase = PhaseCost::new();
        let mut map_input_records = 0u64;
        let mut map_output_records = 0u64;
        let mut input_bytes = 0u64;
        let mut spilled_bytes = 0u64;
        let mut failed_attempts = 0u64;
        let mut map_bytes: Vec<(u64, u64)> = Vec::with_capacity(map_results.len());
        for (i, (r, attempts, _)) in map_results.iter().enumerate() {
            // Failed attempts occupied a slot for about as long as the
            // successful one; charge them. The successful attempt itself
            // is charged at its speculation-adjusted effective duration.
            map_phase.push_task(map_spec.effective[i] + map_durations[i] * f64::from(attempts - 1));
            failed_attempts += u64::from(attempts - 1);
            map_input_records += r.inner.input_records;
            map_output_records += r.inner.output_records;
            input_bytes += r.cost.read_bytes - side_bytes;
            spilled_bytes += r.cost.write_bytes; // exactly the spill bytes
            map_bytes.push((r.cost.read_bytes - side_bytes, r.cost.write_bytes));
        }
        for &occupancy in &map_spec.extra_slots {
            map_phase.push_task(occupancy);
        }
        let map_tasks = map_results.len();
        // Remote map tasks couldn't reach the driver's live services;
        // replay what their capture-mode stand-ins recorded, in task
        // order — the sequence a single-threaded in-process run makes.
        // (In-process results carry no captures; this loop is a no-op.)
        for (r, _, _) in &map_results {
            for (name, payloads) in &r.inner.captured {
                for payload in payloads {
                    job.services.apply_remote(name, payload)?;
                }
            }
        }
        drop(map_span);

        // ------------------------------------------------- shuffle
        // Transpose map outputs into each reducer's fetch list: pure
        // buffer moves, O(map_tasks x reducers), no per-record work.
        // Empty runs are kept so a fetch list's position i is always map
        // task i (the reduce task derives cross-node traffic from it).
        // Byte accounting and the sorted-run merge happen inside the
        // parallel reduce tasks below — the per-reducer "fetch".
        let shuffle_span = ffmr_obs::span("mr.shuffle");
        let shuffle_wall_start = elapsed_us(wall_start);
        let mut fetches: Vec<Vec<SpillRun>> = (0..reducers)
            .map(|_| Vec::with_capacity(map_tasks))
            .collect();
        let mut map_walls: Vec<Vec<WallWindow>> = Vec::with_capacity(map_tasks);
        for (result, _, walls) in map_results {
            map_walls.push(walls);
            for (p, spill) in result.inner.spills.into_iter().enumerate() {
                fetches[p].push(spill);
            }
        }
        let shuffle_wall_end = elapsed_us(wall_start);
        drop(shuffle_span);

        // ------------------------------------------------- reduce phase
        // (Per-task key sorting — Hadoop's sort phase — happens inside
        // each reduce task and is covered by this span.)
        let reduce_span = ffmr_obs::span("mr.reduce");
        // Schimmy: pull the matching partition of a previous output and
        // merge it with the shuffled records by key, without shuffling it.
        let schimmy_file: Option<&DfsFile> = match &cfg.schimmy {
            Some(path) => {
                let f = self.dfs.file(path)?;
                if f.partitions.len() != reducers {
                    return Err(MrError::InvalidJob(format!(
                        "schimmy input {} has {} partitions, job has {} reducers",
                        path,
                        f.partitions.len(),
                        reducers
                    )));
                }
                Some(f)
            }
            None => None,
        };

        struct ReduceResult {
            partition: Partition,
            output_records: u64,
            cost: TaskCost,
            schimmy_bytes: u64,
            fetched_bytes: u64,
            cross_node_bytes: u64,
            spill_runs: u64,
            merge_fanin: u64,
            captured: Vec<(String, Vec<Vec<u8>>)>,
        }

        // Reduce tasks are dispatched by partition index and borrow their
        // fetch list, so a retry or a speculative duplicate re-runs off
        // the same spills without deep-copying them.
        let reduce_fn = |r: usize, _item: usize| -> Result<ReduceResult, MrError> {
            let spills = &fetches[r];
            // The fetch: account every spill from its per-run size
            // prefix (Hadoop's reduce-shuffle-bytes and the cross-node
            // subset) — no per-record iteration.
            let to_node = self.cluster.reduce_node(r);
            let mut fetched_bytes = 0u64;
            let mut cross_node_bytes = 0u64;
            let mut consumed = 0u64;
            let mut spill_runs = 0u64;
            for (map_idx, s) in spills.iter().enumerate() {
                fetched_bytes += s.bytes();
                consumed += s.records;
                if s.records > 0 {
                    spill_runs += 1;
                    if self.cluster.map_node(map_idx) != to_node {
                        cross_node_bytes += s.bytes();
                    }
                }
            }
            let schimmy_part = schimmy_file.map(|f| &f.partitions[r]);
            let schimmy_bytes = schimmy_part.map_or(0, |p| p.data.len() as u64);

            let inner = match remote {
                Some((executor, wire)) => executor.execute_reduce(
                    wire,
                    ReduceTaskSpec {
                        task: r,
                        spills: spills.clone(),
                        schimmy: schimmy_part.map(|p| p.data.clone()),
                    },
                )?,
                None => {
                    runner.run_reduce_parts(r, spills, schimmy_part.map(|p| p.data.as_slice()))?
                }
            };
            for (name, delta) in &inner.counters {
                counters.incr(name, *delta);
            }

            let output_records = inner.records;
            let cost = TaskCost {
                read_bytes: fetched_bytes + schimmy_bytes,
                write_bytes: inner.data.len() as u64,
                records: consumed + output_records,
                allocs: inner.allocs,
            };
            Ok(ReduceResult {
                partition: Partition {
                    data: inner.data,
                    records: output_records,
                    home_node: to_node,
                },
                output_records,
                cost,
                schimmy_bytes,
                fetched_bytes,
                cross_node_bytes,
                spill_runs,
                merge_fanin: inner.merge_fanin,
                captured: inner.captured,
            })
        };

        let reduce_results: Vec<(ReduceResult, u32, Vec<WallWindow>)> = run_parallel(
            "reduce",
            self.worker_threads,
            &self.failure_policy,
            (0..reducers).collect(),
            reduce_fn,
            wall_start,
        )?;

        let reduce_durations: Vec<f64> = reduce_results
            .iter()
            .enumerate()
            .map(|(r, (res, ..))| {
                res.cost.seconds(&self.cluster) * self.cluster.slowdown_for("reduce", r)
            })
            .collect();
        let reduce_attempts: Vec<u32> = reduce_results.iter().map(|(_, a, _)| *a).collect();
        // Duplicates run before `end_round` so stateful services (e.g. the
        // FF driver's aug_proc) see their submissions within the round,
        // exactly as a real speculative reducer's would arrive.
        let reduce_spec = run_speculation(
            "reduce",
            &self.speculation,
            &self.failure_policy,
            &self.cluster,
            &counters,
            &reduce_durations,
            &reduce_attempts,
            &(0..reducers).collect::<Vec<usize>>(),
            &reduce_fn,
            wall_start,
        );

        // Replay the reduce tasks' captured service calls in task order
        // (speculative duplicates were discarded with their results, so
        // no duplicate replays), then close the round: services see the
        // same call sequence, in the same order, as an in-process
        // single-threaded run.
        for (r, _, _) in &reduce_results {
            for (name, payloads) in &r.captured {
                for payload in payloads {
                    job.services.apply_remote(name, payload)?;
                }
            }
        }
        job.services.end_round();

        let metrics = ffmr_obs::global();
        let mut reduce_phase = PhaseCost::new();
        let mut reduce_output_records = 0u64;
        let mut output_bytes = 0u64;
        let mut schimmy_bytes = 0u64;
        let mut shuffle_bytes = 0u64;
        let mut cross_node_bytes = 0u64;
        let mut spill_runs = 0u64;
        let mut merge_fanin_max = 0u64;
        let mut partitions = Vec::with_capacity(reducers);
        let mut reduce_bytes: Vec<(u64, u64)> = Vec::with_capacity(reducers);
        let mut reduce_walls: Vec<Vec<WallWindow>> = Vec::with_capacity(reducers);
        for (i, (r, attempts, walls)) in reduce_results.into_iter().enumerate() {
            reduce_phase.push_task(
                reduce_spec.effective[i] + reduce_durations[i] * f64::from(attempts - 1),
            );
            failed_attempts += u64::from(attempts - 1);
            reduce_output_records += r.output_records;
            output_bytes += r.partition.data.len() as u64;
            reduce_bytes.push((
                r.fetched_bytes + r.schimmy_bytes,
                r.partition.data.len() as u64,
            ));
            reduce_walls.push(walls);
            schimmy_bytes += r.schimmy_bytes;
            shuffle_bytes += r.fetched_bytes;
            cross_node_bytes += r.cross_node_bytes;
            spill_runs += r.spill_runs;
            merge_fanin_max = merge_fanin_max.max(r.merge_fanin);
            metrics
                .histogram("ffmr_mr_merge_fanin", &[])
                .record(r.merge_fanin);
            partitions.push(r.partition);
        }
        for &occupancy in &reduce_spec.extra_slots {
            reduce_phase.push_task(occupancy);
        }
        let reduce_tasks = partitions.len();
        let speculative_launched = map_spec.launched + reduce_spec.launched;
        let speculative_won = map_spec.won + reduce_spec.won;
        self.dfs.insert_file(&cfg.output, DfsFile { partitions })?;
        drop(reduce_span);

        let mb = 1024.0 * 1024.0;
        let net_agg = self.cluster.net_mb_per_s * self.cluster.nodes as f64;
        let disk_agg = self.cluster.disk_mb_per_s * self.cluster.nodes as f64;
        let shuffle_seconds = cross_node_bytes as f64 / mb / net_agg
            + self.cluster.sort_factor * shuffle_bytes as f64 / mb / disk_agg;

        // Replication traffic for the extra DFS copies.
        let replication_seconds = output_bytes as f64
            * f64::from(self.cluster.dfs_replication.saturating_sub(1))
            / mb
            / net_agg;

        let sim_seconds = self.cluster.round_overhead_s
            + map_phase.makespan(self.cluster.total_map_slots())
            + shuffle_seconds
            + reduce_phase.makespan(self.cluster.total_reduce_slots())
            + replication_seconds;
        self.total_sim_seconds += sim_seconds;

        // ------------------------------------------- flight recorder
        // One event per task attempt plus a synthetic shuffle-barrier
        // event, on the derived timeline: scheduling overhead, then the
        // map wave, the shuffle, the reduce wave (replication follows).
        let recorder = ffmr_obs::events::recorder();
        // Drain unconditionally so notes never pile up across jobs when
        // the recorder is toggled mid-flight; they are empty in local
        // mode and when the coordinator saw the recorder disabled.
        let mut dispatch_notes: Vec<ffmr_obs::DispatchNote> = self
            .executor
            .as_ref()
            .map(|e| e.drain_dispatch_notes())
            .unwrap_or_default();
        let mut task_events: Vec<ffmr_obs::TaskEvent> = Vec::new();
        if recorder.enabled() {
            let map_start = self.cluster.round_overhead_s;
            let map_end = map_start + map_phase.makespan(self.cluster.total_map_slots());
            phase_events(
                &mut task_events,
                &cfg.name,
                "map",
                map_start,
                self.cluster.total_map_slots(),
                &self.cluster,
                &map_durations,
                &map_attempts,
                &map_spec,
                &map_walls,
                &map_bytes,
            );
            task_events.push(ffmr_obs::TaskEvent {
                job: cfg.name.clone(),
                phase: "shuffle".to_owned(),
                task: 0,
                attempt: 0,
                node: 0,
                partition: None,
                worker: None,
                sim_start: map_end,
                sim_end: map_end + shuffle_seconds,
                wall_start_us: shuffle_wall_start,
                wall_end_us: shuffle_wall_end,
                bytes_in: shuffle_bytes,
                bytes_out: cross_node_bytes,
                outcome: ffmr_obs::TaskOutcome::Ok,
            });
            phase_events(
                &mut task_events,
                &cfg.name,
                "reduce",
                map_end + shuffle_seconds,
                self.cluster.total_reduce_slots(),
                &self.cluster,
                &reduce_durations,
                &reduce_attempts,
                &reduce_spec,
                &reduce_walls,
                &reduce_bytes,
            );
            if !dispatch_notes.is_empty() {
                // The coordinator stamps notes on the process epoch
                // clock; rebase them onto this job's wall clock (the
                // timeline `wall_start_us`/`wall_end_us` use).
                let rebase = u64::try_from(
                    wall_start
                        .saturating_duration_since(ffmr_obs::span::process_epoch())
                        .as_micros(),
                )
                .unwrap_or(u64::MAX);
                for note in &mut dispatch_notes {
                    note.rebase(rebase);
                }
                attach_worker_attribution(&mut task_events, &dispatch_notes);
            }
            for event in &task_events {
                recorder.record(event.clone());
            }
        }

        let stats = JobStats {
            name: cfg.name,
            map_input_records,
            map_output_records,
            map_output_bytes: spilled_bytes,
            spilled_bytes,
            spill_runs,
            merge_fanin_max,
            shuffle_bytes,
            reduce_output_records,
            output_bytes,
            input_bytes,
            schimmy_bytes,
            map_tasks,
            reduce_tasks,
            failed_attempts,
            speculative_launched,
            speculative_won,
            sim_seconds,
            wall_seconds: wall_start.elapsed().as_secs_f64(),
            counters: counters.snapshot(),
            task_events,
            dispatch_notes,
        };
        fold_job_metrics(&stats);
        Ok(stats)
    }
}

/// Folds one job's statistics into the process-wide metrics registry —
/// the cumulative analogue of Hadoop's per-job counters page. Names
/// mirror [`JobStats`] fields (`mr_shuffle_bytes_total` ↔
/// `shuffle_bytes`, the paper's "Shuffle" column of Table I).
#[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
fn fold_job_metrics(stats: &JobStats) {
    let m = ffmr_obs::global();
    m.counter("ffmr_mr_jobs_total", &[]).inc();
    m.counter("ffmr_mr_map_input_records_total", &[])
        .add(stats.map_input_records);
    m.counter("ffmr_mr_map_output_records_total", &[])
        .add(stats.map_output_records);
    m.counter("ffmr_mr_shuffle_bytes_total", &[])
        .add(stats.shuffle_bytes);
    m.counter("ffmr_mr_spill_bytes_total", &[])
        .add(stats.spilled_bytes);
    m.counter("ffmr_mr_spill_runs_total", &[])
        .add(stats.spill_runs);
    m.counter("ffmr_mr_reduce_output_records_total", &[])
        .add(stats.reduce_output_records);
    m.counter("ffmr_mr_output_bytes_total", &[])
        .add(stats.output_bytes);
    m.counter("ffmr_mr_input_bytes_total", &[])
        .add(stats.input_bytes);
    m.counter("ffmr_mr_schimmy_bytes_total", &[])
        .add(stats.schimmy_bytes);
    m.counter("ffmr_mr_map_tasks_total", &[])
        .add(stats.map_tasks as u64);
    m.counter("ffmr_mr_reduce_tasks_total", &[])
        .add(stats.reduce_tasks as u64);
    m.counter("ffmr_mr_failed_attempts_total", &[])
        .add(stats.failed_attempts);
    m.counter("ffmr_mr_speculative_launched_total", &[])
        .add(stats.speculative_launched);
    m.counter("ffmr_mr_speculative_won_total", &[])
        .add(stats.speculative_won);
    m.counter("ffmr_mr_sim_millis_total", &[])
        .add((stats.sim_seconds * 1_000.0).max(0.0) as u64);
    m.histogram("ffmr_mr_job_wall_us", &[])
        .record((stats.wall_seconds * 1_000_000.0).max(0.0) as u64);
}

/// One speculative duplicate attempt, as the flight recorder sees it.
struct SpecDup {
    /// Task it duplicated.
    task: usize,
    /// Attempt index (continues the retry numbering).
    attempt: u32,
    /// Simulated seconds after the original attempt's start at which
    /// the duplicate launched (the detection threshold).
    threshold: f64,
    /// The duplicate's healthy-node simulated duration.
    healthy: f64,
    /// Whether the duplicate ran to completion (false: crashed).
    completed: bool,
    /// Whether it beat the original.
    won: bool,
    /// Host wall-clock window of the duplicate execution.
    wall: WallWindow,
}

/// What one phase's speculation pass decided and charged.
struct SpecOutcome {
    /// Per task: the successful attempt's effective duration — the base
    /// duration, or the earlier speculative finish when a duplicate won.
    effective: Vec<f64>,
    /// Slot occupancy of each losing attempt (original or duplicate),
    /// charged as extra phase entries.
    extra_slots: Vec<f64>,
    /// Duplicates launched.
    launched: u64,
    /// Duplicates that finished first.
    won: u64,
    /// Per-duplicate details for the flight recorder.
    dups: Vec<SpecDup>,
}

/// Detects simulated stragglers in one phase and runs their speculative
/// duplicates.
///
/// Simulation: a task whose duration exceeds the phase's `percentile`
/// duration by `slack`x gets a duplicate, launched at that detection
/// threshold on a healthy node (so it runs at the un-slowed duration).
/// Whichever attempt finishes first wins; the loser occupies a slot until
/// it is killed and that occupancy is charged.
///
/// Host side: the duplicate genuinely re-executes the task closure — so
/// attached services observe duplicate calls, which must be idempotent —
/// but its output is dropped and counter increments are rolled back, as
/// only one attempt's results may count. The duplicate's attempt index
/// continues the retry numbering so fault injectors can target it; an
/// injected or panicking duplicate simply never wins.
#[allow(
    clippy::too_many_arguments,
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
fn run_speculation<T, R, F>(
    phase: &'static str,
    spec: &SpeculationPolicy,
    failure: &FailurePolicy,
    cluster: &ClusterConfig,
    counters: &Counters,
    durations: &[f64],
    attempts: &[u32],
    items: &[T],
    f: &F,
    epoch: Instant,
) -> SpecOutcome
where
    T: Clone,
    F: Fn(usize, T) -> Result<R, MrError> + Sync,
{
    let n = durations.len();
    let mut out = SpecOutcome {
        effective: durations.to_vec(),
        extra_slots: Vec::new(),
        launched: 0,
        won: 0,
        dups: Vec::new(),
    };
    if !spec.enabled || n < spec.min_tasks.max(1) {
        return out;
    }
    let mut sorted = durations.to_vec();
    sorted.sort_by(f64::total_cmp);
    let baseline = sorted[((n - 1) as f64 * spec.percentile.clamp(0.0, 1.0)).floor() as usize];
    let threshold = baseline * spec.slack.max(1.0);
    if threshold <= 0.0 {
        // Degenerate all-zero phase: nothing to win against.
        return out;
    }
    for (i, &d) in durations.iter().enumerate() {
        if d <= threshold {
            continue;
        }
        out.launched += 1;
        // Really re-run the task, then roll its counter increments back:
        // exactly one attempt's counters count (Hadoop keeps the winner's;
        // for pure tasks the two are identical, so keeping the original's
        // is equivalent and keeps outputs byte-identical).
        let snapshot = counters.snapshot();
        let attempt = attempts[i];
        let injected = failure
            .injector
            .as_ref()
            .is_some_and(|inject| inject(phase, i, attempt));
        let dup_started_us = elapsed_us(epoch);
        let completed = !injected && run_task(phase, i, items[i].clone(), f).is_ok();
        let dup_wall = (dup_started_us, elapsed_us(epoch));
        counters.restore(&snapshot);

        let healthy = d / cluster.slowdown_for(phase, i).max(1.0);
        let spec_finish = threshold + healthy;
        let won = completed && spec_finish < d;
        if won {
            // Duplicate wins: the original is killed at the speculative
            // finish (its occupancy is the new effective duration); the
            // duplicate occupied a slot for its whole healthy run.
            out.won += 1;
            out.effective[i] = spec_finish;
            out.extra_slots.push(healthy);
        } else if completed {
            // Original wins: the duplicate is killed when the original
            // finishes, after (d - threshold) seconds in its slot.
            out.extra_slots.push(d - threshold);
        }
        // A crashed duplicate vacates its slot immediately: no charge.
        out.dups.push(SpecDup {
            task: i,
            attempt,
            threshold,
            healthy,
            completed,
            won,
            wall: dup_wall,
        });
    }
    out
}

/// Greedy earliest-free-slot list schedule: returns, in task order, the
/// phase-relative start offset each occupancy gets when placed on the
/// soonest-free of `slots` slots. This reconstructs the shape of the
/// phase makespan model for the flight recorder's event timeline — it
/// is a visualization aid, not a second cost model (the charged phase
/// time stays `PhaseCost::makespan`).
fn list_schedule(occupancies: &[f64], slots: usize) -> Vec<f64> {
    let slots = slots.clamp(1, occupancies.len().max(1));
    let mut free = vec![0.0f64; slots];
    occupancies
        .iter()
        .map(|&occupancy| {
            let idx = free
                .iter()
                .enumerate()
                .min_by(|a, b| f64::total_cmp(a.1, b.1))
                .map_or(0, |(i, _)| i);
            let start = free[idx];
            free[idx] = start + occupancy;
            start
        })
        .collect()
}

/// Stamps each task event with the worker that ran the matching
/// dispatch. Events and notes are both ordered attempt-by-attempt
/// within a `(phase, task)` pair, so pairing them positionally keeps
/// retries and speculative duplicates attributed to the right worker.
fn attach_worker_attribution(events: &mut [ffmr_obs::TaskEvent], notes: &[ffmr_obs::DispatchNote]) {
    use std::collections::HashMap;
    let mut per_task: HashMap<(&str, usize), std::collections::VecDeque<u64>> = HashMap::new();
    for note in notes {
        per_task
            .entry((note.phase.as_str(), note.task))
            .or_default()
            .push_back(note.worker);
    }
    for event in events {
        if let Some(queue) = per_task.get_mut(&(event.phase.as_str(), event.task)) {
            event.worker = queue.pop_front();
        }
    }
}

/// Assembles the flight-recorder events of one phase: per task, every
/// failed attempt, the final attempt, and any speculative duplicate.
///
/// Timeline conventions (documented on
/// [`ffmr_obs::TaskEvent`]): attempts of one task run back to back on
/// the slot the list schedule assigned; an attempt that *lost* a
/// speculative race is shown at the full duration it would have run,
/// with the winning duplicate's earlier finish bounding the phase.
#[allow(clippy::too_many_arguments)]
fn phase_events(
    out: &mut Vec<ffmr_obs::TaskEvent>,
    job: &str,
    phase: &'static str,
    phase_start: f64,
    slots: usize,
    cluster: &ClusterConfig,
    durations: &[f64],
    attempts: &[u32],
    spec: &SpecOutcome,
    walls: &[Vec<WallWindow>],
    bytes: &[(u64, u64)],
) {
    use ffmr_obs::{TaskEvent, TaskOutcome};
    let is_reduce = phase == "reduce";
    let occupancies: Vec<f64> = (0..durations.len())
        .map(|i| spec.effective[i] + durations[i] * f64::from(attempts[i].saturating_sub(1)))
        .collect();
    let starts = list_schedule(&occupancies, slots);
    let event = |task: usize, attempt: u32, node: usize| TaskEvent {
        job: job.to_owned(),
        phase: phase.to_owned(),
        task,
        attempt,
        node,
        partition: is_reduce.then_some(task),
        worker: None,
        sim_start: 0.0,
        sim_end: 0.0,
        wall_start_us: 0,
        wall_end_us: 0,
        bytes_in: bytes[task].0,
        bytes_out: bytes[task].1,
        outcome: TaskOutcome::Ok,
    };
    for (i, &duration) in durations.iter().enumerate() {
        let node = if is_reduce {
            cluster.reduce_node(i)
        } else {
            cluster.map_node(i)
        };
        let task_start = phase_start + starts[i];
        let failed = attempts[i].saturating_sub(1);
        let windows = &walls[i];
        for a in 0..failed {
            let s = task_start + duration * f64::from(a);
            let wall = windows.get(a as usize).copied().unwrap_or((0, 0));
            let mut ev = event(i, a, node);
            ev.sim_start = s;
            ev.sim_end = s + duration;
            ev.wall_start_us = wall.0;
            ev.wall_end_us = wall.1;
            ev.outcome = TaskOutcome::Failed;
            out.push(ev);
        }
        let dup = spec.dups.iter().find(|d| d.task == i);
        let final_start = task_start + duration * f64::from(failed);
        let wall = windows.last().copied().unwrap_or((0, 0));
        let mut ev = event(i, failed, node);
        ev.sim_start = final_start;
        ev.sim_end = final_start + duration;
        ev.wall_start_us = wall.0;
        ev.wall_end_us = wall.1;
        ev.outcome = if dup.is_some_and(|d| d.won) {
            TaskOutcome::SpeculativeLost
        } else {
            TaskOutcome::Ok
        };
        out.push(ev);
        if let Some(d) = dup {
            let dup_start = final_start + d.threshold;
            let mut ev = event(i, d.attempt, cluster.speculation_node(node));
            ev.sim_start = dup_start;
            ev.sim_end = if d.completed {
                dup_start + d.healthy
            } else {
                dup_start
            };
            ev.wall_start_us = d.wall.0;
            ev.wall_end_us = d.wall.1;
            ev.outcome = if d.won {
                TaskOutcome::SpeculativeWon
            } else if d.completed {
                TaskOutcome::SpeculativeLost
            } else {
                TaskOutcome::Failed
            };
            out.push(ev);
        }
    }
}

/// Stable hash partitioner (deterministic across runs and platforms for a
/// given std release; FF only relies on within-run stability). Public so
/// schimmy side inputs — which must be hash-partitioned the same way as
/// the shuffle — can be prepared outside the runtime.
pub fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Whether a run of records is already in non-decreasing key order.
pub(crate) fn is_key_sorted<K: Ord, V>(items: &[(K, V)]) -> bool {
    items.windows(2).all(|w| w[0].0 <= w[1].0)
}

/// Scans an encoded run's keys (values stay untouched) and reports
/// whether they are in non-decreasing order — the cheap pre-check that
/// lets a schimmy partition merge straight off its bytes.
pub(crate) fn encoded_keys_sorted<K: KeyDatum>(mut data: &[u8]) -> Result<bool, DecodeError> {
    let mut prev: Option<K> = None;
    while !data.is_empty() {
        let (kraw, _vraw) = split_record(&mut data)?;
        let key: K = decode_exact(kraw, "key")?;
        if prev.is_some_and(|p| p > key) {
            return Ok(false);
        }
        prev = Some(key);
    }
    Ok(true)
}

/// One key-sorted input run staged in the reduce-side merge heap.
///
/// The current key is decoded once per record and *borrowed* for every
/// heap comparison; for encoded runs the value stays raw bytes until its
/// group is consumed, so comparisons never pay decode costs.
pub(crate) struct RunCursor<'a, K, V> {
    /// Tie-break on equal keys: 0 = schimmy, then 1 + map-task index.
    /// Combined with per-run stable sorting, this reproduces — byte for
    /// byte — the value order of a stable full-partition sort (schimmy
    /// first, then map-task order, then emission order).
    rank: usize,
    key: K,
    tail: RunTail<'a, K, V>,
}

enum RunTail<'a, K, V> {
    /// A pre-encoded spill (or sorted schimmy partition) byte run.
    Encoded { value: &'a [u8], rest: &'a [u8] },
    /// An owned, already-decoded run (unsorted-schimmy fallback).
    Owned {
        value: V,
        rest: std::vec::IntoIter<(K, V)>,
    },
}

impl<'a, K: KeyDatum, V: Datum> RunCursor<'a, K, V> {
    /// Opens a cursor over an encoded run; `None` if the run is empty.
    pub(crate) fn from_encoded(
        rank: usize,
        mut data: &'a [u8],
    ) -> Result<Option<Self>, DecodeError> {
        if data.is_empty() {
            return Ok(None);
        }
        let (kraw, vraw) = split_record(&mut data)?;
        Ok(Some(Self {
            rank,
            key: decode_exact(kraw, "key")?,
            tail: RunTail::Encoded {
                value: vraw,
                rest: data,
            },
        }))
    }

    /// Opens a cursor over a decoded, key-sorted run.
    pub(crate) fn from_owned(rank: usize, records: Vec<(K, V)>) -> Option<Self> {
        let mut rest = records.into_iter();
        let (key, value) = rest.next()?;
        Some(Self {
            rank,
            key,
            tail: RunTail::Owned { value, rest },
        })
    }

    /// Consumes the current record, returning its key, decoded value and
    /// the advanced cursor (`None` at end of run).
    fn consume(self) -> Result<(K, V, Option<Self>), DecodeError> {
        match self.tail {
            RunTail::Encoded { value, rest } => {
                let v: V = decode_exact(value, "value")?;
                let next = Self::from_encoded(self.rank, rest)?;
                Ok((self.key, v, next))
            }
            RunTail::Owned { value, mut rest } => {
                let next = rest.next().map(|(key, v)| Self {
                    rank: self.rank,
                    key,
                    tail: RunTail::Owned { value: v, rest },
                });
                Ok((self.key, value, next))
            }
        }
    }
}

// The heap orders by (key, rank), inverted so `BinaryHeap` pops the
// minimum. Only `key` and `rank` participate — values never do.
impl<K: KeyDatum, V> PartialEq for RunCursor<'_, K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.key == other.key
    }
}
impl<K: KeyDatum, V> Eq for RunCursor<'_, K, V> {}
impl<K: KeyDatum, V> PartialOrd for RunCursor<'_, K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: KeyDatum, V> Ord for RunCursor<'_, K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.rank.cmp(&self.rank))
    }
}

/// K-way-merges key-sorted runs — the optional schimmy cursor (rank 0)
/// plus one spill per map task, visited in map-task index order — and
/// invokes `f` once per distinct key with the grouped values. The group
/// buffer is drained and reused across keys, never reallocated. Returns
/// the merge fan-in (number of non-empty runs, schimmy included).
pub(crate) fn merge_sorted_runs<K: KeyDatum, V: Datum>(
    schimmy: Option<RunCursor<'_, K, V>>,
    spills: &[SpillRun],
    mut f: impl FnMut(&K, &mut dyn Iterator<Item = V>),
) -> Result<u64, DecodeError> {
    let mut heap: BinaryHeap<RunCursor<'_, K, V>> = BinaryHeap::with_capacity(spills.len() + 1);
    let mut fanin = 0u64;
    if let Some(cursor) = schimmy {
        heap.push(cursor);
        fanin += 1;
    }
    for (map_idx, spill) in spills.iter().enumerate() {
        if let Some(cursor) = RunCursor::from_encoded(map_idx + 1, &spill.data)? {
            heap.push(cursor);
            fanin += 1;
        }
    }
    let mut values: Vec<V> = Vec::new();
    while let Some(cursor) = heap.pop() {
        let (key, v, next) = cursor.consume()?;
        values.push(v);
        if let Some(n) = next {
            heap.push(n);
        }
        while heap.peek().is_some_and(|c| c.key == key) {
            let (_, v, next) = heap.pop().expect("peeked").consume()?;
            values.push(v);
            if let Some(n) = next {
                heap.push(n);
            }
        }
        // Dropping the drain clears the buffer (allocation kept) even if
        // the reducer consumed only part of the group.
        f(&key, &mut values.drain(..));
    }
    Ok(fanin)
}

/// Runs `f` over `items` on a small thread pool, preserving result order,
/// converting panics into [`MrError::TaskFailed`], and retrying failed
/// tasks per the [`FailurePolicy`]. Returns each result with the number
/// of attempts it took and each attempt's wall-clock window on `epoch`.
fn run_parallel<T, R, F>(
    phase: &'static str,
    worker_threads: Option<usize>,
    policy: &FailurePolicy,
    items: Vec<T>,
    f: F,
    epoch: Instant,
) -> Result<Vec<(R, u32, Vec<WallWindow>)>, MrError>
where
    T: Send + Clone,
    R: Send,
    F: Fn(usize, T) -> Result<R, MrError> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = worker_threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .clamp(1, n);

    if workers == 1 {
        // Fast path, also the deterministic mode.
        let mut out = Vec::with_capacity(n);
        for (i, item) in items.into_iter().enumerate() {
            out.push(run_task_with_retry(phase, policy, i, item, &f, epoch)?);
        }
        return Ok(out);
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<TaskSlot<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().pop_front();
                let Some((i, item)) = next else { break };
                let result = run_task_with_retry(phase, policy, i, item, &f, epoch);
                results.lock()[i] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                // A worker thread can only leave a slot empty by dying
                // before writing its result; surface that as a typed
                // task failure instead of aborting the process.
                Err(MrError::TaskFailed {
                    phase,
                    task: i,
                    message: "task produced no result (worker thread died)".into(),
                })
            })
        })
        .collect()
}

/// One task with the policy's retry budget; returns the result, the
/// attempts consumed, and one wall-clock window per attempt.
fn run_task_with_retry<T, R>(
    phase: &'static str,
    policy: &FailurePolicy,
    index: usize,
    item: T,
    f: &(impl Fn(usize, T) -> Result<R, MrError> + Sync),
    epoch: Instant,
) -> Result<(R, u32, Vec<WallWindow>), MrError>
where
    T: Clone,
{
    let budget = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    let mut item = Some(item);
    let mut windows: Vec<WallWindow> = Vec::with_capacity(1);
    loop {
        let started_us = elapsed_us(epoch);
        // Injected environment fault: the attempt dies before user code.
        let injected = policy
            .injector
            .as_ref()
            .is_some_and(|inject| inject(phase, index, attempt));
        let result = if injected {
            Err(MrError::TaskFailed {
                phase,
                task: index,
                message: format!("injected environment fault (attempt {attempt})"),
            })
        } else if attempt + 1 >= budget {
            // Final permitted attempt: hand the input over by value so
            // single-attempt policies (the default) never deep-copy it.
            run_task(phase, index, item.take().expect("input unconsumed"), f)
        } else {
            run_task(
                phase,
                index,
                item.as_ref().expect("input unconsumed").clone(),
                f,
            )
        };
        windows.push((started_us, elapsed_us(epoch)));
        attempt += 1;
        match result {
            Ok(r) => return Ok((r, attempt, windows)),
            Err(e) if attempt >= budget => return Err(e),
            Err(_) => {} // retry
        }
    }
}

fn run_task<T, R>(
    phase: &'static str,
    index: usize,
    item: T,
    f: &(impl Fn(usize, T) -> Result<R, MrError> + Sync),
) -> Result<R, MrError> {
    match catch_unwind(AssertUnwindSafe(|| f(index, item))) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            Err(MrError::TaskFailed {
                phase,
                task: index,
                message,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for k in 0u64..1000 {
            let p = partition_of(&k, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&k, 7));
        }
    }

    fn spill_of(records: &[(u64, String)]) -> SpillRun {
        let mut run = SpillRun::default();
        for (k, v) in records {
            run.push(k, v);
        }
        run
    }

    fn collect_merge(
        schimmy: Option<Vec<(u64, String)>>,
        spills: &[SpillRun],
    ) -> (Vec<(u64, Vec<String>)>, u64) {
        let cursor = schimmy.and_then(|recs| RunCursor::from_owned(0, recs));
        let mut seen = Vec::new();
        let fanin = merge_sorted_runs(cursor, spills, |k: &u64, vs| {
            seen.push((*k, vs.collect::<Vec<String>>()));
        })
        .unwrap();
        (seen, fanin)
    }

    fn s(v: &str) -> String {
        v.to_string()
    }

    #[test]
    fn merge_unions_keys_schimmy_first_then_map_task_order() {
        let schimmy = vec![(1, s("m1")), (3, s("m3"))];
        let spills = [
            spill_of(&[(1, s("t0a")), (1, s("t0b")), (2, s("t0c"))]),
            spill_of(&[(1, s("t1a")), (4, s("t1b"))]),
        ];
        let (seen, fanin) = collect_merge(Some(schimmy), &spills);
        assert_eq!(fanin, 3);
        assert_eq!(
            seen,
            vec![
                (1, vec![s("m1"), s("t0a"), s("t0b"), s("t1a")]),
                (2, vec![s("t0c")]),
                (3, vec![s("m3")]),
                (4, vec![s("t1b")]),
            ]
        );
    }

    #[test]
    fn merge_handles_empty_runs() {
        let (seen, fanin) = collect_merge(None, &[]);
        assert!(seen.is_empty());
        assert_eq!(fanin, 0);

        // Empty spills don't count toward fan-in and don't disturb ranks.
        let spills = [
            SpillRun::default(),
            spill_of(&[(7, s("a"))]),
            SpillRun::default(),
            spill_of(&[(7, s("b"))]),
        ];
        let (seen, fanin) = collect_merge(None, &spills);
        assert_eq!(fanin, 2);
        assert_eq!(seen, vec![(7, vec![s("a"), s("b")])]);
    }

    #[test]
    fn merge_matches_stable_sort_reference() {
        // The contract the reduce path depends on: merging per-run
        // stable-sorted records equals one global stable sort of
        // (schimmy ++ run0 ++ run1 ++ ...).
        let schimmy = vec![(2, s("s0")), (5, s("s1"))];
        let runs = [
            vec![(1, s("a0")), (2, s("a1")), (2, s("a2")), (9, s("a3"))],
            vec![(2, s("b0")), (5, s("b1"))],
            vec![(0, s("c0")), (2, s("c1")), (10, s("c2"))],
        ];
        let mut reference: Vec<(u64, String)> = schimmy.clone();
        reference.extend(runs.iter().flatten().cloned());
        reference.sort_by_key(|r| r.0); // stable
        let mut expected: Vec<(u64, Vec<String>)> = Vec::new();
        for (k, v) in reference {
            match expected.last_mut() {
                Some((lk, vs)) if *lk == k => vs.push(v),
                _ => expected.push((k, vec![v])),
            }
        }
        let spills: Vec<SpillRun> = runs.iter().map(|r| spill_of(r)).collect();
        let (seen, fanin) = collect_merge(Some(schimmy), &spills);
        assert_eq!(fanin, 4);
        assert_eq!(seen, expected);
    }

    #[test]
    fn encoded_keys_sorted_detects_order() {
        let sorted = spill_of(&[(1, s("a")), (1, s("b")), (2, s("c"))]);
        assert!(encoded_keys_sorted::<u64>(&sorted.data).unwrap());
        let unsorted = spill_of(&[(2, s("a")), (1, s("b"))]);
        assert!(!encoded_keys_sorted::<u64>(&unsorted.data).unwrap());
        assert!(encoded_keys_sorted::<u64>(&[]).unwrap());
    }

    #[test]
    fn run_parallel_preserves_order() {
        let policy = FailurePolicy::default();
        let out = run_parallel(
            "map",
            Some(4),
            &policy,
            (0..100).collect(),
            |i, x: i32| Ok(i as i32 * 2 + x - x),
            Instant::now(),
        )
        .unwrap();
        let values: Vec<i32> = out.into_iter().map(|(v, ..)| v).collect();
        assert_eq!(values, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_surfaces_panics() {
        let policy = FailurePolicy::default();
        let err = run_parallel(
            "reduce",
            Some(2),
            &policy,
            vec![1, 2, 3],
            |_, x: i32| {
                assert!(x != 2, "boom on two");
                Ok(x)
            },
            Instant::now(),
        )
        .unwrap_err();
        match err {
            MrError::TaskFailed { phase, message, .. } => {
                assert_eq!(phase, "reduce");
                assert!(message.contains("boom"), "message: {message}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn run_parallel_empty() {
        let policy = FailurePolicy::default();
        let out: Vec<(i32, u32, Vec<WallWindow>)> = run_parallel(
            "map",
            None,
            &policy,
            Vec::<i32>::new(),
            |_, x| Ok(x),
            Instant::now(),
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn retry_recovers_from_transient_faults() {
        // Fail every task's first attempt; all succeed on the second.
        let policy = FailurePolicy::with_injector(3, |_, _, attempt| attempt == 0);
        let out = run_parallel(
            "map",
            Some(2),
            &policy,
            vec![10, 20, 30],
            |_, x: i32| Ok(x),
            Instant::now(),
        )
        .unwrap();
        for (v, attempts, walls) in out {
            assert!(v >= 10);
            assert_eq!(attempts, 2);
            assert_eq!(walls.len(), 2, "one wall window per attempt");
        }
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_job() {
        let policy = FailurePolicy::with_injector(2, |_, task, _| task == 1);
        let err = run_parallel(
            "map",
            Some(2),
            &policy,
            vec![1, 2, 3],
            |_, x: i32| Ok(x),
            Instant::now(),
        )
        .unwrap_err();
        assert!(matches!(err, MrError::TaskFailed { task: 1, .. }));
    }

    #[test]
    fn user_panics_are_also_retried() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let policy = FailurePolicy::hadoop_default();
        let out = run_parallel(
            "map",
            Some(1),
            &policy,
            vec![1],
            |_, x: i32| {
                if CALLS.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky");
                }
                Ok(x)
            },
            Instant::now(),
        )
        .unwrap();
        assert_eq!((out[0].0, out[0].1), (1, 3));
    }

    #[test]
    fn list_schedule_packs_earliest_free_slot() {
        // Two slots, four unit tasks: starts 0,0,1,1.
        let starts = list_schedule(&[1.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(starts, vec![0.0, 0.0, 1.0, 1.0]);
        // A long task occupies one slot while short ones cycle the other.
        let starts = list_schedule(&[10.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(starts, vec![0.0, 0.0, 1.0, 2.0]);
        // Zero slots are clamped to one (serial).
        let starts = list_schedule(&[2.0, 3.0], 0);
        assert_eq!(starts, vec![0.0, 2.0]);
    }
}
