//! Stateful extension point for MapReduce (the paper's Sec. IV-A).
//!
//! `MAP` and `REDUCE` are stateless in the MR model, but the paper's FF2
//! variant attaches an *external stateful process* (`aug_proc`, contacted
//! over Java RMI) that reducers call as they find augmenting paths. Here a
//! [`Service`] is an `Arc`-shared object attached to a job; tasks reach it
//! through their context. The runtime invokes the round lifecycle hooks so
//! a service can finalize after the last reducer — matching the paper's
//! observation that `aug_proc` "finishes immediately after the last
//! reducer".

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::MrError;

/// A stateful object reachable from `MAP`/`REDUCE` functions.
///
/// Implementations must be thread-safe: mappers and reducers call them
/// concurrently, exactly like remote calls into the paper's `aug_proc`.
pub trait Service: Send + Sync + 'static {
    /// Called once before the map phase of each job the service is
    /// attached to.
    fn begin_round(&self) {}

    /// Called once after the last reducer of each job finishes. Drain
    /// queues and finalize round state here.
    fn end_round(&self) {}

    /// Applies one call that a *remote* task recorded against its
    /// worker-side stand-in of this service (see
    /// [`Service::drain_captured`]). The driver replays captured calls in
    /// task-index order, reproducing the call sequence of a
    /// single-threaded in-process run.
    ///
    /// # Errors
    /// A human-readable reason when the payload does not decode; the
    /// runtime fails the job with [`MrError::Wire`].
    fn apply_remote(&self, _payload: &[u8]) -> Result<(), String> {
        Ok(())
    }

    /// Drains the calls buffered by a capture-mode instance (the
    /// worker-side stand-in): each payload is one encoded call for
    /// [`Service::apply_remote`] on the driver's real instance, in the
    /// order the task made them. Non-capturing instances return nothing.
    fn drain_captured(&self) -> Vec<Vec<u8>> {
        Vec::new()
    }

    /// Upcast for typed access via [`ServiceHandle::get`].
    fn as_any(&self) -> &dyn Any;
}

/// A named registry of services attached to one job.
#[derive(Clone, Default)]
pub struct ServiceHandle {
    services: HashMap<String, Arc<dyn Service>>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.services.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("ServiceHandle")
            .field("services", &names)
            .finish()
    }
}

impl ServiceHandle {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches `service` under `name`, replacing any previous binding.
    pub fn attach(&mut self, name: &str, service: Arc<dyn Service>) {
        self.services.insert(name.to_owned(), service);
    }

    /// Typed access to a service.
    ///
    /// # Errors
    /// [`MrError::ServiceMissing`] if no service is bound under `name` or
    /// the bound service is not a `T`.
    pub fn get<T: Service>(&self, name: &str) -> Result<&T, MrError> {
        self.services
            .get(name)
            .and_then(|s| s.as_any().downcast_ref::<T>())
            .ok_or_else(|| MrError::ServiceMissing(name.to_owned()))
    }

    /// Whether any services are attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Runs `begin_round` on every attached service.
    pub(crate) fn begin_round(&self) {
        for s in self.services.values() {
            s.begin_round();
        }
    }

    /// Runs `end_round` on every attached service.
    pub(crate) fn end_round(&self) {
        for s in self.services.values() {
            s.end_round();
        }
    }

    /// Replays one captured remote call against the service bound under
    /// `name`.
    ///
    /// # Errors
    /// [`MrError::ServiceMissing`] if nothing is bound under `name`;
    /// [`MrError::Wire`] if the service rejects the payload.
    pub fn apply_remote(&self, name: &str, payload: &[u8]) -> Result<(), MrError> {
        let service = self
            .services
            .get(name)
            .ok_or_else(|| MrError::ServiceMissing(name.to_owned()))?;
        service
            .apply_remote(payload)
            .map_err(|m| MrError::Wire(format!("service {name} rejected remote call: {m}")))
    }

    /// Drains every attached service's captured calls, name-sorted so the
    /// result is deterministic regardless of `HashMap` iteration order.
    #[must_use]
    pub fn drain_captured(&self) -> Vec<(String, Vec<Vec<u8>>)> {
        let mut out: Vec<(String, Vec<Vec<u8>>)> = self
            .services
            .iter()
            .map(|(name, s)| (name.clone(), s.drain_captured()))
            .filter(|(_, calls)| !calls.is_empty())
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Tally {
        calls: AtomicU64,
        rounds: AtomicU64,
    }

    impl Service for Tally {
        fn begin_round(&self) {
            self.rounds.fetch_add(1, Ordering::Relaxed);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn typed_access_and_lifecycle() {
        let mut handle = ServiceHandle::new();
        handle.attach("tally", Arc::new(Tally::default()));
        handle.begin_round();
        let t: &Tally = handle.get("tally").unwrap();
        t.calls.fetch_add(1, Ordering::Relaxed);
        assert_eq!(t.rounds.load(Ordering::Relaxed), 1);
        assert_eq!(t.calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn missing_service_is_error() {
        let handle = ServiceHandle::new();
        assert!(matches!(
            handle.get::<Tally>("nope"),
            Err(MrError::ServiceMissing(_))
        ));
    }

    #[test]
    fn wrong_type_is_error() {
        struct Other;
        impl Service for Other {
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut handle = ServiceHandle::new();
        handle.attach("svc", Arc::new(Other));
        assert!(handle.get::<Tally>("svc").is_err());
    }

    #[test]
    fn debug_lists_names() {
        let mut handle = ServiceHandle::new();
        handle.attach("b", Arc::new(Tally::default()));
        handle.attach("a", Arc::new(Tally::default()));
        let dbg = format!("{handle:?}");
        assert!(dbg.contains("\"a\""));
        assert!(dbg.contains("\"b\""));
    }
}
