//! Per-job statistics, the analogue of Hadoop's job counters page.

/// Everything the runtime measured while executing one job.
///
/// These are the quantities the paper reports per round (its Table I):
/// map output records, shuffle bytes and simulated runtime, plus the user
/// counters snapshot the driver uses for termination decisions.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Job name as given to [`JobBuilder::new`](crate::JobBuilder::new).
    pub name: String,
    /// Records read from the input path(s).
    pub map_input_records: u64,
    /// Intermediate records emitted by mappers ("Map Out" in Table I).
    pub map_output_records: u64,
    /// Total bytes of intermediate records (before considering locality).
    pub map_output_bytes: u64,
    /// Intermediate bytes that crossed node boundaries ("Shuffle" in
    /// Table I; Hadoop's `REDUCE_SHUFFLE_BYTES`).
    pub shuffle_bytes: u64,
    /// Bytes written by map tasks into key-sorted spill runs (one run per
    /// reduce partition). Equals `map_output_bytes` — the runtime spills
    /// every intermediate record exactly once.
    pub spilled_bytes: u64,
    /// Non-empty spill runs produced across all map tasks (Hadoop's
    /// "spilled records" analogue at run granularity).
    pub spill_runs: u64,
    /// Largest merge fan-in any reduce task saw: the number of non-empty
    /// sorted runs (schimmy side input included) its k-way merge drew from.
    pub merge_fanin_max: u64,
    /// Records produced by reducers into the output path.
    pub reduce_output_records: u64,
    /// Bytes written to the DFS output (one replica).
    pub output_bytes: u64,
    /// Bytes read from the DFS input.
    pub input_bytes: u64,
    /// Bytes read from a schimmy side input, if configured.
    pub schimmy_bytes: u64,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce tasks executed.
    pub reduce_tasks: usize,
    /// Task attempts that failed and were retried (see
    /// [`FailurePolicy`](crate::runtime::FailurePolicy)).
    pub failed_attempts: u64,
    /// Speculative duplicate attempts launched for straggling tasks (see
    /// [`SpeculationPolicy`](crate::runtime::SpeculationPolicy)).
    pub speculative_launched: u64,
    /// Speculative duplicates that finished before the original attempt.
    pub speculative_won: u64,
    /// Simulated job duration in seconds under the cluster cost model.
    pub sim_seconds: f64,
    /// Host wall-clock spent actually executing the job, in seconds.
    pub wall_seconds: f64,
    /// Snapshot of user counters at job end, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Flight-recorder events: one per task attempt (including failed
    /// retries and speculative duplicates) plus one for the shuffle
    /// barrier. Empty unless the global
    /// [`ffmr_obs::events::recorder`] is enabled when the job runs.
    pub task_events: Vec<ffmr_obs::TaskEvent>,
    /// Per-dispatch telemetry from the remote executor (distributed
    /// mode only): queue/transfer/compute timings with worker
    /// attribution, rebased onto this job's wall clock. Empty in local
    /// mode or when the flight recorder is disabled.
    pub dispatch_notes: Vec<ffmr_obs::DispatchNote>,
}

impl JobStats {
    /// Value of a user counter at job end (0 if absent).
    ///
    /// # Example
    /// ```
    /// let stats = mapreduce::JobStats::default();
    /// assert_eq!(stats.counter("source move"), 0);
    /// ```
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

/// Aggregate over a chain of jobs (a multi-round MR program).
#[derive(Debug, Clone, Default)]
pub struct ChainStats {
    /// Stats of each round in execution order.
    pub rounds: Vec<JobStats>,
}

impl ChainStats {
    /// Creates an empty chain.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one round.
    pub fn push(&mut self, stats: JobStats) {
        self.rounds.push(stats);
    }

    /// Number of rounds executed.
    #[must_use]
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total simulated seconds across rounds.
    #[must_use]
    pub fn total_sim_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.sim_seconds).sum()
    }

    /// Total shuffle bytes across rounds.
    #[must_use]
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.shuffle_bytes).sum()
    }

    /// Total intermediate records across rounds.
    #[must_use]
    pub fn total_map_output_records(&self) -> u64 {
        self.rounds.iter().map(|r| r.map_output_records).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_lookup() {
        let stats = JobStats {
            counters: vec![("a".into(), 3), ("b".into(), 5)],
            ..JobStats::default()
        };
        assert_eq!(stats.counter("a"), 3);
        assert_eq!(stats.counter("b"), 5);
        assert_eq!(stats.counter("c"), 0);
    }

    #[test]
    fn chain_aggregates() {
        let mut chain = ChainStats::new();
        chain.push(JobStats {
            sim_seconds: 1.5,
            shuffle_bytes: 100,
            map_output_records: 7,
            ..JobStats::default()
        });
        chain.push(JobStats {
            sim_seconds: 2.5,
            shuffle_bytes: 300,
            map_output_records: 13,
            ..JobStats::default()
        });
        assert_eq!(chain.num_rounds(), 2);
        assert!((chain.total_sim_seconds() - 4.0).abs() < 1e-12);
        assert_eq!(chain.total_shuffle_bytes(), 400);
        assert_eq!(chain.total_map_output_records(), 20);
    }
}
