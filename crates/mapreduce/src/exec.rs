//! The task-execution boundary: one map or reduce task as a
//! self-contained unit of work, independent of where it runs.
//!
//! [`MrRuntime::run`](crate::MrRuntime::run) used to inline the task
//! bodies; they now live in [`JobTaskRunner`], a typed runner built from
//! a job's mapper/combiner/reducer. The in-process path calls it
//! directly on borrowed bytes. Distributed mode wraps the same runner
//! behind the byte-level [`TaskRunner`] trait: the driver serializes a
//! [`MapTaskSpec`]/[`ReduceTaskSpec`], a worker process reconstructs the
//! runner from the job's [`WireSpec`](crate::job::WireSpec) and returns a
//! serialized [`MapTaskResult`]/[`ReduceTaskResult`]. Because both modes
//! execute the identical runner over the identical bytes, distributed
//! output is byte-for-byte the in-process output, and the driver computes
//! the simulated cost model from the returned record/byte/alloc numbers
//! exactly as before.
//!
//! Stateful services are the one side channel: a worker cannot call the
//! driver's live service objects, so its stand-in services *capture*
//! their calls (see [`Service::drain_captured`](crate::Service)); the
//! captured payloads ride home in the task result and the driver replays
//! them in task-index order, reproducing a single-threaded in-process
//! run's call sequence.

use std::sync::Arc;

use crate::counters::Counters;
use crate::encode::{get_bytes, get_varint, put_bytes, put_varint};
use crate::error::{DecodeError, MrError};
use crate::job::{CombinerFn, MapContext, Mapper, ReduceContext, Reducer};
use crate::record::{decode_record, encode_record, Datum, KeyDatum, SpillRun};
use crate::runtime::RunCursor;
use crate::runtime::{encoded_keys_sorted, is_key_sorted, merge_sorted_runs, partition_of};
use crate::service::ServiceHandle;

/// One map task, fully described: which task it is, how many reduce
/// partitions it spills to, and the raw bytes of its input split.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapTaskSpec {
    /// Map-task index.
    pub task: usize,
    /// Number of reduce partitions to spill into.
    pub reducers: usize,
    /// The input split's encoded records.
    pub input: Vec<u8>,
}

/// Captured service calls: per service name, the submitted payloads in
/// call order — replayed driver-side so retried/speculative attempts
/// stay exactly-once.
pub type CapturedCalls = Vec<(String, Vec<Vec<u8>>)>;

/// What a map task produced, with the numbers the driver's cost model
/// and stats need.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapTaskResult {
    /// One key-sorted spill run per reduce partition.
    pub spills: Vec<SpillRun>,
    /// Input records decoded.
    pub input_records: u64,
    /// Records emitted by the mapper (before any combiner).
    pub output_records: u64,
    /// Short-lived allocations charged (FF4 cost model input).
    pub allocs: u64,
    /// Buffered counter increments, merged by the driver only when this
    /// attempt wins (retry/speculation semantics).
    pub counters: Vec<(String, u64)>,
    /// Captured service calls, per service name, in call order.
    pub captured: CapturedCalls,
}

/// One reduce task: its partition index, the spill runs fetched from
/// every map task (position `i` = map task `i`, empty runs kept), and
/// the optional schimmy partition bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReduceTaskSpec {
    /// Reduce partition index.
    pub task: usize,
    /// Fetched spill runs in map-task order.
    pub spills: Vec<SpillRun>,
    /// Matching schimmy partition's encoded records, if the job has one.
    pub schimmy: Option<Vec<u8>>,
}

/// What a reduce task produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReduceTaskResult {
    /// The output partition's encoded records, in key order.
    pub data: Vec<u8>,
    /// Records in `data`.
    pub records: u64,
    /// Short-lived allocations charged.
    pub allocs: u64,
    /// Non-empty sorted runs merged (schimmy included).
    pub merge_fanin: u64,
    /// Buffered counter increments (see [`MapTaskResult::counters`]).
    pub counters: Vec<(String, u64)>,
    /// Captured service calls, per service name, in call order.
    pub captured: CapturedCalls,
}

/// Executes tasks given only bytes — the object-safe form of a job that a
/// worker process holds after reconstructing the user code from a
/// [`WireSpec`](crate::job::WireSpec).
pub trait TaskRunner: Send + Sync {
    /// Runs one map task.
    ///
    /// # Errors
    /// Decode failures and user-code errors, as [`MrError`].
    fn run_map(&self, spec: &MapTaskSpec) -> Result<MapTaskResult, MrError>;

    /// Runs one reduce task.
    ///
    /// # Errors
    /// Decode failures and user-code errors, as [`MrError`].
    fn run_reduce(&self, spec: &ReduceTaskSpec) -> Result<ReduceTaskResult, MrError>;
}

/// Dispatches tasks somewhere else — the seam between the runtime's
/// scheduler/cost model (always in the driver) and task execution (in
/// process by default, in `ffmr-worker` processes in distributed mode).
///
/// The runtime consults it only for jobs carrying a
/// [`WireSpec`](crate::job::WireSpec); everything else — split planning,
/// shuffle transposition, cost accounting, retry and speculation — stays
/// driver-side, so simulated costs are identical by construction.
pub trait TaskExecutor: Send + Sync {
    /// Executes one map task described by `wire` + `spec`.
    ///
    /// # Errors
    /// [`MrError::TaskFailed`] for attributable attempt failures (worker
    /// death, user-code panic) — these re-enter the retry policy — and
    /// [`MrError::Wire`] for non-attributable transport failures.
    fn execute_map(
        &self,
        wire: &crate::job::WireSpec,
        spec: MapTaskSpec,
    ) -> Result<MapTaskResult, MrError>;

    /// Executes one reduce task described by `wire` + `spec`.
    ///
    /// # Errors
    /// As [`TaskExecutor::execute_map`].
    fn execute_reduce(
        &self,
        wire: &crate::job::WireSpec,
        spec: ReduceTaskSpec,
    ) -> Result<ReduceTaskResult, MrError>;

    /// Hands over the per-dispatch telemetry notes accumulated since
    /// the last drain (queue/transfer/compute timings with worker
    /// attribution, on the executor's process-epoch clock). The default
    /// executor has none; the remote executor feeds the flight
    /// recorder's distributed lanes through this.
    fn drain_dispatch_notes(&self) -> Vec<ffmr_obs::DispatchNote> {
        Vec::new()
    }
}

/// The typed task bodies of one job: decode → map → sort → combine →
/// spill, and fetch → merge → reduce → encode. Used directly by the
/// in-process path and wrapped as a [`TaskRunner`] worker-side, so both
/// modes run the same code over the same bytes.
pub struct JobTaskRunner<KI, VI, KM, VM, KO, VO>
where
    KM: KeyDatum,
    VM: Datum,
{
    mapper: Arc<dyn Mapper<KI, VI, KM, VM>>,
    combiner: Option<CombinerFn<KM, VM>>,
    reducer: Arc<dyn Reducer<KM, VM, KO, VO>>,
    services: ServiceHandle,
    counters: Counters,
}

impl<KI, VI, KM, VM, KO, VO> JobTaskRunner<KI, VI, KM, VM, KO, VO>
where
    KI: Datum,
    VI: Datum,
    KM: KeyDatum,
    VM: Datum,
    KO: Datum,
    VO: Datum,
{
    /// Builds a runner from user functions and the services their
    /// contexts should see (worker-side: capture-mode stand-ins).
    pub fn new<M, R>(mapper: M, reducer: R, services: ServiceHandle) -> Self
    where
        M: Mapper<KI, VI, KM, VM> + 'static,
        R: Reducer<KM, VM, KO, VO> + 'static,
    {
        Self {
            mapper: Arc::new(mapper),
            combiner: None,
            reducer: Arc::new(reducer),
            services,
            counters: Counters::new(),
        }
    }

    pub(crate) fn from_parts(
        mapper: Arc<dyn Mapper<KI, VI, KM, VM>>,
        combiner: Option<CombinerFn<KM, VM>>,
        reducer: Arc<dyn Reducer<KM, VM, KO, VO>>,
        services: ServiceHandle,
    ) -> Self {
        Self {
            mapper,
            combiner,
            reducer,
            services,
            counters: Counters::new(),
        }
    }

    /// Adds a combiner (same contract as
    /// [`MappedJob::combine`](crate::job::MappedJob::combine)).
    #[must_use]
    pub fn with_combiner<C>(mut self, combiner: C) -> Self
    where
        C: Fn(&KM, &mut dyn Iterator<Item = VM>, &mut MapContext<'_, KM, VM>)
            + Send
            + Sync
            + 'static,
    {
        self.combiner = Some(Arc::new(combiner));
        self
    }

    /// Runs one map task over an input split's raw bytes.
    ///
    /// # Errors
    /// Record decode failures and mapper errors.
    pub fn run_map_bytes(
        &self,
        task: usize,
        input: &[u8],
        reducers: usize,
    ) -> Result<MapTaskResult, MrError> {
        let mut rest = input;
        let mut records: Vec<(KI, VI)> = Vec::new();
        while !rest.is_empty() {
            records.push(decode_record(&mut rest)?);
        }
        let input_records = records.len() as u64;
        let mut ctx = MapContext::new(&self.counters, &self.services, task);
        for (k, v) in &records {
            self.mapper.map(k, v, &mut ctx);
        }
        self.mapper.finish_split(&mut ctx);
        let output_records = ctx.out.len() as u64;
        let mut allocs = ctx.allocs() + input_records;
        let mut counters = std::mem::take(&mut ctx.local_counters);
        let mut out = ctx.out;

        // Map-side sort (Hadoop's sort-at-map): the run is ordered here,
        // inside the already-parallel map phase; the combiner and the
        // reduce-side k-way merge both consume sorted runs. The sort is
        // stable, so equal keys keep emission order.
        out.sort_by(|a, b| a.0.cmp(&b.0));

        // Optional combiner, fed key groups off the sorted run.
        if let Some(comb) = &self.combiner {
            let mut cctx = MapContext::new(&self.counters, &self.services, task);
            let mut group: Vec<VM> = Vec::new(); // reused across groups
            let mut it = out.into_iter().peekable();
            while let Some((key, first)) = it.next() {
                group.push(first);
                while it.peek().is_some_and(|(k, _)| *k == key) {
                    group.push(it.next().expect("peeked").1);
                }
                // Dropping the drain clears the buffer (allocation kept)
                // even if the combiner consumed only part.
                comb(&key, &mut group.drain(..), &mut cctx);
            }
            allocs += cctx.allocs();
            merge_counter_deltas(&mut counters, cctx.local_counters.drain(..));
            out = cctx.out;
            // Combiners normally emit per visited group, i.e. already in
            // key order; re-establish the invariant only when one emitted
            // out of order.
            if !is_key_sorted(&out) {
                out.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }

        // Partition the sorted run into per-reducer spills; each spill
        // inherits the key order, so its byte run is ready to merge
        // without any reduce-side sort.
        let mut spills: Vec<SpillRun> = vec![SpillRun::default(); reducers];
        for (k, v) in &out {
            spills[partition_of(k, reducers)].push(k, v);
        }

        Ok(MapTaskResult {
            spills,
            input_records,
            output_records,
            allocs,
            counters,
            captured: self.services.drain_captured(),
        })
    }

    /// Runs one reduce task over fetched spill runs plus an optional
    /// schimmy partition's raw bytes.
    ///
    /// # Errors
    /// Record decode failures and reducer errors.
    pub fn run_reduce_parts(
        &self,
        task: usize,
        spills: &[SpillRun],
        schimmy: Option<&[u8]>,
    ) -> Result<ReduceTaskResult, MrError> {
        let consumed: u64 = spills.iter().map(|s| s.records).sum();

        // Schimmy: the matching partition of a previous output is one
        // more sorted run in the merge heap (rank 0, so its values come
        // first within a key group). Already-sorted partitions — the
        // common case, since reduce outputs are written in key order —
        // merge straight off their encoded bytes; unsorted ones fall
        // back to decode + stable sort.
        let schimmy_run: Option<RunCursor<'_, KM, VM>> = match schimmy {
            Some(data) => {
                if encoded_keys_sorted::<KM>(data)? {
                    RunCursor::from_encoded(0, data)?
                } else {
                    let mut rest = data;
                    let mut recs: Vec<(KM, VM)> = Vec::new();
                    while !rest.is_empty() {
                        recs.push(decode_record(&mut rest)?);
                    }
                    recs.sort_by(|a, b| a.0.cmp(&b.0));
                    RunCursor::from_owned(0, recs)
                }
            }
            None => None,
        };

        let mut ctx = ReduceContext::new(&self.counters, &self.services, task);
        let merge_fanin = merge_sorted_runs(schimmy_run, spills, |key, values| {
            self.reducer.reduce(key, values, &mut ctx);
        })?;

        let records = ctx.out.len() as u64;
        let allocs = ctx.allocs() + consumed;
        let mut data = Vec::new();
        for (k, v) in &ctx.out {
            encode_record(k, v, &mut data);
        }
        Ok(ReduceTaskResult {
            data,
            records,
            allocs,
            merge_fanin,
            counters: std::mem::take(&mut ctx.local_counters),
            captured: self.services.drain_captured(),
        })
    }
}

impl<KI, VI, KM, VM, KO, VO> TaskRunner for JobTaskRunner<KI, VI, KM, VM, KO, VO>
where
    KI: Datum,
    VI: Datum,
    KM: KeyDatum,
    VM: Datum,
    KO: Datum,
    VO: Datum,
{
    fn run_map(&self, spec: &MapTaskSpec) -> Result<MapTaskResult, MrError> {
        self.run_map_bytes(spec.task, &spec.input, spec.reducers)
    }

    fn run_reduce(&self, spec: &ReduceTaskSpec) -> Result<ReduceTaskResult, MrError> {
        self.run_reduce_parts(spec.task, &spec.spills, spec.schimmy.as_deref())
    }
}

/// Folds counter deltas into `into`, summing duplicates by name.
fn merge_counter_deltas(into: &mut Vec<(String, u64)>, from: impl Iterator<Item = (String, u64)>) {
    for (name, delta) in from {
        if let Some(entry) = into.iter_mut().find(|(n, _)| *n == name) {
            entry.1 += delta;
        } else {
            into.push((name, delta));
        }
    }
}

// ---------------------------------------------------------------- codecs
//
// The distributed wire format for specs and results: the crate's varint
// primitives, no self-description. Both ends are the same build of this
// crate, and every decode is bounds-checked, so malformed input surfaces
// as `MrError::Wire`, never a panic.

fn put_str(s: &str, buf: &mut Vec<u8>) {
    put_bytes(s.as_bytes(), buf);
}

fn get_str(input: &mut &[u8]) -> Result<String, DecodeError> {
    let raw = get_bytes(input)?;
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::new("non-UTF-8 string"))
}

fn put_spills(spills: &[SpillRun], buf: &mut Vec<u8>) {
    put_varint(spills.len() as u64, buf);
    for s in spills {
        put_varint(s.records, buf);
        put_bytes(&s.data, buf);
    }
}

fn get_spills(input: &mut &[u8]) -> Result<Vec<SpillRun>, DecodeError> {
    let n = get_varint(input)? as usize;
    let mut out = Vec::with_capacity(n.min(input.len().max(16)));
    for _ in 0..n {
        let records = get_varint(input)?;
        let data = get_bytes(input)?.to_vec();
        out.push(SpillRun { data, records });
    }
    Ok(out)
}

fn put_counters(counters: &[(String, u64)], buf: &mut Vec<u8>) {
    put_varint(counters.len() as u64, buf);
    for (name, v) in counters {
        put_str(name, buf);
        put_varint(*v, buf);
    }
}

fn get_counters(input: &mut &[u8]) -> Result<Vec<(String, u64)>, DecodeError> {
    let n = get_varint(input)? as usize;
    let mut out = Vec::with_capacity(n.min(input.len().max(16)));
    for _ in 0..n {
        let name = get_str(input)?;
        let v = get_varint(input)?;
        out.push((name, v));
    }
    Ok(out)
}

fn put_captured(captured: &CapturedCalls, buf: &mut Vec<u8>) {
    put_varint(captured.len() as u64, buf);
    for (name, calls) in captured {
        put_str(name, buf);
        put_varint(calls.len() as u64, buf);
        for call in calls {
            put_bytes(call, buf);
        }
    }
}

fn get_captured(input: &mut &[u8]) -> Result<CapturedCalls, DecodeError> {
    let n = get_varint(input)? as usize;
    let mut out = Vec::with_capacity(n.min(input.len().max(16)));
    for _ in 0..n {
        let name = get_str(input)?;
        let m = get_varint(input)? as usize;
        let mut calls = Vec::with_capacity(m.min(input.len().max(16)));
        for _ in 0..m {
            calls.push(get_bytes(input)?.to_vec());
        }
        out.push((name, calls));
    }
    Ok(out)
}

/// Rejects trailing bytes after a decoded value — a desynced or
/// truncated-then-padded frame must not pass silently.
fn finish<T>(v: T, rest: &[u8], what: &str) -> Result<T, DecodeError> {
    if rest.is_empty() {
        Ok(v)
    } else {
        Err(DecodeError::new(format!("trailing bytes after {what}")))
    }
}

impl MapTaskSpec {
    /// Serializes for the wire.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.input.len() + 16);
        put_varint(self.task as u64, &mut buf);
        put_varint(self.reducers as u64, &mut buf);
        put_bytes(&self.input, &mut buf);
        buf
    }

    /// Parses bytes written by [`MapTaskSpec::to_bytes`].
    ///
    /// # Errors
    /// On truncated or trailing bytes.
    pub fn from_bytes(mut input: &[u8]) -> Result<Self, DecodeError> {
        let task = get_varint(&mut input)? as usize;
        let reducers = get_varint(&mut input)? as usize;
        let data = get_bytes(&mut input)?.to_vec();
        finish(
            Self {
                task,
                reducers,
                input: data,
            },
            input,
            "map task spec",
        )
    }
}

impl MapTaskResult {
    /// Serializes for the wire.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_spills(&self.spills, &mut buf);
        put_varint(self.input_records, &mut buf);
        put_varint(self.output_records, &mut buf);
        put_varint(self.allocs, &mut buf);
        put_counters(&self.counters, &mut buf);
        put_captured(&self.captured, &mut buf);
        buf
    }

    /// Parses bytes written by [`MapTaskResult::to_bytes`].
    ///
    /// # Errors
    /// On truncated or trailing bytes.
    pub fn from_bytes(mut input: &[u8]) -> Result<Self, DecodeError> {
        let spills = get_spills(&mut input)?;
        let input_records = get_varint(&mut input)?;
        let output_records = get_varint(&mut input)?;
        let allocs = get_varint(&mut input)?;
        let counters = get_counters(&mut input)?;
        let captured = get_captured(&mut input)?;
        finish(
            Self {
                spills,
                input_records,
                output_records,
                allocs,
                counters,
                captured,
            },
            input,
            "map task result",
        )
    }
}

impl ReduceTaskSpec {
    /// Serializes for the wire.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_varint(self.task as u64, &mut buf);
        put_spills(&self.spills, &mut buf);
        match &self.schimmy {
            Some(data) => {
                put_varint(1, &mut buf);
                put_bytes(data, &mut buf);
            }
            None => put_varint(0, &mut buf),
        }
        buf
    }

    /// Parses bytes written by [`ReduceTaskSpec::to_bytes`].
    ///
    /// # Errors
    /// On truncated or trailing bytes.
    pub fn from_bytes(mut input: &[u8]) -> Result<Self, DecodeError> {
        let task = get_varint(&mut input)? as usize;
        let spills = get_spills(&mut input)?;
        let schimmy = match get_varint(&mut input)? {
            0 => None,
            1 => Some(get_bytes(&mut input)?.to_vec()),
            n => return Err(DecodeError::new(format!("bad schimmy tag {n}"))),
        };
        finish(
            Self {
                task,
                spills,
                schimmy,
            },
            input,
            "reduce task spec",
        )
    }
}

impl ReduceTaskResult {
    /// Serializes for the wire.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.data.len() + 32);
        put_bytes(&self.data, &mut buf);
        put_varint(self.records, &mut buf);
        put_varint(self.allocs, &mut buf);
        put_varint(self.merge_fanin, &mut buf);
        put_counters(&self.counters, &mut buf);
        put_captured(&self.captured, &mut buf);
        buf
    }

    /// Parses bytes written by [`ReduceTaskResult::to_bytes`].
    ///
    /// # Errors
    /// On truncated or trailing bytes.
    pub fn from_bytes(mut input: &[u8]) -> Result<Self, DecodeError> {
        let data = get_bytes(&mut input)?.to_vec();
        let records = get_varint(&mut input)?;
        let allocs = get_varint(&mut input)?;
        let merge_fanin = get_varint(&mut input)?;
        let counters = get_counters(&mut input)?;
        let captured = get_captured(&mut input)?;
        finish(
            Self {
                data,
                records,
                allocs,
                merge_fanin,
                counters,
                captured,
            },
            input,
            "reduce task result",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{MapContext, ReduceContext};

    fn sample_runner() -> JobTaskRunner<u64, u64, u64, u64, u64, u64> {
        JobTaskRunner::new(
            |k: &u64, v: &u64, ctx: &mut MapContext<'_, u64, u64>| {
                ctx.emit(*k % 3, *v);
                ctx.incr("mapped", 1);
            },
            |k: &u64, vs: &mut dyn Iterator<Item = u64>, ctx: &mut ReduceContext<'_, u64, u64>| {
                ctx.emit(*k, vs.sum::<u64>());
            },
            ServiceHandle::new(),
        )
    }

    fn encode_input(records: &[(u64, u64)]) -> Vec<u8> {
        let mut buf = Vec::new();
        for (k, v) in records {
            encode_record(k, v, &mut buf);
        }
        buf
    }

    #[test]
    fn map_then_reduce_round_trip() {
        let runner = sample_runner();
        let input = encode_input(&[(0, 10), (1, 20), (3, 30), (4, 40)]);
        let map = runner.run_map_bytes(0, &input, 2).unwrap();
        assert_eq!(map.input_records, 4);
        assert_eq!(map.output_records, 4);
        assert_eq!(map.counters, vec![("mapped".to_string(), 4)]);
        assert_eq!(map.spills.len(), 2);

        let total_records: u64 = map.spills.iter().map(|s| s.records).sum();
        assert_eq!(total_records, 4);

        // Feed every spill to one reducer: keys 0 and 1 sum their values.
        let mut all = Vec::new();
        for s in &map.spills {
            all.push(s.clone());
        }
        let red = runner.run_reduce_parts(0, &all, None).unwrap();
        let mut rest = red.data.as_slice();
        let mut seen = Vec::new();
        while !rest.is_empty() {
            seen.push(decode_record::<u64, u64>(&mut rest).unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 40), (1, 60)]);
        assert_eq!(red.records, 2);
    }

    #[test]
    fn specs_and_results_round_trip_the_codec() {
        let ms = MapTaskSpec {
            task: 7,
            reducers: 3,
            input: vec![1, 2, 3],
        };
        assert_eq!(MapTaskSpec::from_bytes(&ms.to_bytes()).unwrap(), ms);

        let mr = MapTaskResult {
            spills: vec![
                SpillRun {
                    data: vec![9, 9],
                    records: 1,
                },
                SpillRun::default(),
            ],
            input_records: 5,
            output_records: 4,
            allocs: 11,
            counters: vec![("a".into(), 2), ("b c".into(), 3)],
            captured: vec![("aug".into(), vec![vec![1], vec![2, 3]])],
        };
        assert_eq!(MapTaskResult::from_bytes(&mr.to_bytes()).unwrap(), mr);

        let rs = ReduceTaskSpec {
            task: 2,
            spills: vec![SpillRun {
                data: vec![4],
                records: 1,
            }],
            schimmy: Some(vec![5, 6]),
        };
        assert_eq!(ReduceTaskSpec::from_bytes(&rs.to_bytes()).unwrap(), rs);

        let rr = ReduceTaskResult {
            data: vec![1, 2],
            records: 1,
            allocs: 3,
            merge_fanin: 2,
            counters: vec![],
            captured: vec![],
        };
        assert_eq!(ReduceTaskResult::from_bytes(&rr.to_bytes()).unwrap(), rr);
    }

    #[test]
    fn truncated_and_trailing_bytes_are_typed_errors() {
        let spec = MapTaskSpec {
            task: 1,
            reducers: 2,
            input: vec![7; 40],
        };
        let bytes = spec.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                MapTaskSpec::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(MapTaskSpec::from_bytes(&padded).is_err(), "trailing byte");

        let result = ReduceTaskResult {
            data: vec![1],
            records: 1,
            allocs: 1,
            merge_fanin: 1,
            counters: vec![("n".into(), 1)],
            captured: vec![("s".into(), vec![vec![2]])],
        };
        let bytes = result.to_bytes();
        for cut in 0..bytes.len() {
            assert!(ReduceTaskResult::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
