//! Helpers for multi-round MR programs (chains of jobs where round *i*'s
//! output is round *i+1*'s input).
//!
//! The paper argues the right complexity measure for multi-round MR is the
//! **number of rounds**; [`ChainStats`](crate::stats::ChainStats) collects
//! the per-round [`JobStats`](crate::JobStats) so drivers can report both
//! rounds and the simulated time they cost.

use crate::dfs::Dfs;

/// Canonical DFS path for round `round` of the chain rooted at `base`.
///
/// # Example
/// ```
/// assert_eq!(mapreduce::driver::round_path("ff", 3), "ff/round-00003");
/// ```
#[must_use]
pub fn round_path(base: &str, round: usize) -> String {
    format!("{base}/round-{round:05}")
}

/// Canonical DFS blob path for a per-round side file.
#[must_use]
pub fn side_path(base: &str, name: &str, round: usize) -> String {
    format!("{base}/{name}-{round:05}")
}

/// Deletes round outputs older than `keep_latest` rounds before `current`,
/// bounding chain memory. Returns the number of files removed.
///
/// The two most recent rounds are typically live (current input and the
/// schimmy side input), so `keep_latest >= 2` for schimmy jobs.
pub fn collect_garbage(dfs: &mut Dfs, base: &str, current: usize, keep_latest: usize) -> usize {
    let mut removed = 0;
    for old in (0..current).rev().skip(keep_latest.saturating_sub(1)) {
        if dfs.delete(&round_path(base, old)) {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_zero_padded_and_sorted() {
        let a = round_path("x", 2);
        let b = round_path("x", 10);
        assert!(a < b, "lexicographic order must match numeric order");
    }

    #[test]
    fn gc_keeps_latest() {
        let mut dfs = Dfs::new();
        for i in 0..5 {
            dfs.write_records(&round_path("ff", i), 1, vec![(1u64, i as u64)])
                .unwrap();
        }
        let removed = collect_garbage(&mut dfs, "ff", 4, 2);
        assert_eq!(removed, 3);
        assert!(!dfs.exists(&round_path("ff", 0)));
        assert!(!dfs.exists(&round_path("ff", 2)));
        assert!(dfs.exists(&round_path("ff", 3)));
        assert!(dfs.exists(&round_path("ff", 4)));
    }

    #[test]
    fn gc_on_empty_dfs_is_noop() {
        let mut dfs = Dfs::new();
        assert_eq!(collect_garbage(&mut dfs, "ff", 10, 2), 0);
    }
}
