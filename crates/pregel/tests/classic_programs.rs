//! The library's classic programs ([`pregel::algorithms`]) cross-checked
//! against in-memory computations on generated graphs.

use pregel::algorithms::{connected_components, dijkstra, pagerank, shortest_paths};
use swgraph::gen;

#[test]
fn connected_components_match_in_memory() {
    let n = 300;
    let edges: Vec<(u64, u64)> = gen::barabasi_albert(150, 3, 4)
        .into_iter()
        // Two copies of the same graph, shifted: exactly 2 components.
        .flat_map(|(u, v)| [(u, v), (u + 150, v + 150)])
        .collect();
    let labels = connected_components(n, &edges).unwrap();
    assert!(labels[..150].iter().all(|&l| l == 0));
    assert!(labels[150..].iter().all(|&l| l == 150));
}

#[test]
fn components_agree_with_swgraph_on_random_graphs() {
    for seed in 0..5 {
        let n = 200;
        let edges = gen::erdos_renyi(n, 150, seed);
        let labels = connected_components(n, &edges).unwrap();
        let net = swgraph::FlowNetwork::from_undirected_unit(n, &edges);
        let expected = swgraph::props::component_sizes(&net).len();
        let mut distinct: Vec<u64> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), expected, "seed {seed}");
        // Same-component vertices share labels with their neighbors.
        for &(u, v) in &edges {
            assert_eq!(labels[u as usize], labels[v as usize]);
        }
    }
}

#[test]
fn weighted_sssp_matches_dijkstra_on_small_world() {
    let n = 120u64;
    let raw = gen::watts_strogatz(n, 4, 0.3, 6);
    let weighted: Vec<(u64, u64, u64)> = raw
        .iter()
        .enumerate()
        .map(|(i, &(u, v))| (u, v, 1 + (i as u64 * 13) % 9))
        .collect();
    let got = shortest_paths(n, &weighted, 0).unwrap();
    assert_eq!(got, dijkstra(n, &weighted, 0));
}

#[test]
fn pagerank_converges_and_favors_hubs() {
    let n = 200u64;
    let edges = gen::barabasi_albert(n, 3, 11);
    let ranks = pagerank(n, &edges, 0.85, 1e-7, 500).unwrap();
    let total: f64 = ranks.iter().sum();
    assert!((total - 1.0).abs() < 1e-3, "ranks sum to 1 (got {total})");
    // Vertex 0 is a seed-clique hub in BA graphs; late vertices are leaves.
    assert!(ranks[0] > ranks[(n - 1) as usize]);
}

#[test]
fn pagerank_without_convergence_budget_errors() {
    let edges = gen::barabasi_albert(50, 2, 1);
    assert!(matches!(
        pagerank(50, &edges, 0.85, 0.0, 5),
        Err(pregel::PregelError::SuperstepLimit { limit: 5 })
    ));
}
