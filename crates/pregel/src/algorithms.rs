//! Ready-made vertex programs: the classic algorithms Malewicz et al.
//! showcase, usable directly or as templates for new programs.

use std::collections::BinaryHeap;

use crate::{ComputeContext, Engine, Graph, MasterDecision, VertexProgram};

// ------------------------------------------------------------ components

/// Connected components by minimum-label propagation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Components;

impl VertexProgram for Components {
    type State = u64;
    type Edge = ();
    type Message = u64;
    type Contribution = ();
    type Broadcast = ();

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>, state: &mut u64, inbox: &[u64]) {
        let incoming = inbox.iter().copied().min();
        let improved = if ctx.superstep() == 0 {
            *state = ctx.vertex_id();
            true
        } else if incoming.is_some_and(|m| m < *state) {
            *state = incoming.expect("checked above");
            true
        } else {
            false
        };
        if improved {
            for (to, ()) in ctx.edges() {
                ctx.send(to, *state);
            }
        }
        ctx.vote_to_halt();
    }
}

/// Runs [`Components`] over an undirected edge list; returns per-vertex
/// labels (index = vertex id).
///
/// # Errors
/// Propagates engine failures.
///
/// # Example
/// ```
/// let labels = pregel::algorithms::connected_components(5, &[(0, 1), (2, 3)]).unwrap();
/// assert_eq!(labels, vec![0, 0, 2, 2, 4]);
/// ```
pub fn connected_components(n: u64, edges: &[(u64, u64)]) -> Result<Vec<u64>, crate::PregelError> {
    let mut graph = undirected_graph(n, edges, u64::MAX, ());
    Engine::new(Components).run(&mut graph, n as usize + 2)?;
    Ok(graph.iter().map(|(_, &label)| label).collect())
}

// ------------------------------------------------------------ sssp

/// Single-source shortest paths over non-negative edge lengths.
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    /// The root vertex.
    pub root: u64,
}

impl VertexProgram for Sssp {
    type State = u64;
    type Edge = u64;
    type Message = u64;
    type Contribution = ();
    type Broadcast = ();

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>, state: &mut u64, inbox: &[u64]) {
        let best = inbox.iter().copied().min().unwrap_or(u64::MAX);
        let improved = if ctx.superstep() == 0 && ctx.vertex_id() == self.root {
            *state = 0;
            true
        } else if best < *state {
            *state = best;
            true
        } else {
            false
        };
        if improved {
            for (to, len) in ctx.edges() {
                ctx.send(to, state.saturating_add(len));
            }
        }
        ctx.vote_to_halt();
    }
}

/// Runs [`Sssp`] over a weighted undirected edge list; returns distances
/// (`u64::MAX` = unreachable).
///
/// # Errors
/// Propagates engine failures.
pub fn shortest_paths(
    n: u64,
    weighted_edges: &[(u64, u64, u64)],
    root: u64,
) -> Result<Vec<u64>, crate::PregelError> {
    let mut adj: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n as usize];
    for &(u, v, w) in weighted_edges {
        adj[u as usize].push((v, w));
        adj[v as usize].push((u, w));
    }
    let mut graph = Graph::new();
    for (i, edges) in adj.into_iter().enumerate() {
        graph.add_vertex(i as u64, u64::MAX, edges);
    }
    // Path relaxations can take up to sum-of-weights supersteps in
    // pathological chains; a generous bound that still terminates.
    Engine::new(Sssp { root }).run(&mut graph, (n as usize + 2) * 8)?;
    Ok(graph.iter().map(|(_, &d)| d).collect())
}

/// Dijkstra reference (used by tests and available to callers who want
/// the in-memory answer without the engine).
#[must_use]
pub fn dijkstra(n: u64, weighted_edges: &[(u64, u64, u64)], root: u64) -> Vec<u64> {
    let mut adj: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n as usize];
    for &(u, v, w) in weighted_edges {
        adj[u as usize].push((v, w));
        adj[v as usize].push((u, w));
    }
    let mut dist = vec![u64::MAX; n as usize];
    if (root as usize) < dist.len() {
        dist[root as usize] = 0;
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0, root)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &adj[u as usize] {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
    }
    dist
}

// ------------------------------------------------------------ pagerank

/// PageRank with master-driven convergence: the aggregator sums the L1
/// change per superstep and the master halts below `epsilon`.
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Vertex count (for the uniform prior and teleport mass).
    pub n: f64,
    /// Damping factor (0.85 classically).
    pub damping: f64,
    /// L1 convergence threshold.
    pub epsilon: f64,
}

impl VertexProgram for PageRank {
    type State = f64;
    type Edge = ();
    type Message = f64;
    type Contribution = f64;
    type Broadcast = ();

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>, state: &mut f64, inbox: &[f64]) {
        let new_rank = if ctx.superstep() == 0 {
            1.0 / self.n
        } else {
            (1.0 - self.damping) / self.n + self.damping * inbox.iter().sum::<f64>()
        };
        ctx.contribute((new_rank - *state).abs());
        *state = new_rank;
        let out = ctx.edge_count().max(1) as f64;
        for (to, ()) in ctx.edges() {
            ctx.send(to, *state / out);
        }
    }

    fn fold(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn master(&self, delta_l1: f64, superstep: usize) -> MasterDecision<Self> {
        if superstep > 0 && delta_l1 < self.epsilon {
            MasterDecision::halt()
        } else {
            MasterDecision::continue_with(())
        }
    }
}

/// Runs [`PageRank`] to convergence over an undirected edge list.
///
/// # Errors
/// Propagates engine failures (including non-convergence within
/// `max_supersteps`).
pub fn pagerank(
    n: u64,
    edges: &[(u64, u64)],
    damping: f64,
    epsilon: f64,
    max_supersteps: usize,
) -> Result<Vec<f64>, crate::PregelError> {
    let mut graph = undirected_graph(n, edges, 0.0f64, ());
    Engine::new(PageRank {
        n: n as f64,
        damping,
        epsilon,
    })
    .run(&mut graph, max_supersteps)?;
    Ok(graph.iter().map(|(_, &r)| r).collect())
}

/// Builds an undirected [`Graph`] with uniform initial state.
fn undirected_graph<S: Clone + Send, E: Clone + Send + Sync>(
    n: u64,
    edges: &[(u64, u64)],
    initial: S,
    payload: E,
) -> Graph<S, E> {
    let mut adj: Vec<Vec<(u64, E)>> = vec![Vec::new(); n as usize];
    for &(u, v) in edges {
        adj[u as usize].push((v, payload.clone()));
        adj[v as usize].push((u, payload.clone()));
    }
    let mut graph = Graph::new();
    for (i, edges) in adj.into_iter().enumerate() {
        graph.add_vertex(i as u64, initial.clone(), edges);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_on_two_islands() {
        let labels = connected_components(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let edges: Vec<(u64, u64, u64)> =
            vec![(0, 1, 4), (0, 2, 1), (2, 1, 2), (1, 3, 1), (2, 3, 5)];
        let got = shortest_paths(4, &edges, 0).unwrap();
        assert_eq!(got, dijkstra(4, &edges, 0));
        assert_eq!(got, vec![0, 3, 1, 4]);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 3)];
        let ranks = pagerank(4, &edges, 0.85, 1e-9, 1000).unwrap();
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
        assert!(ranks[2] > ranks[3], "the hub outranks the leaf");
    }

    #[test]
    fn unreachable_vertices_stay_at_infinity() {
        let got = shortest_paths(3, &[(0, 1, 7)], 0).unwrap();
        assert_eq!(got, vec![0, 7, u64::MAX]);
    }
}
