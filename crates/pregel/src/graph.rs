//! The engine's in-memory vertex store.

use std::collections::BTreeMap;

/// One vertex: mutable state, out-edges, halt flag.
#[derive(Debug, Clone)]
pub(crate) struct VertexEntry<S, E> {
    pub state: S,
    pub edges: Vec<(u64, E)>,
    pub halted: bool,
}

/// A vertex-centric graph: ids to state + out-edge lists.
///
/// `BTreeMap` keeps iteration order deterministic, which keeps whole runs
/// reproducible when the engine executes single-threaded.
#[derive(Debug, Clone, Default)]
pub struct Graph<S, E> {
    pub(crate) vertices: BTreeMap<u64, VertexEntry<S, E>>,
}

impl<S, E> Graph<S, E> {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self {
            vertices: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a vertex with its initial state and out-edges.
    pub fn add_vertex(&mut self, id: u64, state: S, edges: Vec<(u64, E)>) {
        self.vertices.insert(
            id,
            VertexEntry {
                state,
                edges,
                halted: false,
            },
        );
    }

    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the graph has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// A vertex's state, if present.
    #[must_use]
    pub fn state(&self, id: u64) -> Option<&S> {
        self.vertices.get(&id).map(|v| &v.state)
    }

    /// Mutable access to a vertex's state.
    pub fn state_mut(&mut self, id: u64) -> Option<&mut S> {
        self.vertices.get_mut(&id).map(|v| &mut v.state)
    }

    /// Iterates `(id, state)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &S)> + '_ {
        self.vertices.iter().map(|(&id, v)| (id, &v.state))
    }

    /// A vertex's out-edges, if present.
    #[must_use]
    pub fn edges(&self, id: u64) -> Option<&[(u64, E)]> {
        self.vertices.get(&id).map(|v| v.edges.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g: Graph<i32, ()> = Graph::new();
        assert!(g.is_empty());
        g.add_vertex(3, 30, vec![(1, ())]);
        g.add_vertex(1, 10, vec![]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.state(3), Some(&30));
        assert_eq!(g.state(9), None);
        assert_eq!(g.edges(3).unwrap().len(), 1);
        *g.state_mut(1).unwrap() = 11;
        let ids: Vec<u64> = g.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 3], "deterministic id order");
    }

    #[test]
    fn add_vertex_replaces() {
        let mut g: Graph<i32, ()> = Graph::new();
        g.add_vertex(1, 1, vec![]);
        g.add_vertex(1, 2, vec![(3, ())]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.state(1), Some(&2));
    }
}
