//! A vertex-centric bulk-synchronous-parallel graph engine in the style
//! of Pregel (Malewicz et al., the system the FFMR paper names as the
//! natural next host for its ideas: *"We believe the ideas presented in
//! this paper also translate to Pregel"*).
//!
//! The model: computation proceeds in *supersteps*. In each superstep,
//! every active vertex receives the messages sent to it in the previous
//! superstep, runs the user's [`VertexProgram::compute`], may mutate its
//! state, send messages along (or independently of) its edges, and vote
//! to halt. A vertex is reactivated by incoming messages. Between
//! supersteps an optional *master compute* folds the vertices'
//! contributions (Pregel's aggregators) and may broadcast a value to all
//! vertices or stop the computation — exactly the hook FFMR's augmenting
//! path acceptance needs.
//!
//! # Example: single-source shortest paths
//!
//! ```
//! use pregel::{ComputeContext, Engine, Graph, VertexProgram};
//!
//! struct Sssp;
//! impl VertexProgram for Sssp {
//!     type State = u64;          // best distance so far (u64::MAX = infinity)
//!     type Edge = u64;           // edge length
//!     type Message = u64;        // candidate distance
//!     type Contribution = ();
//!     type Broadcast = ();
//!
//!     fn compute(&self, ctx: &mut ComputeContext<'_, Self>, state: &mut u64, inbox: &[u64]) {
//!         let best = inbox.iter().copied().min().unwrap_or(u64::MAX);
//!         let improved = if ctx.superstep() == 0 && ctx.vertex_id() == 0 {
//!             *state = 0;
//!             true
//!         } else if best < *state {
//!             *state = best;
//!             true
//!         } else {
//!             false
//!         };
//!         if improved {
//!             for (to, len) in ctx.edges() {
//!                 ctx.send(to, state.saturating_add(len));
//!             }
//!         }
//!         ctx.vote_to_halt();
//!     }
//! }
//!
//! let mut graph = Graph::new();
//! graph.add_vertex(0, u64::MAX, vec![(1, 4), (2, 1)]);
//! graph.add_vertex(1, u64::MAX, vec![(3, 1)]);
//! graph.add_vertex(2, u64::MAX, vec![(1, 2), (3, 5)]);
//! graph.add_vertex(3, u64::MAX, vec![]);
//! let run = Engine::new(Sssp).run(&mut graph, 100).unwrap();
//! assert_eq!(*graph.state(3).unwrap(), 4); // 0 -> 2 -> 1 -> 3
//! assert!(run.supersteps <= 5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithms;
pub mod engine;
pub mod graph;
pub mod program;

pub use engine::{Engine, PregelError, RunStats, SuperstepStats};
pub use graph::Graph;
pub use program::{ComputeContext, MasterDecision, VertexProgram};
