//! The superstep executor.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

use crate::graph::{Graph, VertexEntry};
use crate::program::{ComputeContext, VertexProgram};

/// One active vertex's work item for a superstep.
type WorkItem<'g, P> = (
    u64,
    &'g mut VertexEntry<<P as VertexProgram>::State, <P as VertexProgram>::Edge>,
    Vec<<P as VertexProgram>::Message>,
);

/// Superstep-level measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SuperstepStats {
    /// Vertices that ran `compute` this superstep.
    pub active_vertices: usize,
    /// Messages produced this superstep.
    pub messages_sent: usize,
}

/// Whole-run measurements.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Per-superstep measurements.
    pub per_superstep: Vec<SuperstepStats>,
    /// Total messages across the run.
    pub total_messages: usize,
    /// Host wall-clock seconds.
    pub wall_seconds: f64,
    /// Whether the master stopped the run (vs. natural quiescence).
    pub halted_by_master: bool,
}

/// Engine failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PregelError {
    /// The superstep limit was reached with vertices still active.
    SuperstepLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A message was addressed to a vertex that does not exist.
    UnknownVertex {
        /// The missing target id.
        target: u64,
    },
}

impl fmt::Display for PregelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PregelError::SuperstepLimit { limit } => {
                write!(f, "superstep limit of {limit} reached while still active")
            }
            PregelError::UnknownVertex { target } => {
                write!(f, "message sent to unknown vertex {target}")
            }
        }
    }
}

impl Error for PregelError {}

/// Runs a [`VertexProgram`] over a [`Graph`] superstep by superstep.
#[derive(Debug)]
pub struct Engine<P> {
    program: P,
    threads: usize,
}

impl<P: VertexProgram> Engine<P> {
    /// An engine with host parallelism detected automatically.
    #[must_use]
    pub fn new(program: P) -> Self {
        Self {
            program,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }

    /// Limits worker threads (1 = fully deterministic execution order;
    /// results are deterministic regardless because per-chunk outputs are
    /// concatenated in vertex order, but fold order can matter for
    /// non-commutative folds).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// The wrapped program.
    #[must_use]
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Runs to quiescence (all vertices halted, no messages in flight),
    /// master halt, or the superstep limit.
    ///
    /// # Errors
    /// [`PregelError::SuperstepLimit`] if the limit is hit;
    /// [`PregelError::UnknownVertex`] if a message targets a missing id.
    pub fn run(
        &self,
        graph: &mut Graph<P::State, P::Edge>,
        max_supersteps: usize,
    ) -> Result<RunStats, PregelError> {
        let start = Instant::now();
        let mut inboxes: HashMap<u64, Vec<P::Message>> = HashMap::new();
        let mut broadcast = P::Broadcast::default();
        let mut stats = RunStats::default();

        for superstep in 0..max_supersteps {
            // A vertex runs if it has not halted or has mail.
            let mut work: Vec<WorkItem<'_, P>> = Vec::new();
            for (&id, entry) in &mut graph.vertices {
                let inbox = inboxes.remove(&id);
                if superstep == 0 || !entry.halted || inbox.is_some() {
                    work.push((id, entry, inbox.unwrap_or_default()));
                }
            }
            // Any leftover inbox entries target unknown vertices.
            if let Some((&target, _)) = inboxes.iter().next() {
                return Err(PregelError::UnknownVertex { target });
            }

            let active = work.len();
            if active == 0 {
                break;
            }

            // Process chunks on scoped threads; outputs are merged in
            // chunk order so results do not depend on thread timing.
            let chunk_size = active.div_ceil(self.threads);
            struct ChunkOut<P: VertexProgram> {
                outbox: Vec<(u64, P::Message)>,
                contribution: Option<P::Contribution>,
            }
            let program = &self.program;
            let broadcast_ref = &broadcast;
            let chunk_results: Vec<ChunkOut<P>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in work.chunks_mut(chunk_size.max(1)) {
                    handles.push(scope.spawn(move || {
                        let mut out = ChunkOut::<P> {
                            outbox: Vec::new(),
                            contribution: None,
                        };
                        for (id, entry, inbox) in chunk.iter_mut() {
                            let mut ctx = ComputeContext::new(
                                *id,
                                superstep,
                                &entry.edges,
                                broadcast_ref,
                                program,
                            );
                            program.compute(&mut ctx, &mut entry.state, inbox);
                            entry.halted = ctx.halt;
                            out.outbox.append(&mut ctx.outbox);
                            if let Some(c) = ctx.contribution.take() {
                                out.contribution = Some(match out.contribution.take() {
                                    None => c,
                                    Some(prev) => program.fold(prev, c),
                                });
                            }
                        }
                        out
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panics"))
                    .collect()
            });

            let mut messages = 0usize;
            let mut folded: Option<P::Contribution> = None;
            for chunk in chunk_results {
                messages += chunk.outbox.len();
                for (to, msg) in chunk.outbox {
                    inboxes.entry(to).or_default().push(msg);
                }
                if let Some(c) = chunk.contribution {
                    folded = Some(match folded.take() {
                        None => c,
                        Some(prev) => self.program.fold(prev, c),
                    });
                }
            }

            stats.per_superstep.push(SuperstepStats {
                active_vertices: active,
                messages_sent: messages,
            });
            stats.total_messages += messages;
            stats.supersteps = superstep + 1;

            let decision = self.program.master(folded.unwrap_or_default(), superstep);
            broadcast = decision.broadcast;
            if decision.halt {
                stats.halted_by_master = true;
                break;
            }
            if messages == 0 && graph.vertices.values().all(|v| v.halted) {
                break;
            }
            if superstep + 1 == max_supersteps {
                return Err(PregelError::SuperstepLimit {
                    limit: max_supersteps,
                });
            }
        }
        stats.wall_seconds = start.elapsed().as_secs_f64();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every vertex adds its inbox to its counter and forwards its id
    /// once; tests message delivery, halting and reactivation.
    struct PingAll;
    impl VertexProgram for PingAll {
        type State = u64;
        type Edge = ();
        type Message = u64;
        type Contribution = u64;
        type Broadcast = ();

        fn compute(&self, ctx: &mut ComputeContext<'_, Self>, state: &mut u64, inbox: &[u64]) {
            *state += inbox.iter().sum::<u64>();
            if ctx.superstep() == 0 {
                for (to, ()) in ctx.edges() {
                    ctx.send(to, ctx.vertex_id());
                }
            }
            ctx.contribute(1);
            ctx.vote_to_halt();
        }

        fn fold(&self, a: u64, b: u64) -> u64 {
            a + b
        }
    }

    fn ring(n: u64) -> Graph<u64, ()> {
        let mut g = Graph::new();
        for i in 0..n {
            g.add_vertex(i, 0, vec![((i + 1) % n, ())]);
        }
        g
    }

    #[test]
    fn messages_deliver_and_quiesce() {
        let mut g = ring(5);
        let run = Engine::new(PingAll).run(&mut g, 10).unwrap();
        // Superstep 0: all send; superstep 1: all receive; superstep 2:
        // nothing to do -> quiesce at 2 supersteps of activity.
        assert_eq!(run.supersteps, 2);
        assert_eq!(run.total_messages, 5);
        for (i, state) in g.iter() {
            assert_eq!(*state, (i + 4) % 5, "vertex {i} got its predecessor's id");
        }
        assert!(!run.halted_by_master);
    }

    #[test]
    fn unknown_target_is_reported() {
        struct SendNowhere;
        impl VertexProgram for SendNowhere {
            type State = ();
            type Edge = ();
            type Message = ();
            type Contribution = ();
            type Broadcast = ();
            fn compute(&self, ctx: &mut ComputeContext<'_, Self>, (): &mut (), _inbox: &[()]) {
                if ctx.superstep() == 0 {
                    ctx.send(999, ());
                }
                ctx.vote_to_halt();
            }
        }
        let mut g: Graph<(), ()> = Graph::new();
        g.add_vertex(0, (), vec![]);
        let err = Engine::new(SendNowhere).run(&mut g, 10).unwrap_err();
        assert_eq!(err, PregelError::UnknownVertex { target: 999 });
    }

    #[test]
    fn master_can_halt_early() {
        struct Chatter;
        impl VertexProgram for Chatter {
            type State = ();
            type Edge = ();
            type Message = ();
            type Contribution = ();
            type Broadcast = ();
            fn compute(&self, ctx: &mut ComputeContext<'_, Self>, (): &mut (), _inbox: &[()]) {
                // Keep itself busy forever.
                ctx.send(ctx.vertex_id(), ());
            }
            fn master(&self, (): (), superstep: usize) -> crate::MasterDecision<Self> {
                if superstep >= 3 {
                    crate::MasterDecision::halt()
                } else {
                    crate::MasterDecision::continue_with(())
                }
            }
        }
        let mut g: Graph<(), ()> = Graph::new();
        g.add_vertex(0, (), vec![]);
        let run = Engine::new(Chatter).run(&mut g, 100).unwrap();
        assert!(run.halted_by_master);
        assert_eq!(run.supersteps, 4);
    }

    #[test]
    fn superstep_limit_errors() {
        struct Forever;
        impl VertexProgram for Forever {
            type State = ();
            type Edge = ();
            type Message = ();
            type Contribution = ();
            type Broadcast = ();
            fn compute(&self, ctx: &mut ComputeContext<'_, Self>, (): &mut (), _inbox: &[()]) {
                ctx.send(ctx.vertex_id(), ());
            }
        }
        let mut g: Graph<(), ()> = Graph::new();
        g.add_vertex(0, (), vec![]);
        let err = Engine::new(Forever).run(&mut g, 5).unwrap_err();
        assert_eq!(err, PregelError::SuperstepLimit { limit: 5 });
    }

    #[test]
    fn aggregator_folds_across_threads() {
        let mut g = ring(100);
        // The fold sums each superstep's active count (contribute(1) per
        // active vertex); run with many threads to stress chunked folding.
        let run = Engine::new(PingAll).threads(8).run(&mut g, 10).unwrap();
        assert_eq!(run.per_superstep[0].active_vertices, 100);
        assert_eq!(run.per_superstep[1].active_vertices, 100);
    }

    #[test]
    fn empty_graph_finishes_immediately() {
        let mut g: Graph<u64, ()> = Graph::new();
        let run = Engine::new(PingAll).run(&mut g, 10).unwrap();
        assert_eq!(run.supersteps, 0);
        assert_eq!(run.total_messages, 0);
    }
}
