//! The user-facing programming model: vertex programs and their contexts.

/// A vertex-centric program.
///
/// Associated types fix the whole computation's shape:
/// * `State` — mutable per-vertex value.
/// * `Edge` — per-out-edge payload (weights, capacities, ...).
/// * `Message` — what vertices exchange between supersteps.
/// * `Contribution` — what vertices hand to the master (Pregel's
///   aggregator input); folded pairwise by [`VertexProgram::fold`].
/// * `Broadcast` — what the master hands back to every vertex next
///   superstep.
pub trait VertexProgram: Send + Sync + Sized + 'static {
    /// Mutable per-vertex value.
    type State: Send;
    /// Per-out-edge payload.
    type Edge: Send + Sync + Clone;
    /// Inter-vertex message.
    type Message: Send + Clone;
    /// Aggregator contribution (must fold associatively).
    type Contribution: Send + Default;
    /// Master-to-all-vertices broadcast.
    type Broadcast: Send + Sync + Default;

    /// Runs on every active vertex once per superstep.
    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, Self>,
        state: &mut Self::State,
        inbox: &[Self::Message],
    );

    /// Folds two aggregator contributions (default keeps the first —
    /// fine when `Contribution = ()`).
    #[must_use]
    fn fold(&self, a: Self::Contribution, _b: Self::Contribution) -> Self::Contribution {
        a
    }

    /// Master compute: runs once between supersteps on the folded
    /// contribution. The default continues with a default broadcast.
    fn master(&self, _folded: Self::Contribution, _superstep: usize) -> MasterDecision<Self> {
        MasterDecision::continue_with(Self::Broadcast::default())
    }
}

/// What the master decides between supersteps.
pub struct MasterDecision<P: VertexProgram> {
    /// Value every vertex can read next superstep.
    pub broadcast: P::Broadcast,
    /// Stop the whole computation now (overrides vertex activity).
    pub halt: bool,
}

impl<P: VertexProgram> MasterDecision<P> {
    /// Continue, broadcasting `value`.
    #[must_use]
    pub fn continue_with(value: P::Broadcast) -> Self {
        Self {
            broadcast: value,
            halt: false,
        }
    }

    /// Stop the computation after this superstep.
    #[must_use]
    pub fn halt() -> Self {
        Self {
            broadcast: P::Broadcast::default(),
            halt: true,
        }
    }
}

impl<P: VertexProgram> std::fmt::Debug for MasterDecision<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MasterDecision")
            .field("halt", &self.halt)
            .finish()
    }
}

/// Everything a vertex can see and do during [`VertexProgram::compute`].
pub struct ComputeContext<'a, P: VertexProgram> {
    pub(crate) vertex_id: u64,
    pub(crate) superstep: usize,
    pub(crate) edges: &'a [(u64, P::Edge)],
    pub(crate) broadcast: &'a P::Broadcast,
    pub(crate) program: &'a P,
    pub(crate) outbox: Vec<(u64, P::Message)>,
    pub(crate) contribution: Option<P::Contribution>,
    pub(crate) halt: bool,
}

impl<'a, P: VertexProgram> ComputeContext<'a, P> {
    pub(crate) fn new(
        vertex_id: u64,
        superstep: usize,
        edges: &'a [(u64, P::Edge)],
        broadcast: &'a P::Broadcast,
        program: &'a P,
    ) -> Self {
        Self {
            vertex_id,
            superstep,
            edges,
            broadcast,
            program,
            outbox: Vec::new(),
            contribution: None,
            halt: false,
        }
    }

    /// This vertex's id.
    #[must_use]
    pub fn vertex_id(&self) -> u64 {
        self.vertex_id
    }

    /// The current superstep (0-based).
    #[must_use]
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// This vertex's out-edges `(target, payload)`. The iterator borrows
    /// the graph, not the context, so sending while iterating is fine:
    /// `for (to, e) in ctx.edges() { ctx.send(to, ...) }`.
    pub fn edges(&self) -> impl Iterator<Item = (u64, P::Edge)> + 'a {
        self.edges.iter().cloned()
    }

    /// Number of out-edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The master's broadcast from the previous superstep (borrowing for
    /// the superstep's lifetime, like [`ComputeContext::edges`]).
    #[must_use]
    pub fn broadcast(&self) -> &'a P::Broadcast {
        self.broadcast
    }

    /// Sends a message, delivered at the next superstep. The target need
    /// not be a neighbor (Pregel allows arbitrary targets).
    pub fn send(&mut self, to: u64, message: P::Message) {
        self.outbox.push((to, message));
    }

    /// Adds to this superstep's aggregator (folded with
    /// [`VertexProgram::fold`], handed to [`VertexProgram::master`]).
    pub fn contribute(&mut self, value: P::Contribution) {
        self.contribution = Some(match self.contribution.take() {
            None => value,
            Some(existing) => self.program.fold(existing, value),
        });
    }

    /// Votes to halt; the vertex stays inactive until a message arrives.
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }
}
