//! The `ffmrd` daemon: TCP front-end, bounded work queue, worker pool.
//!
//! Threading model (std-only, no async runtime):
//!
//! * one **accept thread** owns the listener and spawns a thread per
//!   connection (clients are few and long-lived; a query, not a
//!   connection, is the unit of work);
//! * each **connection thread** reads one frame at a time. Cheap verbs
//!   (`ping`, `list`, `stats`, `history`, `shutdown`) are answered
//!   inline; anything
//!   that runs a solver or touches disk is submitted to the bounded
//!   queue and the thread blocks for that one reply — the protocol is
//!   strict request/response per connection;
//! * a fixed pool of **worker threads** drains the queue and runs
//!   [`QueryEngine::execute`].
//!
//! The queue is a `sync_channel(queue_depth)` submitted to with
//! `try_send`: when every worker is busy and the queue is full, the
//! client immediately gets a `busy` frame instead of unbounded latency —
//! explicit load shedding, never silent queueing.
//!
//! Shutdown (via [`ServerHandle::shutdown`] or the `shutdown` verb) sets
//! one flag; the accept loop is unblocked by a self-connection, the
//! connection threads notice through their read timeout, the workers
//! through their receive timeout, and everything is joined — no detached
//! threads survive the handle.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ffmr_sync::Mutex;

use crate::engine::QueryEngine;
use crate::protocol::{busy_response, error_response, read_frame, write_frame, Message, WireError};

/// How often blocked threads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Server sizing knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Requests that may wait in the queue beyond the ones being
    /// executed; further submissions are shed with `busy`.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 16,
        }
    }
}

/// One queued unit of work: the request and where to send the reply.
struct WorkItem {
    request: Message,
    reply: mpsc::Sender<Message>,
    /// When the item entered the queue (drives `ffmr_queue_wait_us`).
    enqueued: std::time::Instant,
}

struct Shared {
    engine: Arc<QueryEngine>,
    shutdown: AtomicBool,
    queue: SyncSender<WorkItem>,
}

/// A running daemon. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaks the threads; call it.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Binds `addr` and serves `engine` until shutdown.
///
/// # Errors
/// Propagates the bind failure.
pub fn serve(
    addr: impl ToSocketAddrs,
    engine: Arc<QueryEngine>,
    config: &ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let m = ffmr_obs::global();
    m.gauge("ffmr_workers", &[])
        .set(i64::try_from(config.workers.max(1)).unwrap_or(i64::MAX));
    m.gauge("ffmr_queue_capacity", &[])
        .set(i64::try_from(config.queue_depth.max(1)).unwrap_or(i64::MAX));
    let (queue_tx, queue_rx) = mpsc::sync_channel::<WorkItem>(config.queue_depth.max(1));
    let shared = Arc::new(Shared {
        engine,
        shutdown: AtomicBool::new(false),
        queue: queue_tx,
    });

    let queue_rx = Arc::new(Mutex::new(queue_rx));
    let workers = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            let queue_rx = Arc::clone(&queue_rx);
            std::thread::Builder::new()
                .name(format!("ffmrd-worker-{i}"))
                .spawn(move || worker_loop(&shared, &queue_rx))
                .expect("spawn worker")
        })
        .collect();

    let connections = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let shared = Arc::clone(&shared);
        let connections = Arc::clone(&connections);
        std::thread::Builder::new()
            .name("ffmrd-accept".into())
            .spawn(move || accept_loop(&listener, &shared, &connections))
            .expect("spawn accept thread")
    };

    Ok(ServerHandle {
        local_addr,
        shared,
        accept: Some(accept),
        workers,
        connections,
    })
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether shutdown has been requested (locally or over the wire).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Blocks until shutdown is requested, then joins everything.
    pub fn wait(mut self) {
        while !self.shutdown_requested() {
            std::thread::sleep(POLL_INTERVAL);
        }
        self.join_all();
    }

    /// Requests shutdown and joins every thread the server owns.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.join_all();
    }

    fn join_all(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Unblock accept(): the loop re-checks the flag per connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let connections = std::mem::take(&mut *self.connections.lock());
        for conn in connections {
            let _ = conn.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, conns: &Mutex<Vec<JoinHandle<()>>>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("ffmrd-conn".into())
            .spawn(move || connection_loop(stream, &shared))
            .expect("spawn connection thread");
        let mut conns = conns.lock();
        // Opportunistically reap finished connections so a long-lived
        // daemon doesn't accumulate handles.
        conns.retain(|h| !h.is_finished());
        conns.push(handle);
        ffmr_obs::global()
            .gauge("ffmr_connections", &[])
            .set(i64::try_from(conns.len()).unwrap_or(i64::MAX));
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // The read timeout is what lets an idle connection observe shutdown.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // peer closed cleanly
            Err(WireError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle poll tick. (A peer that stalls mid-frame longer
                // than the timeout also lands here and is dropped —
                // frames are tiny, so that only happens to a broken
                // peer, and dropping beats serving desynced garbage.)
                continue;
            }
            Err(_) => return,
        };
        let response = match Message::decode(&payload) {
            Ok(request) => dispatch(&request, shared),
            Err(e) => error_response(e),
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

/// Routes one request: inline for cheap verbs, through the bounded
/// queue for anything that does real work.
fn dispatch(request: &Message, shared: &Arc<Shared>) -> Message {
    match request.head.as_str() {
        "ping" | "list" | "stats" | "history" | "slowlog" => shared.engine.execute(request),
        "shutdown" => {
            shared.shutdown.store(true, Ordering::Relaxed);
            Message::new(crate::protocol::status::OK).field("shutdown", 1)
        }
        _ => {
            let (reply_tx, reply_rx) = mpsc::channel();
            let item = WorkItem {
                request: request.clone(),
                reply: reply_tx,
                enqueued: std::time::Instant::now(),
            };
            match shared.queue.try_send(item) {
                Ok(()) => {
                    ffmr_obs::global().gauge("ffmr_queue_depth", &[]).add(1);
                    reply_rx
                        .recv()
                        .unwrap_or_else(|_| error_response("worker dropped the request"))
                }
                Err(TrySendError::Full(_)) => {
                    ffmr_obs::global().counter("ffmr_shed_total", &[]).inc();
                    busy_response()
                }
                Err(TrySendError::Disconnected(_)) => error_response("server is shutting down"),
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, queue: &Mutex<Receiver<WorkItem>>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Hold the lock only for the timed receive; replies and solver
        // work happen outside it so workers drain the queue in parallel.
        let item = queue.lock().recv_timeout(POLL_INTERVAL);
        match item {
            Ok(WorkItem {
                mut request,
                reply,
                enqueued,
            }) => {
                let m = ffmr_obs::global();
                m.gauge("ffmr_queue_depth", &[]).sub(1);
                // Queue-wait latency: how long the request sat behind
                // busy workers before one picked it up — the knob
                // operators watch to size the worker pool.
                let waited = enqueued.elapsed();
                m.histogram("ffmr_queue_wait_us", &[])
                    .record_duration(waited);
                // The engine folds the measured wait into the query's
                // profile (explain output, slowlog, stage histograms).
                request.push(
                    "queue-wait-us",
                    u64::try_from(waited.as_micros()).unwrap_or(u64::MAX),
                );
                m.gauge("ffmr_workers_busy", &[]).add(1);
                let response = shared.engine.execute(&request);
                m.gauge("ffmr_workers_busy", &[]).sub(1);
                // A gone receiver just means the connection died.
                let _ = reply.send(response);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::engine::EngineConfig;
    use crate::store::GraphStore;
    use swgraph::FlowNetwork;

    fn start(workers: usize, queue_depth: usize) -> ServerHandle {
        let store = Arc::new(GraphStore::new());
        store.insert_network(
            "g",
            FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]),
        );
        let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
        serve(
            "127.0.0.1:0",
            engine,
            &ServerConfig {
                workers,
                queue_depth,
            },
        )
        .unwrap()
    }

    #[test]
    fn ping_and_query_round_trip() {
        let server = start(2, 4);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let pong = client.request(&Message::new("ping")).unwrap();
        assert_eq!(pong.head, "ok");
        let r = client
            .request(
                &Message::new("maxflow")
                    .field("dataset", "g")
                    .field("source", 0)
                    .field("sink", 3),
            )
            .unwrap();
        assert_eq!(r.get("flow"), Some("2"), "{r:?}");
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_error_responses() {
        let server = start(1, 2);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client.request(&Message::new("maxflow")).unwrap();
        assert_eq!(r.head, "error");
        server.shutdown();
    }

    #[test]
    fn remote_shutdown_unblocks_wait() {
        let server = start(1, 2);
        let addr = server.local_addr();
        let waiter = std::thread::spawn(move || server.wait());
        let mut client = Client::connect(addr).unwrap();
        let r = client.request(&Message::new("shutdown")).unwrap();
        assert_eq!(r.head, "ok");
        waiter.join().unwrap();
    }
}
