//! The query engine: routes each request to the right solver and
//! memoizes answers.
//!
//! Solver auto-selection follows the structure-aware lesson of
//! Bläsius/Friedrich/Weyand: on graphs small enough to fit one worker's
//! memory comfortably, an in-memory solver beats any distributed round
//! structure by orders of magnitude, while past the threshold the FF5
//! MapReduce driver wins by keeping the whole graph out of any single
//! address space. The in-memory tier is the deterministic parallel
//! push-relabel ([`maxflow::parallel_push_relabel`]), which uses every
//! core [`EngineConfig::worker_threads`] grants while answering
//! bit-identically for any thread count. `algorithm auto` (the default)
//! compares the snapshot's vertex count against
//! [`EngineConfig::mr_threshold_vertices`]; explicit `algorithm` values
//! (`parallel-pr`, `dinic`, `ff5`, ...) pin a solver. Every response
//! carries the chosen solver plus the MapReduce round and shuffle
//! counters (zero for sequential routes) so clients can see what a query
//! cost.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use ffmr_core::{FfConfig, FfError, FfRun, FfVariant};
use ffmr_obs::{QueryProfile, SlowLog};
use mapreduce::{ClusterConfig, MrRuntime};
use maxflow::contraction::CorePlan;
use maxflow::parallel_push_relabel::{max_flow_pooled, PrConfig, SolverPool};
use maxflow::{Algorithm, Cancel, FlowResult, SolveReport};
use swgraph::{FlowNetwork, VertexId};

use crate::cache::{CacheKey, CacheStats, CachedAnswer, FlowCache, QueryKind};
use crate::protocol::{error_response, status, Message};
use crate::store::GraphStore;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Graphs with at most this many vertices take the in-memory
    /// parallel push-relabel route under `algorithm auto`; larger ones
    /// take the FF5 MapReduce driver.
    pub mr_threshold_vertices: usize,
    /// Worker threads for the in-memory parallel solver and for MR task
    /// execution (`None` uses every available core).
    pub worker_threads: Option<usize>,
    /// Simulated cluster size for MapReduce queries.
    pub cluster_nodes: usize,
    /// Reduce partitions for MapReduce queries.
    pub reducers: usize,
    /// Flow-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Per-query deadline when the request names none.
    pub default_timeout: Duration,
    /// Minimum degree for super-terminal selection (`--w` queries).
    pub super_min_degree: usize,
    /// Default selection seed for super-terminal queries.
    pub super_seed: u64,
    /// Whether plain `s→t` max-flow queries may be answered on the
    /// snapshot's precomputed core contraction (periphery-tree direct
    /// answers and anchor-pair core solves). Off routes everything to
    /// the full graph.
    pub core_planner: bool,
    /// Queries whose end-to-end wall time (queue wait included) meets
    /// or exceeds this land in the slow-query ring served by the
    /// `slowlog` verb.
    pub slow_query_threshold: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            mr_threshold_vertices: 2_000,
            worker_threads: None,
            cluster_nodes: 20,
            reducers: 8,
            cache_capacity: 256,
            default_timeout: Duration::from_secs(30),
            super_min_degree: 3,
            super_seed: 42,
            core_planner: true,
            slow_query_threshold: Duration::from_millis(250),
        }
    }
}

/// Executes protocol requests against a [`GraphStore`] and [`FlowCache`].
#[derive(Debug)]
pub struct QueryEngine {
    store: Arc<GraphStore>,
    cache: FlowCache,
    config: EngineConfig,
    /// Runtimes whose MapReduce query was cancelled after checkpointing
    /// at least one round. A retry of the *same* query (same cache key
    /// and solver) resumes from the stashed runtime's DFS instead of
    /// recomputing from round 0 — turning a too-tight deadline into
    /// incremental progress. Bounded FIFO: the oldest stash is dropped
    /// when full.
    stash: Mutex<VecDeque<StashedRun>>,
    /// Flight-recorder round profiles of recent MapReduce queries,
    /// newest last (bounded FIFO; served by the `history` verb).
    history: Mutex<VecDeque<ffmr_obs::RoundProfile>>,
    /// One persistent worker pool shared by every in-memory parallel
    /// push-relabel solve — queries borrow its threads for the duration
    /// of their solve instead of spawning (and joining) a fresh set.
    pool: SolverPool,
    /// Queries currently being solved, keyed by their cache key. A
    /// duplicate arriving while the leader is still solving waits for
    /// the leader's answer instead of solving again (single-flight).
    inflight: Mutex<HashMap<CacheKey, Arc<InflightSlot>>>,
    /// The per-query flight recorder: profiles of queries over
    /// [`EngineConfig::slow_query_threshold`], served by the `slowlog`
    /// verb. Capacity honors `FFMR_SLOWLOG_CAP`.
    slowlog: SlowLog,
}

/// Rendezvous for queries coalesced onto one in-flight solve.
#[derive(Debug)]
struct InflightSlot {
    /// `None` while the leader is solving; the final result after.
    done: Mutex<Option<Result<(CachedAnswer, bool), String>>>,
    ready: Condvar,
}

/// Whether this query leads the solve or follows an identical one.
enum InflightRole {
    Lead(Arc<InflightSlot>),
    Follow(Arc<InflightSlot>),
}

/// One cancelled-but-checkpointed MapReduce runtime awaiting a retry.
#[derive(Debug)]
struct StashedRun {
    key: CacheKey,
    solver: String,
    rt: MrRuntime,
}

/// How many cancelled runtimes the engine keeps for resumption.
const STASH_CAPACITY: usize = 4;

/// How many round profiles the engine keeps for the `history` verb.
const HISTORY_CAPACITY: usize = 64;

/// Which solver a query resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Solver {
    Sequential(Algorithm),
    MapReduce(&'static str, FfVariant),
}

impl Solver {
    fn name(self) -> String {
        match self {
            Solver::Sequential(a) => a.to_string(),
            Solver::MapReduce(name, _) => name.to_string(),
        }
    }
}

/// The resolved terminals of a query: either the literal `s`/`t` pair or
/// a super source/sink construction over high-degree terminal sets.
struct ResolvedQuery {
    /// Network to solve on. A plain `s→t` query shares the snapshot's
    /// own `Arc` (no copy); only a `--w` query materializes a new
    /// (super-terminal-augmented) network.
    net: Arc<FlowNetwork>,
    source: VertexId,
    sink: VertexId,
    /// Canonical terminal vertex sets for the cache key.
    source_terminals: Vec<u64>,
    sink_terminals: Vec<u64>,
    /// Whether the terminals are a super source/sink construction.
    super_st: bool,
}

impl QueryEngine {
    /// Creates an engine over `store`.
    #[must_use]
    pub fn new(store: Arc<GraphStore>, config: EngineConfig) -> Self {
        // MapReduce queries feed the job history (`history` verb) from
        // their flight-recorder events; turn the recorder on for the
        // life of the process.
        ffmr_obs::events::recorder().set_enabled(true);
        let threads = config
            .worker_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
        Self {
            cache: FlowCache::new(config.cache_capacity),
            store,
            config,
            stash: Mutex::new(VecDeque::new()),
            history: Mutex::new(VecDeque::new()),
            pool: SolverPool::new(threads),
            inflight: Mutex::new(HashMap::new()),
            slowlog: SlowLog::from_env(),
        }
    }

    /// The slow-query ring (install a JSONL sink here to persist
    /// over-threshold profiles).
    #[must_use]
    pub fn slowlog(&self) -> &SlowLog {
        &self.slowlog
    }

    /// The backing store (shared with admin paths).
    #[must_use]
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.store
    }

    /// Cache observability counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Executes one request, returning the response message. Never
    /// panics on malformed input — protocol errors become `error`
    /// responses.
    #[must_use]
    pub fn execute(&self, request: &Message) -> Message {
        let started = Instant::now();
        let mut span = ffmr_obs::span("query");
        span.field("verb", &request.head);
        let result = match request.head.as_str() {
            "ping" => Ok(Message::new(status::OK).field("pong", 1)),
            "list" => Ok(self.list()),
            "stats" => self.stats(request),
            "history" => self.history(request),
            "slowlog" => self.slowlog_verb(request),
            "load" => self.load(request),
            "reload" => self.reload(request),
            "maxflow" => self.flow_query(request, QueryKind::MaxFlow),
            "mincut" => self.flow_query(request, QueryKind::MinCut),
            "sleep" => self.sleep(request),
            other => Err(format!("unknown request '{other}'")),
        };
        let response = match result {
            Ok(mut response) => {
                response.push("elapsed-us", started.elapsed().as_micros());
                response
            }
            Err(message) => error_response(message),
        };
        span.field("status", &response.head);
        drop(span);
        record_query_metrics(&request.head, &response, started.elapsed());
        response
    }

    fn list(&self) -> Message {
        let mut response = Message::new(status::OK);
        for (name, epoch, vertices, edges) in self.store.list() {
            response.push(
                "dataset",
                format!("{name} epoch={epoch} v={vertices} e={edges}"),
            );
        }
        response
    }

    fn stats(&self, request: &Message) -> Result<Message, String> {
        let mut response = Message::new(status::OK);
        if let Some(name) = request.get("dataset") {
            let snap = self
                .store
                .get(name)
                .ok_or_else(|| format!("unknown dataset '{name}'"))?;
            response.push("dataset", name);
            response.push("epoch", snap.epoch);
            response.push("vertices", snap.network.num_vertices());
            response.push("edge-pairs", snap.network.num_edge_pairs());
            response.push(
                "avg-degree",
                format!("{:.3}", swgraph::props::average_degree(&snap.network)),
            );
            response.push("max-degree", swgraph::props::max_degree(&snap.network));
            response.push("core-vertices", snap.core.core_vertex_count());
            response.push("core-edge-pairs", snap.core.core_edge_pairs());
            response.push("periphery-vertices", snap.core.periphery_vertex_count());
            let route = if snap.network.num_vertices() <= self.config.mr_threshold_vertices {
                "sequential"
            } else {
                "mapreduce"
            };
            response.push("auto-route", route);
        }
        let cache = self.cache.stats();
        response.push("cache-hits", cache.hits);
        response.push("cache-misses", cache.misses);
        response.push("cache-entries", cache.entries);
        response.push("cache-evictions", cache.evictions);
        response.push("cache-invalidated", cache.invalidated);
        // Refresh the scrape-time gauges, then attach the full registry:
        // flat `series value` fields by default, or the Prometheus text
        // exposition as repeated one-line `prom` fields when asked
        // (values may contain spaces; lines may not contain newlines).
        let m = ffmr_obs::global();
        m.gauge("ffmr_cache_entries", &[])
            .set(i64::try_from(cache.entries).unwrap_or(i64::MAX));
        for (name, epoch, _, _) in self.store.list() {
            if let Some(snap) = self.store.get(&name) {
                m.gauge("ffmr_snapshot_epoch", &[("dataset", &name)])
                    .set(i64::try_from(epoch).unwrap_or(i64::MAX));
                m.gauge("ffmr_snapshot_age_seconds", &[("dataset", &name)])
                    .set(i64::try_from(snap.loaded_at.elapsed().as_secs()).unwrap_or(i64::MAX));
            }
        }
        if request.get("format") == Some("prometheus") {
            for line in m.render_prometheus().lines() {
                response.push("prom", line);
            }
        } else {
            for (key, value) in m.render_fields() {
                response.push(key, value);
            }
        }
        Ok(response)
    }

    /// Serves the job history of recent MapReduce queries: a `rounds`
    /// count plus up to `limit` (default 16) repeated `profile` fields,
    /// each one single-line [`ffmr_obs::RoundProfile`] JSON, newest last.
    fn history(&self, request: &Message) -> Result<Message, String> {
        let limit: usize = request.get_parsed("limit")?.unwrap_or(16);
        let history = self.history.lock().expect("history lock");
        let mut response = Message::new(status::OK);
        response.push("rounds", history.len());
        let skip = history.len().saturating_sub(limit);
        for profile in history.iter().skip(skip) {
            response.push("profile", profile.to_json());
        }
        Ok(response)
    }

    /// Serves the slow-query ring: a `count` of retained entries plus
    /// up to `limit` (default 16) repeated `entry` fields, each one
    /// single-line [`QueryProfile`] JSON, newest last.
    fn slowlog_verb(&self, request: &Message) -> Result<Message, String> {
        let limit: usize = request.get_parsed("limit")?.unwrap_or(16);
        let entries = self.slowlog.snapshot();
        let mut response = Message::new(status::OK);
        response.push("count", entries.len());
        response.push("dropped", self.slowlog.dropped());
        response.push("capacity", self.slowlog.capacity());
        response.push("threshold-ms", self.config.slow_query_threshold.as_millis());
        let skip = entries.len().saturating_sub(limit);
        for profile in entries.iter().skip(skip) {
            response.push("entry", profile.to_json());
        }
        Ok(response)
    }

    /// Folds the round profiles a finished MapReduce run left in its
    /// DFS history blob into the engine-wide bounded history.
    fn ingest_history(&self, rt: &MrRuntime, base_path: &str) {
        let Ok(bytes) = rt.dfs().read_blob(&ffmr_core::history_path(base_path)) else {
            return;
        };
        let text = String::from_utf8_lossy(bytes);
        let mut history = self.history.lock().expect("history lock");
        for line in text.lines() {
            if let Ok(profile) = ffmr_obs::RoundProfile::from_json(line) {
                if history.len() >= HISTORY_CAPACITY {
                    history.pop_front();
                }
                history.push_back(profile);
            }
        }
    }

    fn load(&self, request: &Message) -> Result<Message, String> {
        let name = request.get("dataset").ok_or("load needs 'dataset'")?;
        let path = request.get("path").ok_or("load needs 'path'")?;
        let epoch = self
            .store
            .load_from_path(name, path)
            .map_err(|e| e.to_string())?;
        // The epoch bump already fences stale entries; the sweep frees
        // their memory immediately.
        self.cache.invalidate_dataset(name);
        let snap = self.store.get(name).expect("just loaded");
        Ok(Message::new(status::OK)
            .field("dataset", name)
            .field("epoch", epoch)
            .field("vertices", snap.network.num_vertices())
            .field("edge-pairs", snap.network.num_edge_pairs()))
    }

    fn reload(&self, request: &Message) -> Result<Message, String> {
        let name = request.get("dataset").ok_or("reload needs 'dataset'")?;
        if request.get("path").is_some() {
            // Silently ignoring the path would re-read the *recorded*
            // file — not what the caller asked for.
            return Err(
                "reload re-reads the recorded path; use 'load' to point at a new file".to_string(),
            );
        }
        let epoch = self.store.reload(name).map_err(|e| e.to_string())?;
        self.cache.invalidate_dataset(name);
        Ok(Message::new(status::OK)
            .field("dataset", name)
            .field("epoch", epoch))
    }

    /// Diagnostic: occupy a worker slot for `ms` milliseconds. Lets
    /// operators (and the test suite) probe queue-shedding behaviour
    /// without crafting an expensive graph query.
    fn sleep(&self, request: &Message) -> Result<Message, String> {
        let ms: u64 = request.get_parsed("ms")?.unwrap_or(100).min(60_000);
        std::thread::sleep(Duration::from_millis(ms));
        Ok(Message::new(status::OK).field("slept-ms", ms))
    }

    /// The profiled wrapper around the query path: assembles one
    /// [`QueryProfile`] per request (plan, plan reason, stage wall
    /// windows, solver internals), records the per-stage and
    /// deadline-budget histograms, lands over-threshold profiles in the
    /// slowlog — on the error path too, since timeouts are exactly the
    /// queries worth explaining — and echoes the profile on the
    /// response when the request carries the `explain` flag.
    fn flow_query(&self, request: &Message, kind: QueryKind) -> Result<Message, String> {
        let started = Instant::now();
        let mut prof = QueryProfile {
            verb: request.head.clone(),
            dataset: request.get("dataset").unwrap_or("").to_string(),
            plan: "-".to_string(),
            // The server injects the measured queue wait into the
            // request before execution; engine-inline callers have none.
            queue_wait_us: request
                .get_parsed("queue-wait-us")
                .ok()
                .flatten()
                .unwrap_or(0),
            ..QueryProfile::default()
        };
        let result = self.flow_query_profiled(request, kind, &mut prof);
        prof.total_us = prof.queue_wait_us + elapsed_us(started);
        prof.unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        match &result {
            Ok(_) => prof.outcome = "ok".to_string(),
            Err(message) => {
                prof.outcome = "error".to_string();
                prof.error = Some(message.clone());
            }
        }
        let m = ffmr_obs::global();
        for (stage, us) in prof.stages() {
            m.histogram("ffmr_query_stage_us", &[("stage", stage)])
                .record(us);
        }
        if prof.deadline_ms > 0 {
            // Percent of the deadline budget consumed before answering
            // (or dying) — the SLO headroom signal.
            m.histogram("ffmr_query_deadline_budget_pct", &[])
                .record((prof.total_us * 100) / (prof.deadline_ms * 1_000));
        }
        if prof.total_us
            >= u64::try_from(self.config.slow_query_threshold.as_micros()).unwrap_or(u64::MAX)
        {
            self.slowlog.record(prof.clone());
        }
        let mut response = result?;
        if request.get("explain").is_some() {
            // Push the pair directly: the profile line is single-line
            // by construction (its writer escapes newlines), and
            // `Message::push` would re-clone the ~300-byte string just
            // to sanitize it — measurable on the explain A/B guard.
            response
                .fields
                .push(("profile".to_string(), prof.to_json()));
        }
        Ok(response)
    }

    fn flow_query_profiled(
        &self,
        request: &Message,
        kind: QueryKind,
        prof: &mut QueryProfile,
    ) -> Result<Message, String> {
        let dataset = request.get("dataset").ok_or("query needs 'dataset'")?;
        let snap = self
            .store
            .get(dataset)
            .ok_or_else(|| format!("unknown dataset '{dataset}'"))?;
        prof.epoch = snap.epoch;

        let resolve_started = Instant::now();
        let resolved = self.resolve_terminals(request, &snap.network)?;
        prof.resolve_us = elapsed_us(resolve_started);
        let requested = request.get("algorithm");
        let solver = self.pick_solver(requested, &resolved.net)?;
        let key = CacheKey::new(
            dataset,
            snap.epoch,
            kind,
            resolved.source_terminals.clone(),
            resolved.sink_terminals.clone(),
        );

        let use_cache = request.get("no-cache").is_none();
        prof.cache = if use_cache { "miss" } else { "bypass" }.to_string();
        if use_cache {
            if let Some(hit) = self.cache.get(&key) {
                prof.cache = "hit".to_string();
                prof.plan = hit.plan.clone();
                prof.plan_reason = "cache-hit".to_string();
                prof.solver = hit.solver.clone();
                let mut response = render_answer(&hit, kind, &resolved, dataset, snap.epoch, true);
                push_serving_fields(&mut response, false, false, prof.queue_wait_us);
                return Ok(response);
            }
        }

        let timeout_ms: u64 = request
            .get_parsed("timeout-ms")?
            .unwrap_or(self.config.default_timeout.as_millis() as u64);
        prof.deadline_ms = timeout_ms;
        let timeout = Duration::from_millis(timeout_ms);
        // Diagnostic: cooperatively cancel the MR driver once it has
        // completed this many rounds — exercises the cancel/checkpoint/
        // resume path without tuning a wall-clock deadline.
        let cancel_after_rounds: Option<usize> = request.get_parsed("cancel-after-rounds")?;

        // The core planner applies to plain s→t max-flow queries only:
        // min-cut needs the full graph for its certificate, `--w`
        // queries solve an augmented graph the core was not built for,
        // and an explicit MapReduce algorithm request pins the solver to
        // the full graph (`no-core` opts a single request out).
        let mr_requested = matches!(requested, Some("ff1" | "ff2" | "ff3" | "ff4" | "ff5"));
        let no_core = request.get("no-core").is_some();
        let planner_applies = self.config.core_planner
            && !resolved.super_st
            && kind == QueryKind::MaxFlow
            && !mr_requested
            && !no_core;
        let plan_started = Instant::now();
        let plan = if planner_applies {
            Some(snap.core.plan(resolved.source, resolved.sink))
        } else {
            None
        };
        prof.plan_us = elapsed_us(plan_started);
        prof.plan_reason = if planner_applies {
            String::new() // refined by execute_plan
        } else if resolved.super_st {
            "super-terminal-query".to_string()
        } else if kind == QueryKind::MinCut {
            "mincut-needs-full-graph".to_string()
        } else if mr_requested {
            "mapreduce-pinned".to_string()
        } else if no_core {
            "no-core-requested".to_string()
        } else {
            "planner-disabled".to_string()
        };

        let compute = |prof: &mut QueryProfile| -> Result<(CachedAnswer, bool), String> {
            self.execute_plan(
                &plan,
                &snap,
                &resolved,
                requested,
                solver,
                kind,
                timeout,
                dataset,
                &key,
                use_cache,
                cancel_after_rounds,
                prof,
            )
        };

        // Single-flight: an identical cacheable in-memory query arriving
        // while another is solving waits for that answer instead of
        // solving again. MapReduce queries are exempt — their stash/
        // resume and round-accounting semantics are per-execution.
        let coalescible = use_cache && matches!(solver, Solver::Sequential(_));
        let (answer, resumed, coalesced) = if coalescible {
            match self.join_or_lead(&key) {
                InflightRole::Lead(slot) => {
                    let result = compute(prof);
                    *slot.done.lock().expect("inflight slot") = Some(result.clone());
                    slot.ready.notify_all();
                    self.inflight.lock().expect("inflight map").remove(&key);
                    let (answer, resumed) = result?;
                    (answer, resumed, false)
                }
                InflightRole::Follow(slot) => {
                    let mut done = slot.done.lock().expect("inflight slot");
                    while done.is_none() {
                        done = slot.ready.wait(done).expect("inflight wait");
                    }
                    ffmr_obs::global()
                        .counter("ffmr_query_coalesced_total", &[])
                        .inc();
                    prof.coalesced = true;
                    prof.plan_reason = "coalesced-follower".to_string();
                    let (answer, resumed) = done.clone().expect("leader published")?;
                    prof.plan = answer.plan.clone();
                    prof.solver = answer.solver.clone();
                    (answer, resumed, true)
                }
            }
        } else {
            let (answer, resumed) = compute(prof)?;
            (answer, resumed, false)
        };
        prof.coalesced = coalesced;
        prof.resumed = resumed;
        if use_cache && !coalesced {
            let put_started = Instant::now();
            self.cache.put(key, answer.clone());
            prof.cache_update_us += elapsed_us(put_started);
        }
        let mut response = render_answer(&answer, kind, &resolved, dataset, snap.epoch, false);
        push_serving_fields(&mut response, resumed, coalesced, prof.queue_wait_us);
        Ok(response)
    }

    /// Registers this query in the in-flight table, either as the leader
    /// (first arrival) or as a follower of an identical running query.
    fn join_or_lead(&self, key: &CacheKey) -> InflightRole {
        let mut inflight = self.inflight.lock().expect("inflight map");
        if let Some(slot) = inflight.get(key) {
            InflightRole::Follow(Arc::clone(slot))
        } else {
            let slot = Arc::new(InflightSlot {
                done: Mutex::new(None),
                ready: Condvar::new(),
            });
            inflight.insert(key.clone(), Arc::clone(&slot));
            InflightRole::Lead(slot)
        }
    }

    /// Executes a planned query: direct periphery answers, core solves
    /// (with anchor-pair caching), or the full-graph fallback.
    #[allow(clippy::too_many_arguments)]
    fn execute_plan(
        &self,
        plan: &Option<CorePlan>,
        snap: &crate::store::Snapshot,
        resolved: &ResolvedQuery,
        requested: Option<&str>,
        solver: Solver,
        kind: QueryKind,
        timeout: Duration,
        dataset: &str,
        key: &CacheKey,
        use_cache: bool,
        cancel_after_rounds: Option<usize>,
        prof: &mut QueryProfile,
    ) -> Result<(CachedAnswer, bool), String> {
        let metrics = ffmr_obs::global();
        match *plan {
            // The periphery trees fully determine the value: no solver.
            Some(CorePlan::Direct(flow)) => {
                metrics.counter("ffmr_core_answered_total", &[]).inc();
                prof.plan = "direct".to_string();
                prof.plan_reason = "periphery-direct".to_string();
                prof.solver = "periphery".to_string();
                let answer = CachedAnswer {
                    flow,
                    solver: "periphery".to_string(),
                    plan: "direct".to_string(),
                    rounds: 0,
                    shuffle_bytes: 0,
                    sim_seconds_milli: 0,
                    cut_edges: None,
                    cut_source_side: None,
                };
                Ok((answer, false))
            }
            // Solve between the anchors on the contracted core; the
            // solve is cached under the anchor pair, so every query
            // whose periphery trees meet the core at the same anchors
            // shares it.
            Some(CorePlan::Core {
                source,
                sink,
                limit,
                source_anchor,
                sink_anchor,
            }) => {
                metrics.counter("ffmr_core_answered_total", &[]).inc();
                prof.plan = "core".to_string();
                let core_net = snap.core.core_net();
                let core_solver = self.pick_solver(requested, core_net)?;
                let core_key = CacheKey::new(
                    dataset,
                    snap.epoch,
                    QueryKind::MaxFlow,
                    vec![source_anchor],
                    vec![sink_anchor],
                );
                // When both terminals are core vertices the core key IS
                // the query key, and that lookup already missed.
                let core_hit = if use_cache && core_key != *key {
                    self.cache.get(&core_key)
                } else {
                    None
                };
                let (mut core_answer, resumed) = match core_hit {
                    Some(hit) => {
                        prof.plan_reason = "anchor-cache-hit".to_string();
                        prof.solver = hit.solver.clone();
                        (hit, false)
                    }
                    None => {
                        prof.plan_reason = "anchor-core-solve".to_string();
                        let core_q = ResolvedQuery {
                            net: Arc::clone(core_net),
                            source,
                            sink,
                            source_terminals: vec![source_anchor],
                            sink_terminals: vec![sink_anchor],
                            super_st: false,
                        };
                        let (mut answer, resumed) = self.solve(
                            &core_q,
                            core_solver,
                            QueryKind::MaxFlow,
                            timeout,
                            &core_key,
                            cancel_after_rounds,
                            prof,
                        )?;
                        answer.plan = "core".to_string();
                        if use_cache && core_key != *key {
                            // The unclamped anchor-pair value is what
                            // other queries sharing these anchors need.
                            let put_started = Instant::now();
                            self.cache.put(core_key, answer.clone());
                            prof.cache_update_us += elapsed_us(put_started);
                        }
                        (answer, resumed)
                    }
                };
                core_answer.flow = limit.min(core_answer.flow);
                Ok((core_answer, resumed))
            }
            None => {
                if !resolved.super_st && kind == QueryKind::MaxFlow {
                    metrics.counter("ffmr_core_fallback_total", &[]).inc();
                }
                prof.plan = "full".to_string();
                self.solve(
                    resolved,
                    solver,
                    kind,
                    timeout,
                    key,
                    cancel_after_rounds,
                    prof,
                )
            }
        }
    }

    fn resolve_terminals(
        &self,
        request: &Message,
        base: &Arc<FlowNetwork>,
    ) -> Result<ResolvedQuery, String> {
        let w: usize = request.get_parsed("w")?.unwrap_or(0);
        if w > 0 {
            let seed: u64 = request
                .get_parsed("seed")?
                .unwrap_or(self.config.super_seed);
            let min_degree: usize = request
                .get_parsed("min-degree")?
                .unwrap_or(self.config.super_min_degree);
            let st = swgraph::super_st::attach_super_terminals(base, w, min_degree, seed)
                .map_err(|e| e.to_string())?;
            return Ok(ResolvedQuery {
                net: Arc::new(st.network),
                source: st.source,
                sink: st.sink,
                source_terminals: st.source_terminals.iter().map(|v| v.raw()).collect(),
                sink_terminals: st.sink_terminals.iter().map(|v| v.raw()).collect(),
                super_st: true,
            });
        }
        let source: u64 = request
            .get_parsed("source")?
            .ok_or("query needs 'source'/'sink' or 'w'")?;
        let sink: u64 = request
            .get_parsed("sink")?
            .ok_or("query needs 'source'/'sink' or 'w'")?;
        if source == sink {
            return Err("source equals sink".into());
        }
        let n = base.num_vertices() as u64;
        if source >= n || sink >= n {
            return Err(format!("terminal outside the graph (0..{n})"));
        }
        Ok(ResolvedQuery {
            // Shares the snapshot's Arc — a plain query never copies
            // the graph.
            net: Arc::clone(base),
            source: VertexId::new(source),
            sink: VertexId::new(sink),
            source_terminals: vec![source],
            sink_terminals: vec![sink],
            super_st: false,
        })
    }

    fn pick_solver(&self, requested: Option<&str>, net: &FlowNetwork) -> Result<Solver, String> {
        let auto = || {
            if net.num_vertices() <= self.config.mr_threshold_vertices {
                Solver::Sequential(Algorithm::ParallelPushRelabel)
            } else {
                Solver::MapReduce("ff5", FfVariant::ff5())
            }
        };
        Ok(match requested.unwrap_or("auto") {
            "auto" => auto(),
            "parallel-pr" => Solver::Sequential(Algorithm::ParallelPushRelabel),
            "dinic" => Solver::Sequential(Algorithm::Dinic),
            "edmonds-karp" => Solver::Sequential(Algorithm::EdmondsKarp),
            "ford-fulkerson" => Solver::Sequential(Algorithm::FordFulkerson),
            "push-relabel" => Solver::Sequential(Algorithm::PushRelabel),
            "capacity-scaling" => Solver::Sequential(Algorithm::CapacityScaling),
            "ff1" => Solver::MapReduce("ff1", FfVariant::ff1()),
            "ff2" => Solver::MapReduce("ff2", FfVariant::ff2()),
            "ff3" => Solver::MapReduce("ff3", FfVariant::ff3()),
            "ff4" => Solver::MapReduce("ff4", FfVariant::ff4()),
            "ff5" => Solver::MapReduce("ff5", FfVariant::ff5()),
            other => return Err(format!("unknown algorithm '{other}'")),
        })
    }

    /// Solves the query; the second result element reports whether a
    /// MapReduce run was resumed from a stashed checkpoint.
    #[allow(clippy::too_many_arguments)]
    fn solve(
        &self,
        q: &ResolvedQuery,
        solver: Solver,
        kind: QueryKind,
        timeout: Duration,
        key: &CacheKey,
        cancel_after_rounds: Option<usize>,
        prof: &mut QueryProfile,
    ) -> Result<(CachedAnswer, bool), String> {
        match solver {
            Solver::Sequential(algo) => {
                // Every in-memory solver polls a deadline at its natural
                // progress boundaries; a query that blows its budget
                // returns a timeout error instead of holding the
                // connection hostage. The parallel push-relabel route
                // runs on the engine's persistent worker pool (no
                // per-query thread spawn) and is thread-count invariant.
                let cancel = Cancel::after(timeout);
                prof.solver = solver.name();
                let solve_started = Instant::now();
                let mut report = SolveReport::default();
                let solved = if algo == Algorithm::ParallelPushRelabel {
                    let config = PrConfig {
                        threads: self.pool.threads(),
                        ..PrConfig::default()
                    };
                    max_flow_pooled(&q.net, q.source, q.sink, &config, &self.pool, &cancel).map(
                        |run| {
                            report = run.stats.report();
                            run.result
                        },
                    )
                } else {
                    algo.run_with_report(&q.net, q.source, q.sink, &cancel)
                        .map(|(result, r)| {
                            report = r;
                            result
                        })
                };
                prof.solve_us += elapsed_us(solve_started);
                prof.phases += report.phases;
                prof.augmenting_paths += report.augmenting_paths;
                prof.pushes += report.pushes;
                prof.relabels += report.relabels;
                prof.global_relabels += report.global_relabels;
                prof.cancel_polls += report.cancel_polls;
                let flow = solved.map_err(|_| {
                    format!(
                        "timeout after {}ms (in-memory solve cancelled at the deadline)",
                        timeout.as_millis()
                    )
                })?;
                let mut answer = CachedAnswer {
                    flow: flow.value,
                    solver: solver.name(),
                    plan: "full".to_string(),
                    rounds: 0,
                    shuffle_bytes: 0,
                    sim_seconds_milli: 0,
                    cut_edges: None,
                    cut_source_side: None,
                };
                if kind == QueryKind::MinCut {
                    let cut = maxflow::min_cut::extract_min_cut(&q.net, q.source, &flow);
                    answer.cut_edges = Some(cut.cut_edges.len());
                    answer.cut_source_side = Some(cut.source_side.len());
                }
                Ok((answer, false))
            }
            Solver::MapReduce(name, variant) => {
                prof.solver = name.to_string();
                let solve_started = Instant::now();
                let mr = self.run_mapreduce(q, name, variant, timeout, key, cancel_after_rounds);
                prof.solve_us += elapsed_us(solve_started);
                let (run, rt, resumed) = mr?;
                // Each MR flow round is the distributed analogue of a
                // solver phase.
                prof.phases += run.num_flow_rounds() as u64;
                let mut answer = CachedAnswer {
                    flow: run.max_flow_value,
                    solver: name.to_string(),
                    plan: "full".to_string(),
                    rounds: run.num_flow_rounds(),
                    shuffle_bytes: run.rounds.iter().map(|r| r.shuffle_bytes).sum(),
                    sim_seconds_milli: (run.total_sim_seconds * 1_000.0) as u64,
                    cut_edges: None,
                    cut_source_side: None,
                };
                if kind == QueryKind::MinCut {
                    let extracted = ffmr_core::verify::extract_flow(
                        rt.dfs(),
                        &run.final_graph_path,
                        &run.pending_deltas,
                        &q.net,
                    )
                    .map_err(|e| format!("flow extraction failed: {e}"))?;
                    let flow = FlowResult {
                        value: run.max_flow_value,
                        flows: extracted.flows,
                    };
                    let cut = maxflow::min_cut::extract_min_cut(&q.net, q.source, &flow);
                    answer.cut_edges = Some(cut.cut_edges.len());
                    answer.cut_source_side = Some(cut.source_side.len());
                }
                Ok((answer, resumed))
            }
        }
    }

    /// Pops a stashed runtime matching this query, if any.
    fn take_stashed(&self, key: &CacheKey, solver: &str) -> Option<MrRuntime> {
        let mut stash = self.stash.lock().expect("stash lock");
        let pos = stash
            .iter()
            .position(|s| s.key == *key && s.solver == solver)?;
        stash.remove(pos).map(|s| s.rt)
    }

    /// Stashes a cancelled-but-checkpointed runtime for later resumption.
    fn stash_runtime(&self, key: CacheKey, solver: String, rt: MrRuntime) {
        let mut stash = self.stash.lock().expect("stash lock");
        // A retry of the same query must find the *newest* progress.
        stash.retain(|s| !(s.key == key && s.solver == solver));
        if stash.len() >= STASH_CAPACITY {
            stash.pop_front();
        }
        stash.push_back(StashedRun { key, solver, rt });
    }

    /// Runs the FF driver with a watchdog thread that raises the
    /// cancellation hook at the deadline; the driver aborts between
    /// rounds with [`FfError::Cancelled`]. A cancelled run that reached a
    /// checkpoint is stashed so an identical retry resumes it; the third
    /// result element reports whether *this* run was such a resumption.
    fn run_mapreduce(
        &self,
        q: &ResolvedQuery,
        solver_name: &str,
        variant: FfVariant,
        timeout: Duration,
        key: &CacheKey,
        cancel_after_rounds: Option<usize>,
    ) -> Result<(FfRun, MrRuntime, bool), String> {
        let cancel = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let cancel = Arc::clone(&cancel);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let deadline = Instant::now() + timeout;
                while !done.load(Ordering::Relaxed) {
                    if Instant::now() >= deadline {
                        cancel.store(true, Ordering::Relaxed);
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10).min(timeout));
                }
            })
        };
        let mut config = FfConfig::new(q.source, q.sink)
            .variant(variant)
            .reducers(self.config.reducers)
            .cancel_flag(Arc::clone(&cancel));
        {
            // Live progress gauges for `stats --watch`: refreshed after
            // every completed round of the in-flight MR query. The same
            // hook enforces the diagnostic round limit.
            let flag = Arc::clone(&cancel);
            config = config.on_round(move |stats| {
                let m = ffmr_obs::global();
                m.gauge("ffmr_ff_live_round", &[])
                    .set(i64::try_from(stats.round).unwrap_or(i64::MAX));
                m.gauge("ffmr_ff_live_apaths", &[])
                    .set(i64::try_from(stats.a_paths).unwrap_or(i64::MAX));
                m.gauge("ffmr_ff_live_shuffle_bytes", &[])
                    .set(i64::try_from(stats.shuffle_bytes).unwrap_or(i64::MAX));
                m.gauge("ffmr_ff_live_round_wall_us", &[])
                    .set((stats.wall_seconds * 1e6) as i64);
                if cancel_after_rounds.is_some_and(|limit| stats.round >= limit) {
                    flag.store(true, Ordering::Relaxed);
                }
            });
        }

        let fresh_run = |config: &FfConfig| {
            let mut rt = MrRuntime::new(ClusterConfig::paper_cluster(self.config.cluster_nodes));
            rt.set_worker_threads(self.config.worker_threads);
            let result = ffmr_core::run_max_flow(&mut rt, &q.net, config);
            (rt, result, false)
        };
        let (rt, result, resumed) = match self.take_stashed(key, solver_name) {
            Some(mut rt) => match ffmr_core::resume_max_flow(&mut rt, &config) {
                // An unusable checkpoint (e.g. clobbered DFS) falls back
                // to a full recomputation rather than failing the query.
                Err(FfError::Checkpoint(_)) => fresh_run(&config),
                result => (rt, result, true),
            },
            None => fresh_run(&config),
        };
        done.store(true, Ordering::Relaxed);
        let _ = watchdog.join();
        match result {
            Ok(run) => {
                if resumed {
                    ffmr_obs::global()
                        .counter("ffmr_query_resumed_total", &[])
                        .inc();
                }
                self.ingest_history(&rt, &config.base_path);
                Ok((run, rt, resumed))
            }
            Err(FfError::Cancelled { rounds_completed }) => {
                let base = format!(
                    "timeout after {}ms ({rounds_completed} rounds completed",
                    timeout.as_millis()
                );
                if rt.dfs().blob_bytes("ffmr/checkpoint") > 0 {
                    self.stash_runtime(key.clone(), solver_name.to_string(), rt);
                    Err(format!("{base}; progress checkpointed, retry to resume)"))
                } else {
                    Err(format!("{base})"))
                }
            }
            Err(e) => Err(e.to_string()),
        }
    }
}

/// Folds one executed request into the process-wide registry: a per-verb
/// request counter, a per-verb error counter, and a per-plan/per-solver/
/// per-verb latency histogram (`-` for verbs that never pick one), so
/// the direct/core/full serving tiers get separate SLO curves.
fn record_query_metrics(verb: &str, response: &Message, elapsed: Duration) {
    let m = ffmr_obs::global();
    m.counter("ffmr_requests_total", &[("verb", verb)]).inc();
    if response.head == status::ERROR {
        m.counter("ffmr_request_errors_total", &[("verb", verb)])
            .inc();
    }
    let solver = response.get("solver").unwrap_or("-");
    let plan = response.get("plan").unwrap_or("-");
    m.histogram(
        "ffmr_query_latency_us",
        &[("plan", plan), ("solver", solver), ("verb", verb)],
    )
    .record_duration(elapsed);
}

/// Saturating microseconds since `since` — stage windows in a
/// [`QueryProfile`] never panic on clock weirdness.
fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The uniform serving-metadata tail every query response carries —
/// `resumed`, `coalesced`, `queue_wait_us` — regardless of which path
/// (cache hit, coalesced follower, fresh solve) produced the answer.
/// `render_answer` already emitted `dataset`/`epoch`/`solver`/`plan`/
/// `cached`; together these form the documented field set in
/// [`crate::protocol`].
fn push_serving_fields(response: &mut Message, resumed: bool, coalesced: bool, queue_wait_us: u64) {
    response.push("resumed", u8::from(resumed));
    response.push("coalesced", u8::from(coalesced));
    response.push("queue_wait_us", queue_wait_us);
}

fn render_answer(
    answer: &CachedAnswer,
    kind: QueryKind,
    q: &ResolvedQuery,
    dataset: &str,
    epoch: u64,
    cached: bool,
) -> Message {
    let mut response = Message::new(status::OK)
        .field("dataset", dataset)
        .field("epoch", epoch)
        .field("flow", answer.flow)
        .field("solver", &answer.solver)
        .field("plan", &answer.plan)
        .field("cached", u8::from(cached))
        .field("rounds", answer.rounds)
        .field("shuffle-bytes", answer.shuffle_bytes)
        .field("sim-seconds-milli", answer.sim_seconds_milli);
    if kind == QueryKind::MinCut {
        if let (Some(edges), Some(side)) = (answer.cut_edges, answer.cut_source_side) {
            response.push("cut-edges", edges);
            response.push("cut-source-side", side);
        }
    }
    response.push("sources", join(&q.source_terminals));
    response.push("sinks", join(&q.sink_terminals));
    response
}

fn join(ids: &[u64]) -> String {
    let mut out = String::new();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&id.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgraph::gen;

    fn engine_with(net: FlowNetwork, config: EngineConfig) -> QueryEngine {
        let store = Arc::new(GraphStore::new());
        store.insert_network("g", net);
        QueryEngine::new(store, config)
    }

    fn two_paths() -> FlowNetwork {
        FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)])
    }

    fn query(head: &str) -> Message {
        Message::new(head)
            .field("dataset", "g")
            .field("source", 0)
            .field("sink", 3)
    }

    #[test]
    fn maxflow_small_graph_takes_parallel_pr_and_caches() {
        let engine = engine_with(two_paths(), EngineConfig::default());
        let first = engine.execute(&query("maxflow"));
        assert_eq!(first.head, status::OK, "{first:?}");
        assert_eq!(first.get("flow"), Some("2"));
        assert_eq!(first.get("solver"), Some("parallel-pr"));
        assert_eq!(first.get("cached"), Some("0"));
        assert_eq!(first.get("rounds"), Some("0"));
        let second = engine.execute(&query("maxflow"));
        assert_eq!(second.get("cached"), Some("1"));
        assert_eq!(second.get("flow"), Some("2"));
        assert_eq!(engine.cache_stats().hits, 1);
    }

    #[test]
    fn auto_routes_to_mapreduce_above_threshold() {
        let config = EngineConfig {
            mr_threshold_vertices: 3, // force the MR route on 4 vertices
            ..EngineConfig::default()
        };
        let engine = engine_with(two_paths(), config);
        let r = engine.execute(&query("maxflow"));
        assert_eq!(r.head, status::OK, "{r:?}");
        assert_eq!(r.get("solver"), Some("ff5"));
        assert_eq!(r.get("flow"), Some("2"));
        let rounds: usize = r.get("rounds").unwrap().parse().unwrap();
        assert!(rounds > 0, "MR route reports real rounds");
        let shuffle: u64 = r.get("shuffle-bytes").unwrap().parse().unwrap();
        assert!(shuffle > 0, "MR route reports shuffle bytes");
    }

    #[test]
    fn explicit_algorithms_agree() {
        let engine = engine_with(two_paths(), EngineConfig::default());
        for algo in [
            "parallel-pr",
            "dinic",
            "edmonds-karp",
            "ford-fulkerson",
            "push-relabel",
            "capacity-scaling",
            "ff1",
            "ff5",
        ] {
            let mut q = query("maxflow").field("algorithm", algo);
            // Bypass the cache so every solver actually runs.
            q.push("no-cache", 1);
            let r = engine.execute(&q);
            assert_eq!(r.head, status::OK, "{algo}: {r:?}");
            assert_eq!(r.get("flow"), Some("2"), "{algo} disagrees");
            assert_eq!(r.get("solver"), Some(algo));
        }
    }

    #[test]
    fn worker_threads_knob_does_not_change_the_answer() {
        let n = 400;
        let net = FlowNetwork::from_undirected_unit(n, &gen::barabasi_albert(n, 3, 13));
        let mut flows = Vec::new();
        for threads in [1, 4] {
            let config = EngineConfig {
                worker_threads: Some(threads),
                ..EngineConfig::default()
            };
            let engine = engine_with(net.clone(), config);
            let q = Message::new("maxflow")
                .field("dataset", "g")
                .field("source", 0)
                .field("sink", 399);
            let r = engine.execute(&q);
            assert_eq!(r.head, status::OK, "{r:?}");
            assert_eq!(r.get("solver"), Some("parallel-pr"));
            flows.push(r.get("flow").unwrap().to_string());
        }
        assert_eq!(flows[0], flows[1], "deterministic across thread counts");
    }

    #[test]
    fn mincut_returns_certificate_on_both_routes() {
        for threshold in [2_000, 3] {
            let config = EngineConfig {
                mr_threshold_vertices: threshold,
                ..EngineConfig::default()
            };
            let engine = engine_with(two_paths(), config);
            let r = engine.execute(&query("mincut"));
            assert_eq!(r.head, status::OK, "{r:?}");
            assert_eq!(r.get("flow"), Some("2"));
            assert_eq!(r.get("cut-edges"), Some("2"));
            let side: usize = r.get("cut-source-side").unwrap().parse().unwrap();
            assert!((1..4).contains(&side));
        }
    }

    #[test]
    fn super_terminal_queries_canonicalize_into_the_cache() {
        let n = 300;
        let net = FlowNetwork::from_undirected_unit(n, &gen::barabasi_albert(n, 3, 7));
        let engine = engine_with(net, EngineConfig::default());
        let q = Message::new("maxflow")
            .field("dataset", "g")
            .field("w", 3)
            .field("seed", 11);
        let first = engine.execute(&q);
        assert_eq!(first.head, status::OK, "{first:?}");
        assert!(first.get("flow").unwrap().parse::<i64>().unwrap() > 0);
        assert_eq!(first.get("cached"), Some("0"));
        // Same w and seed → same resolved terminals → cache hit.
        let second = engine.execute(&q);
        assert_eq!(second.get("cached"), Some("1"));
        assert_eq!(second.get("sources"), first.get("sources"));
    }

    #[test]
    fn reload_invalidates_via_epoch() {
        let store = Arc::new(GraphStore::new());
        store.insert_network("g", two_paths());
        let engine = QueryEngine::new(Arc::clone(&store), EngineConfig::default());
        assert_eq!(engine.execute(&query("maxflow")).get("cached"), Some("0"));
        assert_eq!(engine.execute(&query("maxflow")).get("cached"), Some("1"));
        // Swap in a different graph under the same name: one unit path.
        store.insert_network("g", FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 3)]));
        let after = engine.execute(&query("maxflow"));
        assert_eq!(after.get("cached"), Some("0"), "epoch fenced the cache");
        assert_eq!(after.get("flow"), Some("1"), "answer is for the new graph");
    }

    #[test]
    fn timeouts_cancel_mapreduce_queries() {
        let n = 2_000;
        let net = FlowNetwork::from_undirected_unit(n, &gen::barabasi_albert(n, 3, 5));
        let config = EngineConfig {
            mr_threshold_vertices: 10,
            ..EngineConfig::default()
        };
        let engine = engine_with(net, config);
        let q = Message::new("maxflow")
            .field("dataset", "g")
            .field("w", 4)
            .field("timeout-ms", 0);
        let r = engine.execute(&q);
        assert_eq!(r.head, status::ERROR, "{r:?}");
        assert!(r.get("message").unwrap().contains("timeout"), "{r:?}");
    }

    #[test]
    fn cancelled_mapreduce_queries_resume_on_retry() {
        let n = 600;
        let net = FlowNetwork::from_undirected_unit(n, &gen::barabasi_albert(n, 3, 11));
        let config = EngineConfig {
            mr_threshold_vertices: 10, // force the MR route
            ..EngineConfig::default()
        };
        let engine = engine_with(net, config);
        let base_query = || {
            Message::new("maxflow")
                .field("dataset", "g")
                .field("w", 3)
                .field("seed", 11)
        };

        // Cancel deterministically after the first flow round: the run
        // dies mid-flight but its checkpoint survives in the stash.
        let cancelled = engine.execute(&base_query().field("cancel-after-rounds", 1));
        assert_eq!(cancelled.head, status::ERROR, "{cancelled:?}");
        let message = cancelled.get("message").unwrap();
        assert!(message.contains("1 rounds completed"), "{message}");
        assert!(message.contains("retry to resume"), "{message}");

        // The identical retry resumes from the checkpoint instead of
        // recomputing from round 0 and completes normally.
        let retry = engine.execute(&base_query());
        assert_eq!(retry.head, status::OK, "{retry:?}");
        assert_eq!(retry.get("resumed"), Some("1"));
        assert_eq!(retry.get("cached"), Some("0"));

        // A from-scratch run agrees on the answer.
        let fresh = engine.execute(&base_query().field("no-cache", 1));
        assert_eq!(fresh.get("resumed"), Some("0"), "stash was consumed");
        assert_eq!(fresh.get("flow"), retry.get("flow"));
    }

    #[test]
    fn malformed_requests_become_protocol_errors() {
        let engine = engine_with(two_paths(), EngineConfig::default());
        for (req, needle) in [
            (Message::new("maxflow"), "dataset"),
            (query("maxflow").field("algorithm", "quantum"), "algorithm"),
            (
                Message::new("maxflow")
                    .field("dataset", "missing")
                    .field("source", 0)
                    .field("sink", 1),
                "unknown dataset",
            ),
            (
                Message::new("maxflow")
                    .field("dataset", "g")
                    .field("source", 2)
                    .field("sink", 2),
                "source equals sink",
            ),
            (
                Message::new("maxflow")
                    .field("dataset", "g")
                    .field("source", 0)
                    .field("sink", 99),
                "outside",
            ),
            (Message::new("warp"), "unknown request"),
        ] {
            let r = engine.execute(&req);
            assert_eq!(r.head, status::ERROR, "{req:?} → {r:?}");
            assert!(r.get("message").unwrap().contains(needle), "{r:?}");
        }
    }

    #[test]
    fn stats_exposes_the_metrics_registry() {
        let engine = engine_with(two_paths(), EngineConfig::default());
        let _ = engine.execute(&query("maxflow"));
        let stats = engine.execute(&Message::new("stats"));
        assert_eq!(stats.head, status::OK);
        // Flat registry series ride along with the legacy cache fields.
        assert!(
            stats
                .fields
                .iter()
                .any(|(k, _)| k.starts_with("ffmr_query_latency_us{")
                    && k.contains("verb=\"maxflow\"")),
            "{stats:?}"
        );
        assert!(stats.get("ffmr_cache_entries").is_some());
        // The auto route picked the parallel solver, so its label shows
        // up in the per-solver latency split and its ffmr_pr_* counters
        // ride along in the registry dump.
        assert!(
            stats
                .fields
                .iter()
                .any(|(k, _)| k.contains("solver=\"parallel-pr\"")),
            "{stats:?}"
        );
        assert!(
            stats
                .fields
                .iter()
                .any(|(k, _)| k.starts_with("ffmr_pr_discharge_passes_total")),
            "{stats:?}"
        );
        // `format prometheus` carries the text exposition as repeated
        // one-line `prom` fields.
        let prom = engine.execute(&Message::new("stats").field("format", "prometheus"));
        let text = prom.joined_lines("prom");
        assert!(
            text.contains("# TYPE ffmr_requests_total counter"),
            "{text}"
        );
        assert!(
            text.contains("ffmr_snapshot_epoch{dataset=\"g\"}"),
            "{text}"
        );
        assert!(text.contains("ffmr_query_latency_us_count{"), "{text}");
    }

    #[test]
    fn history_serves_round_profiles_of_mapreduce_queries() {
        let config = EngineConfig {
            mr_threshold_vertices: 3, // force the MR route on 4 vertices
            ..EngineConfig::default()
        };
        let engine = engine_with(two_paths(), config);
        let empty = engine.execute(&Message::new("history"));
        assert_eq!(empty.head, status::OK, "{empty:?}");
        assert_eq!(empty.get("rounds"), Some("0"));

        let r = engine.execute(&query("maxflow"));
        assert_eq!(r.head, status::OK, "{r:?}");
        let h = engine.execute(&Message::new("history"));
        let rounds: usize = h.get("rounds").unwrap().parse().unwrap();
        assert!(rounds > 0, "MR query left round profiles: {h:?}");
        let profiles: Vec<ffmr_obs::RoundProfile> = h
            .fields
            .iter()
            .filter(|(k, _)| k == "profile")
            .map(|(_, v)| ffmr_obs::RoundProfile::from_json(v).expect("profile parses"))
            .collect();
        assert_eq!(profiles.len(), rounds.min(16));
        assert!(
            profiles.iter().any(|p| !p.events.is_empty()),
            "engine-enabled recorder fills event timelines"
        );
        assert!(
            profiles.iter().all(|p| !p.critical_path.is_empty()),
            "every profile carries a critical path"
        );

        // `limit` trims to the newest profiles.
        let limited = engine.execute(&Message::new("history").field("limit", 1));
        let kept: Vec<&(String, String)> = limited
            .fields
            .iter()
            .filter(|(k, _)| k == "profile")
            .collect();
        assert_eq!(kept.len(), 1);

        // The per-round hook refreshed the live progress gauges.
        let fields = ffmr_obs::global().render_fields();
        assert!(
            fields.iter().any(|(k, _)| k == "ffmr_ff_live_round"),
            "live round gauge exists"
        );
    }

    #[test]
    fn plain_queries_share_the_snapshot_arc() {
        // Regression: plain s→t queries used to clone the whole graph
        // per query. They must now borrow the snapshot's own Arc.
        let engine = engine_with(two_paths(), EngineConfig::default());
        let snap = engine.store().get("g").unwrap();
        let request = query("maxflow");
        let resolved = engine.resolve_terminals(&request, &snap.network).unwrap();
        assert!(
            Arc::ptr_eq(&resolved.net, &snap.network),
            "plain query must not copy the graph"
        );
        // Super-terminal queries still materialize an augmented graph.
        let super_request = Message::new("maxflow").field("dataset", "g").field("w", 1);
        let resolved = engine
            .resolve_terminals(&super_request, &snap.network)
            .unwrap();
        assert!(!Arc::ptr_eq(&resolved.net, &snap.network));
        assert_eq!(resolved.net.num_vertices(), 6, "base + super s + super t");
    }

    #[test]
    fn timeouts_cancel_in_memory_queries() {
        // Regression: `timeout-ms` was silently ignored on the
        // sequential route; the deadline now reaches the solver's
        // progress boundaries. An already-expired deadline must fail
        // deterministically even on a graph this small, for every
        // in-memory solver.
        let engine = engine_with(two_paths(), EngineConfig::default());
        for algo in ["parallel-pr", "dinic", "push-relabel", "edmonds-karp"] {
            let q = query("maxflow")
                .field("algorithm", algo)
                .field("no-core", 1)
                .field("timeout-ms", 0);
            let r = engine.execute(&q);
            assert_eq!(r.head, status::ERROR, "{algo}: {r:?}");
            let message = r.get("message").unwrap();
            assert!(message.contains("timeout after 0ms"), "{algo}: {message}");
        }
        // A sane deadline still answers.
        let r = engine.execute(&query("maxflow").field("timeout-ms", 30_000));
        assert_eq!(r.head, status::OK, "{r:?}");
    }

    /// A path graph peels entirely into periphery: the planner answers
    /// without running any solver.
    #[test]
    fn periphery_queries_are_answered_directly() {
        let net = FlowNetwork::from_undirected_unit(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let engine = engine_with(net, EngineConfig::default());
        let q = Message::new("maxflow")
            .field("dataset", "g")
            .field("source", 0)
            .field("sink", 4);
        let r = engine.execute(&q);
        assert_eq!(r.head, status::OK, "{r:?}");
        assert_eq!(r.get("flow"), Some("1"));
        assert_eq!(r.get("solver"), Some("periphery"));
        assert_eq!(r.get("plan"), Some("direct"));
        assert_eq!(r.get("rounds"), Some("0"));
    }

    /// A lollipop graph: triangle core {0,1,2} with a pendant chain
    /// 2-3-4. Queries from the chain solve on the core between anchors
    /// and clamp by the tree bottleneck; queries sharing the anchor pair
    /// share the cached core solve.
    #[test]
    fn core_plans_clamp_and_share_anchor_solves() {
        let net = FlowNetwork::from_undirected_unit(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let engine = engine_with(net, EngineConfig::default());
        let ask = |s: u64, t: u64| {
            engine.execute(
                &Message::new("maxflow")
                    .field("dataset", "g")
                    .field("source", s)
                    .field("sink", t),
            )
        };
        // 4 → 0: up the chain (bottleneck 1), then core anchor 2 → 0.
        let r = ask(4, 0);
        assert_eq!(r.head, status::OK, "{r:?}");
        assert_eq!(r.get("flow"), Some("1"));
        assert_eq!(r.get("plan"), Some("core"));
        assert_eq!(r.get("cached"), Some("0"));
        // 3 → 0 shares the anchor pair (2, 0): the core solve is reused
        // even though the full query key differs.
        let before = engine.cache_stats().hits;
        let r = ask(3, 0);
        assert_eq!(r.get("flow"), Some("1"));
        assert_eq!(r.get("plan"), Some("core"));
        assert!(
            engine.cache_stats().hits > before,
            "anchor-pair entry served the second query's core solve"
        );
        // Core-to-core queries agree with a full-graph solve.
        let r = ask(0, 1);
        assert_eq!(r.get("flow"), Some("2"), "triangle carries 2 units");
    }

    #[test]
    fn no_core_and_disabled_planner_route_to_the_full_graph() {
        let net = FlowNetwork::from_undirected_unit(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        // Per-request opt-out.
        let engine = engine_with(net.clone(), EngineConfig::default());
        let q = Message::new("maxflow")
            .field("dataset", "g")
            .field("source", 4)
            .field("sink", 0)
            .field("no-core", 1);
        let r = engine.execute(&q);
        assert_eq!(r.get("plan"), Some("full"), "{r:?}");
        assert_eq!(r.get("flow"), Some("1"));
        // Engine-wide kill switch.
        let engine = engine_with(
            net,
            EngineConfig {
                core_planner: false,
                ..EngineConfig::default()
            },
        );
        let q = Message::new("maxflow")
            .field("dataset", "g")
            .field("source", 4)
            .field("sink", 0);
        let r = engine.execute(&q);
        assert_eq!(r.get("plan"), Some("full"), "{r:?}");
        assert_eq!(r.get("flow"), Some("1"));
    }

    /// Core-planned answers agree with full-graph answers across a
    /// seeded scale-free graph, including periphery terminals.
    #[test]
    fn planner_agrees_with_full_solves_end_to_end() {
        let n = 200;
        let net = FlowNetwork::from_undirected_unit(n, &gen::barabasi_albert(n, 2, 3));
        let engine = engine_with(net, EngineConfig::default());
        for (s, t) in [(0u64, 199u64), (1, 150), (42, 43), (199, 0), (7, 180)] {
            let planned = engine.execute(
                &Message::new("maxflow")
                    .field("dataset", "g")
                    .field("source", s)
                    .field("sink", t)
                    .field("no-cache", 1),
            );
            let full = engine.execute(
                &Message::new("maxflow")
                    .field("dataset", "g")
                    .field("source", s)
                    .field("sink", t)
                    .field("no-cache", 1)
                    .field("no-core", 1),
            );
            assert_eq!(planned.head, status::OK, "{planned:?}");
            assert_eq!(
                planned.get("flow"),
                full.get("flow"),
                "({s},{t}): plan {:?} disagrees with full solve",
                planned.get("plan")
            );
        }
    }

    #[test]
    fn coalesced_queries_share_one_solve() {
        let n = 300;
        let net = FlowNetwork::from_undirected_unit(n, &gen::barabasi_albert(n, 3, 9));
        let engine = Arc::new(engine_with(net, EngineConfig::default()));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    engine.execute(
                        &Message::new("maxflow")
                            .field("dataset", "g")
                            .field("source", 0)
                            .field("sink", 299),
                    )
                })
            })
            .collect();
        let responses: Vec<Message> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        let flows: Vec<_> = responses.iter().map(|r| r.get("flow")).collect();
        assert!(flows.windows(2).all(|w| w[0] == w[1]), "{flows:?}");
        for r in &responses {
            assert_eq!(r.head, status::OK, "{r:?}");
            // Every concurrent duplicate either led the solve, followed
            // it (coalesced), or hit the cache after the leader's put.
            assert!(r.get("coalesced").is_some());
        }
    }

    #[test]
    fn stats_and_list_report_the_store() {
        let engine = engine_with(two_paths(), EngineConfig::default());
        let list = engine.execute(&Message::new("list"));
        assert_eq!(list.head, status::OK);
        assert!(list.get("dataset").unwrap().starts_with("g "));
        let stats = engine.execute(&Message::new("stats").field("dataset", "g"));
        assert_eq!(stats.get("vertices"), Some("4"));
        assert_eq!(stats.get("auto-route"), Some("sequential"));
    }

    #[test]
    fn every_query_response_carries_the_uniform_serving_fields() {
        let engine = engine_with(two_paths(), EngineConfig::default());
        // Fresh solve, then cache hit: both must carry the full set.
        let fresh = engine.execute(&query("maxflow"));
        let hit = engine.execute(&query("maxflow"));
        assert_eq!(hit.get("cached"), Some("1"));
        for (r, label) in [(&fresh, "fresh"), (&hit, "cache-hit")] {
            for field in [
                "dataset",
                "epoch",
                "solver",
                "plan",
                "cached",
                "resumed",
                "coalesced",
                "queue_wait_us",
            ] {
                assert!(r.get(field).is_some(), "{label} missing '{field}': {r:?}");
            }
        }
    }

    #[test]
    fn explain_attaches_a_parseable_profile() {
        let net = FlowNetwork::from_undirected_unit(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let engine = engine_with(net, EngineConfig::default());
        let q = Message::new("maxflow")
            .field("dataset", "g")
            .field("source", 4)
            .field("sink", 0)
            .field("queue-wait-us", 1234)
            .field("explain", 1);
        let r = engine.execute(&q);
        assert_eq!(r.head, status::OK, "{r:?}");
        let prof = ffmr_obs::QueryProfile::from_json(r.get("profile").expect("explain profile"))
            .expect("profile parses");
        assert_eq!(prof.verb, "maxflow");
        assert_eq!(prof.dataset, "g");
        assert_eq!(prof.outcome, "ok");
        assert_eq!(Some(prof.plan.as_str()), r.get("plan"));
        assert_eq!(Some(prof.solver.as_str()), r.get("solver"));
        assert_eq!(prof.plan_reason, "anchor-core-solve");
        assert_eq!(prof.queue_wait_us, 1234);
        assert!(prof.total_us >= prof.queue_wait_us);
        assert!(prof.pushes > 0, "core solve reports solver internals");

        // Without the flag the response stays lean.
        let plain = engine.execute(&query("maxflow"));
        assert!(plain.get("profile").is_none());

        // A cache hit explains itself as such.
        let r = engine.execute(&q);
        let prof =
            ffmr_obs::QueryProfile::from_json(r.get("profile").unwrap()).expect("hit profile");
        assert_eq!(prof.cache, "hit");
        assert_eq!(prof.plan_reason, "cache-hit");
    }

    #[test]
    fn slowlog_records_over_threshold_queries_and_serves_them() {
        // A zero threshold turns every query into a "slow" one.
        let config = EngineConfig {
            slow_query_threshold: Duration::ZERO,
            ..EngineConfig::default()
        };
        let engine = engine_with(two_paths(), config);
        let empty = engine.execute(&Message::new("slowlog"));
        assert_eq!(empty.head, status::OK, "{empty:?}");
        assert_eq!(empty.get("count"), Some("0"));

        let ok = engine.execute(&query("maxflow"));
        assert_eq!(ok.head, status::OK);
        // A timed-out query is exactly the kind worth explaining later:
        // it must land in the slowlog too, profiled as an error.
        let err = engine.execute(
            &query("maxflow")
                .field("algorithm", "dinic")
                .field("no-core", 1)
                .field("no-cache", 1)
                .field("timeout-ms", 0),
        );
        assert_eq!(err.head, status::ERROR, "{err:?}");

        let log = engine.execute(&Message::new("slowlog"));
        assert_eq!(log.get("count"), Some("2"), "{log:?}");
        let entries: Vec<ffmr_obs::QueryProfile> = log
            .fields
            .iter()
            .filter(|(k, _)| k == "entry")
            .map(|(_, v)| ffmr_obs::QueryProfile::from_json(v).expect("entry parses"))
            .collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].outcome, "ok");
        assert_eq!(entries[1].outcome, "error");
        assert!(
            entries[1]
                .error
                .as_deref()
                .unwrap_or("")
                .contains("timeout"),
            "{:?}",
            entries[1].error
        );
        // `limit` trims to the newest entries.
        let limited = engine.execute(&Message::new("slowlog").field("limit", 1));
        let kept: Vec<_> = limited
            .fields
            .iter()
            .filter(|(k, _)| k == "entry")
            .collect();
        assert_eq!(kept.len(), 1);
        assert!(kept[0].1.contains("\"outcome\":\"error\""), "{:?}", kept[0]);
    }

    #[test]
    fn default_threshold_keeps_fast_queries_out_of_the_slowlog() {
        let engine = engine_with(two_paths(), EngineConfig::default());
        let r = engine.execute(&query("maxflow"));
        assert_eq!(r.head, status::OK);
        let log = engine.execute(&Message::new("slowlog"));
        assert_eq!(log.get("count"), Some("0"), "{log:?}");
    }
}
