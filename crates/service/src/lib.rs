//! `ffmrd` — a resident max-flow query service.
//!
//! The batch tools in this workspace answer one max-flow question per
//! process, re-reading and re-partitioning the graph every time. This
//! crate keeps the graph *resident* and answers many questions against
//! it, which is how the paper's setting actually plays out: a social
//! network is loaded once and probed with a stream of `(source, sink)`
//! community/flow queries.
//!
//! Layering, bottom to top:
//!
//! * [`protocol`] — length-prefixed, line-oriented wire format
//!   (std-only; debuggable with a hex dump);
//! * [`store`] — named immutable graph snapshots behind `Arc`, swapped
//!   atomically on `load`/`reload` with a monotonically bumped epoch;
//! * [`cache`] — LRU memoization of answers keyed by dataset, epoch,
//!   query kind, and the *canonicalized* terminal sets (including the
//!   paper's Sec. V-A1 super-source/sink construction);
//! * [`engine`] — solver routing: sequential Dinic below a vertex
//!   threshold, the FF5 MapReduce driver above it, explicit algorithm
//!   pinning, per-query round/shuffle counters, and deadline
//!   cancellation through the core driver's hooks;
//! * [`server`] — TCP daemon: thread-per-connection front-end feeding a
//!   bounded worker pool, `busy` load shedding, graceful shutdown;
//! * [`client`] — the blocking client the `ffmr query` subcommand uses.

pub mod cache;
pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;
pub mod store;

pub use cache::{CacheKey, CacheStats, CachedAnswer, FlowCache, QueryKind};
pub use client::Client;
pub use engine::{EngineConfig, QueryEngine};
pub use protocol::{
    error_response, read_frame, status, write_frame, Message, WireError, MAX_FRAME_BYTES,
};
pub use server::{serve, ServerConfig, ServerHandle};
pub use store::{GraphStore, Snapshot, StoreError};
