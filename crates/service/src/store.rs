//! The snapshot store: named, immutable, atomically swappable graphs.
//!
//! `ffmrd` treats every graph as a *snapshot* — an immutable
//! [`FlowNetwork`] shared by `Arc` among all in-flight queries. Loading
//! or reloading a dataset builds the new network off to the side and
//! swaps the map entry atomically: queries that already hold the old
//! `Arc` finish against a consistent graph, new queries see the new one,
//! and the old snapshot is freed when its last query completes. Every
//! swap bumps the snapshot's `epoch`, which is part of every
//! [`FlowCache`](crate::cache::FlowCache) key — stale cache entries can
//! never be served for a reloaded graph.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::sync::Arc;

use ffmr_sync::RwLock;
use maxflow::contraction::CoreIndex;
use swgraph::FlowNetwork;

/// One immutable loaded graph.
#[derive(Debug)]
pub struct Snapshot {
    /// Dataset name the snapshot is registered under.
    pub name: String,
    /// Monotonic per-dataset version, bumped on every (re)load.
    pub epoch: u64,
    /// The graph itself, shared by `Arc` with every in-flight query so
    /// serving a query never copies the graph.
    pub network: Arc<FlowNetwork>,
    /// The 2-core contraction of the graph, precomputed once per swap
    /// and consulted by the query planner. Rebuilt on every (re)load —
    /// it is derived purely from `network`, so it can never go stale.
    pub core: Arc<CoreIndex>,
    /// Where the graph was read from, when file-backed (reloadable).
    pub source_path: Option<String>,
    /// When this snapshot was swapped in (drives the epoch-age gauge).
    pub loaded_at: std::time::Instant,
}

/// Failure to load or look up a snapshot.
#[derive(Debug)]
pub enum StoreError {
    /// No dataset registered under this name.
    UnknownDataset(String),
    /// The dataset is memory-resident (no source path to reload from).
    NotReloadable(String),
    /// Reading or parsing the edge-list file failed.
    Load(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownDataset(n) => write!(f, "unknown dataset '{n}'"),
            StoreError::NotReloadable(n) => {
                write!(f, "dataset '{n}' is memory-resident and cannot be reloaded")
            }
            StoreError::Load(m) => write!(f, "load failed: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A concurrent map of named [`Snapshot`]s.
#[derive(Debug, Default)]
pub struct GraphStore {
    snapshots: RwLock<HashMap<String, Arc<Snapshot>>>,
}

impl GraphStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an in-memory network (tests, generated graphs). Returns
    /// the new epoch.
    pub fn insert_network(&self, name: &str, network: FlowNetwork) -> u64 {
        self.swap_in(name, network, None)
    }

    /// Loads (or replaces) a dataset from an edge-list file. The parse
    /// happens outside the lock; concurrent queries are never blocked on
    /// disk I/O. Returns the new epoch.
    ///
    /// # Errors
    /// [`StoreError::Load`] when the file cannot be read or parsed.
    pub fn load_from_path(&self, name: &str, path: &str) -> Result<u64, StoreError> {
        let network = read_network(path)?;
        Ok(self.swap_in(name, network, Some(path.to_string())))
    }

    /// Re-reads a file-backed dataset from its recorded path.
    ///
    /// # Errors
    /// [`StoreError::UnknownDataset`] or [`StoreError::NotReloadable`]
    /// for bad targets, [`StoreError::Load`] on I/O failure.
    pub fn reload(&self, name: &str) -> Result<u64, StoreError> {
        let path = {
            let snapshots = self.snapshots.read();
            let snap = snapshots
                .get(name)
                .ok_or_else(|| StoreError::UnknownDataset(name.to_string()))?;
            snap.source_path
                .clone()
                .ok_or_else(|| StoreError::NotReloadable(name.to_string()))?
        };
        let network = read_network(&path)?;
        Ok(self.swap_in(name, network, Some(path)))
    }

    /// The current snapshot for `name`, if any. Cheap: clones an `Arc`
    /// under a read lock.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.snapshots.read().get(name).map(Arc::clone)
    }

    /// Snapshot summaries `(name, epoch, vertices, edge pairs)`, sorted
    /// by name.
    #[must_use]
    pub fn list(&self) -> Vec<(String, u64, usize, usize)> {
        let mut rows: Vec<_> = self
            .snapshots
            .read()
            .values()
            .map(|s| {
                (
                    s.name.clone(),
                    s.epoch,
                    s.network.num_vertices(),
                    s.network.num_edge_pairs(),
                )
            })
            .collect();
        rows.sort();
        rows
    }

    fn swap_in(&self, name: &str, network: FlowNetwork, source_path: Option<String>) -> u64 {
        // Preprocess outside the lock: the core peel is O(n + m) but on
        // a large snapshot that is still real work, and queries against
        // the *old* snapshot must keep flowing while it runs.
        let network = Arc::new(network);
        let core = Arc::new(CoreIndex::build(&network));
        let mut snapshots = self.snapshots.write();
        let epoch = snapshots.get(name).map_or(1, |old| old.epoch + 1);
        snapshots.insert(
            name.to_string(),
            Arc::new(Snapshot {
                name: name.to_string(),
                epoch,
                network,
                core,
                source_path,
                loaded_at: std::time::Instant::now(),
            }),
        );
        epoch
    }
}

fn read_network(path: &str) -> Result<FlowNetwork, StoreError> {
    let file = File::open(path).map_err(|e| StoreError::Load(format!("{path}: {e}")))?;
    swgraph::io::read_edge_list(BufReader::new(file))
        .map(swgraph::FlowNetworkBuilder::build)
        .map_err(|e| StoreError::Load(format!("{path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FlowNetwork {
        FlowNetwork::from_undirected_unit(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn insert_get_and_epoch_bump() {
        let store = GraphStore::new();
        assert!(store.get("g").is_none());
        assert_eq!(store.insert_network("g", tiny()), 1);
        let first = store.get("g").unwrap();
        assert_eq!(first.epoch, 1);
        assert_eq!(store.insert_network("g", tiny()), 2);
        assert_eq!(store.get("g").unwrap().epoch, 2);
        // The old Arc is still alive and still readable.
        assert_eq!(first.network.num_vertices(), 3);
    }

    #[test]
    fn every_swap_carries_a_fresh_core_index() {
        let store = GraphStore::new();
        // A path graph peels completely: no core at all.
        store.insert_network("g", tiny());
        let snap = store.get("g").unwrap();
        assert_eq!(snap.core.core_vertex_count(), 0);
        assert_eq!(snap.core.periphery_vertex_count(), 3);
        // Swapping in a cycle rebuilds the index: all-core now.
        let cycle = FlowNetwork::from_undirected_unit(3, &[(0, 1), (1, 2), (2, 0)]);
        store.insert_network("g", cycle);
        let snap = store.get("g").unwrap();
        assert_eq!(snap.core.core_vertex_count(), 3);
        assert_eq!(snap.core.periphery_vertex_count(), 0);
    }

    #[test]
    fn reload_requires_a_file_backed_dataset() {
        let store = GraphStore::new();
        store.insert_network("mem", tiny());
        assert!(matches!(
            store.reload("mem"),
            Err(StoreError::NotReloadable(_))
        ));
        assert!(matches!(
            store.reload("nope"),
            Err(StoreError::UnknownDataset(_))
        ));
    }

    #[test]
    fn file_round_trip_and_reload() {
        let dir = std::env::temp_dir().join(format!("ffmrd-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        {
            let f = File::create(&path).unwrap();
            swgraph::io::write_edge_list(&tiny(), std::io::BufWriter::new(f)).unwrap();
        }
        let store = GraphStore::new();
        let p = path.to_str().unwrap();
        assert_eq!(store.load_from_path("g", p).unwrap(), 1);
        assert_eq!(store.get("g").unwrap().network.num_vertices(), 3);
        assert_eq!(store.reload("g").unwrap(), 2);
        let rows = store.list();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "g");
        assert_eq!(rows[0].1, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_load_error() {
        let store = GraphStore::new();
        assert!(matches!(
            store.load_from_path("g", "/nonexistent/graph.txt"),
            Err(StoreError::Load(_))
        ));
        assert!(store.get("g").is_none(), "failed load must not register");
    }
}
