//! A minimal blocking client for the `ffmrd` protocol.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, Message, WireError};

/// One connection to an `ffmrd` daemon, used strictly
/// request-by-request.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// Bounds how long [`Client::request`] waits for a response frame.
    ///
    /// # Errors
    /// Propagates the socket-option failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// [`WireError`] on socket failure, on a response that is not a
    /// valid frame, or if the server closes without replying.
    pub fn request(&mut self, request: &Message) -> Result<Message, WireError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            ))
        })?;
        Message::decode(&payload)
            .map_err(|e| WireError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e)))
    }
}
