//! The flow cache: LRU memoization of answered queries.
//!
//! Max-flow answers are expensive (an FF5 run is many MapReduce rounds)
//! and immutable for a given snapshot, so `ffmrd` memoizes them. A key
//! canonicalizes everything that determines the answer:
//!
//! * dataset name **and snapshot epoch** — a `reload` bumps the epoch,
//!   so every entry for the old graph is unreachable the instant the
//!   swap commits (and is swept eagerly by
//!   [`FlowCache::invalidate_dataset`]);
//! * the query kind (max-flow vs min-cut — a min-cut answer strictly
//!   extends a max-flow answer);
//! * the *resolved, sorted* terminal sets. A plain `s→t` query
//!   canonicalizes to `([s], [t])`; a super-source/sink query (the
//!   paper's Sec. V-A1 `--w` construction) canonicalizes to the sorted
//!   high-degree terminal vertices actually chosen, so two `--w` queries
//!   that select the same terminals share one entry even across
//!   different requested seeds.
//!
//! Eviction is least-recently-used via a monotonic touch stamp; with the
//! small capacities a daemon configures (hundreds), the O(capacity) scan
//! on eviction is noise next to a single solver round.

use std::collections::HashMap;

use ffmr_sync::Mutex;
use swgraph::Capacity;

/// What was asked of the solver (part of the cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Maximum-flow value only.
    MaxFlow,
    /// Maximum flow plus the minimum cut certificate.
    MinCut,
}

/// A fully canonicalized query identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dataset name.
    pub dataset: String,
    /// Snapshot epoch the answer was computed against.
    pub epoch: u64,
    /// Max-flow or min-cut.
    pub kind: QueryKind,
    /// Sorted source-side terminal vertices (one entry for plain `s`).
    pub sources: Vec<u64>,
    /// Sorted sink-side terminal vertices (one entry for plain `t`).
    pub sinks: Vec<u64>,
}

impl CacheKey {
    /// Builds a key, sorting the terminal sets into canonical order.
    #[must_use]
    pub fn new(
        dataset: &str,
        epoch: u64,
        kind: QueryKind,
        mut sources: Vec<u64>,
        mut sinks: Vec<u64>,
    ) -> Self {
        sources.sort_unstable();
        sources.dedup();
        sinks.sort_unstable();
        sinks.dedup();
        Self {
            dataset: dataset.to_string(),
            epoch,
            kind,
            sources,
            sinks,
        }
    }
}

/// A memoized solver answer, replayed verbatim on a hit (plus a
/// `cached 1` marker in the response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    /// The max-flow value.
    pub flow: Capacity,
    /// Which solver produced it (`dinic`, `ff5`, …).
    pub solver: String,
    /// MapReduce rounds consumed (0 for sequential solvers).
    pub rounds: usize,
    /// Total shuffle bytes across rounds (0 for sequential solvers).
    pub shuffle_bytes: u64,
    /// Total simulated cluster seconds (0 for sequential solvers).
    pub sim_seconds_milli: u64,
    /// Min-cut certificate: crossing-edge count (min-cut queries only).
    pub cut_edges: Option<usize>,
    /// Min-cut certificate: source-side size (min-cut queries only).
    pub cut_source_side: Option<usize>,
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a solver.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries swept by snapshot invalidation.
    pub invalidated: u64,
    /// Current entry count.
    pub entries: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<CacheKey, (CachedAnswer, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidated: u64,
}

/// A bounded LRU cache of [`CachedAnswer`]s.
#[derive(Debug)]
pub struct FlowCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl FlowCache {
    /// A cache holding at most `capacity` answers. Capacity 0 disables
    /// caching entirely (every lookup misses).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<CachedAnswer> {
        let hit = {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let stamp = inner.clock;
            match inner.entries.get_mut(key) {
                Some((answer, touched)) => {
                    *touched = stamp;
                    let answer = answer.clone();
                    inner.hits += 1;
                    Some(answer)
                }
                None => {
                    inner.misses += 1;
                    None
                }
            }
        };
        // Global counters are bumped outside the cache lock.
        let name = if hit.is_some() {
            "ffmr_cache_hits_total"
        } else {
            "ffmr_cache_misses_total"
        };
        ffmr_obs::global().counter(name, &[]).inc();
        hit
    }

    /// Stores an answer, evicting the least-recently-used entry on
    /// overflow.
    pub fn put(&self, key: CacheKey, answer: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        let evicted = {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let stamp = inner.clock;
            let mut evicted = false;
            if inner.entries.len() >= self.capacity && !inner.entries.contains_key(&key) {
                if let Some(oldest) = inner
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, touched))| *touched)
                    .map(|(k, _)| k.clone())
                {
                    inner.entries.remove(&oldest);
                    inner.evictions += 1;
                    evicted = true;
                }
            }
            inner.entries.insert(key, (answer, stamp));
            evicted
        };
        if evicted {
            ffmr_obs::global()
                .counter("ffmr_cache_evictions_total", &[])
                .inc();
        }
    }

    /// Atomically drops every entry for `dataset` (all epochs). Called
    /// under the same swap that replaces the snapshot, so a cache reader
    /// can never observe a new epoch with old entries still served —
    /// epoch-in-key already guarantees correctness; this reclaims the
    /// memory.
    pub fn invalidate_dataset(&self, dataset: &str) {
        let swept = {
            let mut inner = self.inner.lock();
            let before = inner.entries.len();
            inner.entries.retain(|k, _| k.dataset != dataset);
            let swept = (before - inner.entries.len()) as u64;
            inner.invalidated += swept;
            swept
        };
        if swept > 0 {
            ffmr_obs::global()
                .counter("ffmr_cache_invalidated_total", &[])
                .add(swept);
        }
    }

    /// A snapshot of the observability counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidated: inner.invalidated,
            entries: inner.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dataset: &str, epoch: u64, s: u64, t: u64) -> CacheKey {
        CacheKey::new(dataset, epoch, QueryKind::MaxFlow, vec![s], vec![t])
    }

    fn answer(flow: Capacity) -> CachedAnswer {
        CachedAnswer {
            flow,
            solver: "dinic".into(),
            rounds: 0,
            shuffle_bytes: 0,
            sim_seconds_milli: 0,
            cut_edges: None,
            cut_source_side: None,
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache = FlowCache::new(4);
        let k = key("g", 1, 0, 9);
        assert_eq!(cache.get(&k), None);
        cache.put(k.clone(), answer(3));
        assert_eq!(cache.get(&k).unwrap().flow, 3);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn terminal_sets_canonicalize() {
        let a = CacheKey::new("g", 1, QueryKind::MaxFlow, vec![5, 2, 5], vec![9, 7]);
        let b = CacheKey::new("g", 1, QueryKind::MaxFlow, vec![2, 5], vec![7, 9, 9]);
        assert_eq!(a, b, "order and duplicates must not matter");
        let c = CacheKey::new("g", 1, QueryKind::MinCut, vec![2, 5], vec![7, 9]);
        assert_ne!(a, c, "kind is part of the identity");
    }

    #[test]
    fn epoch_partitions_the_keyspace() {
        let cache = FlowCache::new(4);
        cache.put(key("g", 1, 0, 9), answer(3));
        assert_eq!(cache.get(&key("g", 2, 0, 9)), None, "new epoch, no hit");
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let cache = FlowCache::new(2);
        let (a, b, c) = (key("g", 1, 0, 1), key("g", 1, 0, 2), key("g", 1, 0, 3));
        cache.put(a.clone(), answer(1));
        cache.put(b.clone(), answer(2));
        assert!(cache.get(&a).is_some(), "touch a so b is coldest");
        cache.put(c.clone(), answer(3));
        assert!(cache.get(&b).is_none(), "b evicted");
        assert!(cache.get(&a).is_some() && cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidation_sweeps_only_the_dataset() {
        let cache = FlowCache::new(8);
        cache.put(key("g", 1, 0, 1), answer(1));
        cache.put(key("g", 2, 0, 1), answer(1));
        cache.put(key("h", 1, 0, 1), answer(2));
        cache.invalidate_dataset("g");
        assert_eq!(cache.get(&key("g", 1, 0, 1)), None);
        assert_eq!(cache.get(&key("g", 2, 0, 1)), None);
        assert_eq!(cache.get(&key("h", 1, 0, 1)).unwrap().flow, 2);
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = FlowCache::new(0);
        let k = key("g", 1, 0, 1);
        cache.put(k.clone(), answer(1));
        assert_eq!(cache.get(&k), None);
        assert_eq!(cache.stats().entries, 0);
    }
}
