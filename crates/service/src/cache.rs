//! The flow cache: LRU memoization of answered queries.
//!
//! Max-flow answers are expensive (an FF5 run is many MapReduce rounds)
//! and immutable for a given snapshot, so `ffmrd` memoizes them. A key
//! canonicalizes everything that determines the answer:
//!
//! * dataset name **and snapshot epoch** — a `reload` bumps the epoch,
//!   so every entry for the old graph is unreachable the instant the
//!   swap commits (and is swept eagerly by
//!   [`FlowCache::invalidate_dataset`]);
//! * the query kind (max-flow vs min-cut — a min-cut answer strictly
//!   extends a max-flow answer);
//! * the *resolved, sorted* terminal sets. A plain `s→t` query
//!   canonicalizes to `([s], [t])`; a super-source/sink query (the
//!   paper's Sec. V-A1 `--w` construction) canonicalizes to the sorted
//!   high-degree terminal vertices actually chosen, so two `--w` queries
//!   that select the same terminals share one entry even across
//!   different requested seeds. The query planner also stores its core
//!   solves under the terminals' *anchor* pair, so every query whose
//!   periphery trees resolve to the same anchors shares one core solve.
//!
//! Eviction is least-recently-used in O(1): a slab of entries threaded
//! on an intrusive doubly-linked recency list, plus a key → slot map.
//! The previous implementation scanned all of `capacity` on every
//! overflowing insert, which was noise at daemon-scale capacities
//! (hundreds) but turned every insert into a full sweep at the
//! QPS-tier capacities (100k+) the serving tier configures.

use std::collections::HashMap;

use ffmr_sync::Mutex;
use swgraph::Capacity;

/// What was asked of the solver (part of the cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Maximum-flow value only.
    MaxFlow,
    /// Maximum flow plus the minimum cut certificate.
    MinCut,
}

/// A fully canonicalized query identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dataset name.
    pub dataset: String,
    /// Snapshot epoch the answer was computed against.
    pub epoch: u64,
    /// Max-flow or min-cut.
    pub kind: QueryKind,
    /// Sorted source-side terminal vertices (one entry for plain `s`).
    pub sources: Vec<u64>,
    /// Sorted sink-side terminal vertices (one entry for plain `t`).
    pub sinks: Vec<u64>,
}

impl CacheKey {
    /// Builds a key, sorting the terminal sets into canonical order.
    #[must_use]
    pub fn new(
        dataset: &str,
        epoch: u64,
        kind: QueryKind,
        mut sources: Vec<u64>,
        mut sinks: Vec<u64>,
    ) -> Self {
        sources.sort_unstable();
        sources.dedup();
        sinks.sort_unstable();
        sinks.dedup();
        Self {
            dataset: dataset.to_string(),
            epoch,
            kind,
            sources,
            sinks,
        }
    }
}

/// A memoized solver answer, replayed verbatim on a hit (plus a
/// `cached 1` marker in the response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    /// The max-flow value.
    pub flow: Capacity,
    /// Which solver produced it (`dinic`, `ff5`, …).
    pub solver: String,
    /// How the planner routed it (`full`, `core`, or `direct`).
    pub plan: String,
    /// MapReduce rounds consumed (0 for sequential solvers).
    pub rounds: usize,
    /// Total shuffle bytes across rounds (0 for sequential solvers).
    pub shuffle_bytes: u64,
    /// Total simulated cluster seconds (0 for sequential solvers).
    pub sim_seconds_milli: u64,
    /// Min-cut certificate: crossing-edge count (min-cut queries only).
    pub cut_edges: Option<usize>,
    /// Min-cut certificate: source-side size (min-cut queries only).
    pub cut_source_side: Option<usize>,
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a solver.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries swept by snapshot invalidation.
    pub invalidated: u64,
    /// Current entry count.
    pub entries: usize,
}

/// Slab sentinel: "no slot".
const NIL: u32 = u32::MAX;

/// One resident entry, threaded on the recency list.
#[derive(Debug)]
struct Slot {
    key: CacheKey,
    answer: CachedAnswer,
    /// Toward more-recent (NIL at the head).
    prev: u32,
    /// Toward less-recent (NIL at the tail).
    next: u32,
}

#[derive(Debug)]
struct CacheInner {
    /// Key → slab index of the resident entry.
    map: HashMap<CacheKey, u32>,
    /// Slot storage; `None` entries are on the free list.
    slots: Vec<Option<Slot>>,
    /// Recycled slab indices.
    free: Vec<u32>,
    /// Most recently used slot (NIL when empty).
    head: u32,
    /// Least recently used slot (NIL when empty).
    tail: u32,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidated: u64,
}

impl CacheInner {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidated: 0,
        }
    }

    fn slot(&self, i: u32) -> &Slot {
        self.slots[i as usize].as_ref().expect("live slot")
    }

    fn slot_mut(&mut self, i: u32) -> &mut Slot {
        self.slots[i as usize].as_mut().expect("live slot")
    }

    /// Detaches slot `i` from the recency list (it stays in the slab).
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = self.slot(i);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
    }

    /// Makes slot `i` the most recently used.
    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = self.slot_mut(i);
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slot_mut(old_head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Removes slot `i` entirely: off the list, out of the map, slab
    /// index recycled. Returns its key.
    fn remove(&mut self, i: u32) -> CacheKey {
        self.unlink(i);
        let slot = self.slots[i as usize].take().expect("live slot");
        self.map.remove(&slot.key);
        self.free.push(i);
        slot.key
    }

    /// Allocates a slab index for a new slot.
    fn insert_slot(&mut self, slot: Slot) -> u32 {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(slot);
            i
        } else {
            self.slots.push(Some(slot));
            (self.slots.len() - 1) as u32
        }
    }
}

/// A bounded LRU cache of [`CachedAnswer`]s. Lookup, insert and evict
/// are all O(1).
#[derive(Debug)]
pub struct FlowCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl FlowCache {
    /// A cache holding at most `capacity` answers. Capacity 0 disables
    /// caching entirely (every lookup misses).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheInner::new()),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<CachedAnswer> {
        let hit = {
            let mut inner = self.inner.lock();
            match inner.map.get(key).copied() {
                Some(i) => {
                    inner.unlink(i);
                    inner.push_front(i);
                    inner.hits += 1;
                    Some(inner.slot(i).answer.clone())
                }
                None => {
                    inner.misses += 1;
                    None
                }
            }
        };
        // Global counters are bumped outside the cache lock.
        let name = if hit.is_some() {
            "ffmr_cache_hits_total"
        } else {
            "ffmr_cache_misses_total"
        };
        ffmr_obs::global().counter(name, &[]).inc();
        hit
    }

    /// Stores an answer, evicting the least-recently-used entry on
    /// overflow.
    pub fn put(&self, key: CacheKey, answer: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        let evicted = {
            let mut inner = self.inner.lock();
            if let Some(i) = inner.map.get(&key).copied() {
                // Overwrite in place and refresh recency.
                inner.unlink(i);
                inner.push_front(i);
                inner.slot_mut(i).answer = answer;
                false
            } else {
                let mut evicted = false;
                if inner.map.len() >= self.capacity {
                    let coldest = inner.tail;
                    debug_assert_ne!(coldest, NIL, "non-empty cache has a tail");
                    inner.remove(coldest);
                    inner.evictions += 1;
                    evicted = true;
                }
                let i = inner.insert_slot(Slot {
                    key: key.clone(),
                    answer,
                    prev: NIL,
                    next: NIL,
                });
                inner.push_front(i);
                inner.map.insert(key, i);
                evicted
            }
        };
        if evicted {
            ffmr_obs::global()
                .counter("ffmr_cache_evictions_total", &[])
                .inc();
        }
    }

    /// Atomically drops every entry for `dataset` (all epochs). Called
    /// under the same swap that replaces the snapshot, so a cache reader
    /// can never observe a new epoch with old entries still served —
    /// epoch-in-key already guarantees correctness; this reclaims the
    /// memory. O(entries), unlike the O(1) hot paths.
    pub fn invalidate_dataset(&self, dataset: &str) {
        let swept = {
            let mut inner = self.inner.lock();
            let doomed: Vec<u32> = (0..inner.slots.len() as u32)
                .filter(|&i| {
                    inner.slots[i as usize]
                        .as_ref()
                        .is_some_and(|s| s.key.dataset == dataset)
                })
                .collect();
            for i in &doomed {
                inner.remove(*i);
            }
            let swept = doomed.len() as u64;
            inner.invalidated += swept;
            swept
        };
        if swept > 0 {
            ffmr_obs::global()
                .counter("ffmr_cache_invalidated_total", &[])
                .add(swept);
        }
    }

    /// A snapshot of the observability counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidated: inner.invalidated,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dataset: &str, epoch: u64, s: u64, t: u64) -> CacheKey {
        CacheKey::new(dataset, epoch, QueryKind::MaxFlow, vec![s], vec![t])
    }

    fn answer(flow: Capacity) -> CachedAnswer {
        CachedAnswer {
            flow,
            solver: "dinic".into(),
            plan: "full".into(),
            rounds: 0,
            shuffle_bytes: 0,
            sim_seconds_milli: 0,
            cut_edges: None,
            cut_source_side: None,
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache = FlowCache::new(4);
        let k = key("g", 1, 0, 9);
        assert_eq!(cache.get(&k), None);
        cache.put(k.clone(), answer(3));
        assert_eq!(cache.get(&k).unwrap().flow, 3);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn terminal_sets_canonicalize() {
        let a = CacheKey::new("g", 1, QueryKind::MaxFlow, vec![5, 2, 5], vec![9, 7]);
        let b = CacheKey::new("g", 1, QueryKind::MaxFlow, vec![2, 5], vec![7, 9, 9]);
        assert_eq!(a, b, "order and duplicates must not matter");
        let c = CacheKey::new("g", 1, QueryKind::MinCut, vec![2, 5], vec![7, 9]);
        assert_ne!(a, c, "kind is part of the identity");
    }

    #[test]
    fn epoch_partitions_the_keyspace() {
        let cache = FlowCache::new(4);
        cache.put(key("g", 1, 0, 9), answer(3));
        assert_eq!(cache.get(&key("g", 2, 0, 9)), None, "new epoch, no hit");
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let cache = FlowCache::new(2);
        let (a, b, c) = (key("g", 1, 0, 1), key("g", 1, 0, 2), key("g", 1, 0, 3));
        cache.put(a.clone(), answer(1));
        cache.put(b.clone(), answer(2));
        assert!(cache.get(&a).is_some(), "touch a so b is coldest");
        cache.put(c.clone(), answer(3));
        assert!(cache.get(&b).is_none(), "b evicted");
        assert!(cache.get(&a).is_some() && cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn overwriting_put_refreshes_recency_without_eviction() {
        let cache = FlowCache::new(2);
        let (a, b, c) = (key("g", 1, 0, 1), key("g", 1, 0, 2), key("g", 1, 0, 3));
        cache.put(a.clone(), answer(1));
        cache.put(b.clone(), answer(2));
        // Overwrite a: no eviction, and a becomes the warmest.
        cache.put(a.clone(), answer(10));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().entries, 2);
        cache.put(c.clone(), answer(3));
        assert!(cache.get(&b).is_none(), "b was coldest after the overwrite");
        assert_eq!(cache.get(&a).unwrap().flow, 10);
    }

    #[test]
    fn invalidation_sweeps_only_the_dataset() {
        let cache = FlowCache::new(8);
        cache.put(key("g", 1, 0, 1), answer(1));
        cache.put(key("g", 2, 0, 1), answer(1));
        cache.put(key("h", 1, 0, 1), answer(2));
        cache.invalidate_dataset("g");
        assert_eq!(cache.get(&key("g", 1, 0, 1)), None);
        assert_eq!(cache.get(&key("g", 2, 0, 1)), None);
        assert_eq!(cache.get(&key("h", 1, 0, 1)).unwrap().flow, 2);
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = FlowCache::new(0);
        let k = key("g", 1, 0, 1);
        cache.put(k.clone(), answer(1));
        assert_eq!(cache.get(&k), None);
        assert_eq!(cache.stats().entries, 0);
    }

    /// Replays a seeded op sequence against a naive reference LRU and
    /// demands identical observable behaviour (hits, evict victims).
    #[test]
    fn matches_a_reference_lru_model() {
        struct Model {
            cap: usize,
            // Most-recent-first (key, flow) pairs.
            entries: Vec<(CacheKey, Capacity)>,
        }
        impl Model {
            fn get(&mut self, k: &CacheKey) -> Option<Capacity> {
                let pos = self.entries.iter().position(|(ek, _)| ek == k)?;
                let e = self.entries.remove(pos);
                let flow = e.1;
                self.entries.insert(0, e);
                Some(flow)
            }
            fn put(&mut self, k: CacheKey, flow: Capacity) {
                if let Some(pos) = self.entries.iter().position(|(ek, _)| ek == &k) {
                    self.entries.remove(pos);
                } else if self.entries.len() >= self.cap {
                    self.entries.pop();
                }
                self.entries.insert(0, (k, flow));
            }
        }

        let cache = FlowCache::new(8);
        let mut model = Model {
            cap: 8,
            entries: Vec::new(),
        };
        // SplitMix64-style scramble for a deterministic op stream.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for step in 0..2000u64 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let k = key("g", 1, z % 20, 99);
            if z.is_multiple_of(3) {
                let flow = (z % 1000) as Capacity;
                cache.put(k.clone(), answer(flow));
                model.put(k, flow);
            } else {
                let got = cache.get(&k).map(|a| a.flow);
                assert_eq!(got, model.get(&k), "step {step}: hit/value mismatch");
            }
        }
        assert_eq!(cache.stats().entries, model.entries.len());
    }

    /// The O(1) regression bar: at a QPS-tier capacity, a stream of
    /// inserts must not degrade into per-insert full scans. The old
    /// `min_by_key` eviction took minutes on this workload; the slab
    /// LRU finishes in well under the bound even in debug builds.
    #[test]
    fn qps_tier_capacity_insert_stream_is_fast() {
        let capacity = 50_000;
        let cache = FlowCache::new(capacity);
        let started = std::time::Instant::now();
        for i in 0..150_000u64 {
            cache.put(key("g", 1, i, i + 1), answer(1));
        }
        let elapsed = started.elapsed();
        assert_eq!(cache.stats().entries, capacity);
        assert_eq!(cache.stats().evictions, 100_000);
        assert!(
            elapsed < std::time::Duration::from_secs(30),
            "LRU insert stream took {elapsed:?}; eviction has regressed \
             to a per-insert scan"
        );
    }
}
