//! The `ffmrd` wire protocol: length-prefixed UTF-8 frames over TCP.
//!
//! Every message is one frame: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 text. The payload's first line
//! is the request verb (or response status); each following line is one
//! `key value` field, where the key runs to the first space and the
//! value is the rest of the line.
//!
//! ```text
//! maxflow            |  ok
//! dataset fb1        |  flow 318
//! source 0           |  solver ff5
//! sink 4038          |  rounds 9
//! ```
//!
//! The format is deliberately line-oriented and std-only: it can be
//! debugged with a hex dump and needs no serialization dependency.
//!
//! # Query-response field set
//!
//! Every successful `maxflow`/`mincut` response carries the same
//! serving-metadata fields regardless of which path produced the
//! answer (fresh solve, cache hit, coalesced follower, resumed run):
//!
//! | field           | meaning                                              |
//! |-----------------|------------------------------------------------------|
//! | `dataset`       | dataset name the query resolved against              |
//! | `epoch`         | snapshot epoch that produced the answer              |
//! | `flow`          | max-flow value (clamped for core plans)              |
//! | `solver`        | `periphery`, an in-memory algorithm, or an MR variant|
//! | `plan`          | `direct`, `core`, or `full`                          |
//! | `cached`        | `1` if served from the answer cache                  |
//! | `resumed`       | `1` if an MR run resumed a stashed checkpoint        |
//! | `coalesced`     | `1` if this request followed an identical in-flight one |
//! | `queue_wait_us` | microseconds spent queued behind busy workers        |
//!
//! MR-route extras (`rounds`, `shuffle-bytes`, `sim-seconds-milli`),
//! min-cut certificates (`cut-edges`, `cut-source-side`), and the
//! resolved `sources`/`sinks` lists ride along. A request with an
//! `explain` field additionally receives `profile`: the full
//! `ffmr_obs::QueryProfile` as one JSON line (plan reason, per-stage
//! wall windows, solver internals).

use std::io::{Read, Write};

/// Hard cap on a single frame (1 MiB) — a malformed or hostile length
/// prefix must not trigger an unbounded allocation.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Wire-level failure while reading or writing a frame.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket error (includes EOF mid-frame).
    Io(std::io::Error),
    /// Peer announced a frame larger than [`MAX_FRAME_BYTES`].
    FrameTooLarge(u32),
    /// Frame payload was not valid UTF-8.
    NotUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            WireError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), WireError> {
    let bytes = payload.as_bytes();
    assert!(bytes.len() <= MAX_FRAME_BYTES as usize, "oversized frame");
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, WireError> {
    let mut len_buf = [0u8; 4];
    // A clean close before any length byte is a normal end of session.
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(WireError::Io(e)),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| WireError::NotUtf8)
}

/// A decoded message: a verb/status line plus ordered `key value` fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Request verb (`maxflow`, `stats`, …) or response status (`ok`,
    /// `busy`, `error`).
    pub head: String,
    /// Ordered fields; duplicate keys are allowed and preserved.
    pub fields: Vec<(String, String)>,
}

impl Message {
    /// A message with no fields.
    #[must_use]
    pub fn new(head: impl Into<String>) -> Self {
        Self {
            head: head.into(),
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.push(key, value);
        self
    }

    /// Appends a field in place.
    ///
    /// Keys and values are sanitized in **all** builds: a key containing
    /// a space or newline, or a value containing a newline, would shift
    /// every later field of the encoded frame (the format is
    /// line-oriented with space-delimited keys), so offending characters
    /// are replaced — space/newline in keys become `-`, newlines in
    /// values become spaces. A `debug_assert!` alone would let release
    /// builds emit silently corrupted frames.
    pub fn push(&mut self, key: impl Into<String>, value: impl ToString) {
        self.fields
            .push((sanitize_key(key.into()), sanitize_value(value.to_string())));
    }

    /// First value for `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value for `key`, in order (for repeatable fields).
    pub fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.fields
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Joins every repeated `key` field back into one newline-terminated
    /// text block — the inverse of pushing a multi-line document one
    /// line at a time (how a `stats` response carries the Prometheus
    /// exposition as repeated `prom` fields).
    #[must_use]
    pub fn joined_lines(&self, key: &str) -> String {
        let mut out = String::new();
        for v in self.get_all(key) {
            out.push_str(v);
            out.push('\n');
        }
        out
    }

    /// First value for `key`, parsed.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("field '{key}' has invalid value '{v}'")),
        }
    }

    /// Serializes to a frame payload.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = self.head.clone();
        for (k, v) in &self.fields {
            out.push('\n');
            out.push_str(k);
            out.push(' ');
            out.push_str(v);
        }
        out
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    /// Fails on an empty payload or a field line without a key.
    pub fn decode(payload: &str) -> Result<Self, String> {
        let mut lines = payload.lines();
        let head = lines
            .next()
            .filter(|h| !h.is_empty())
            .ok_or("empty frame")?;
        let mut fields = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            if key.is_empty() {
                return Err(format!("field line without key: '{line}'"));
            }
            fields.push((key.to_string(), value.to_string()));
        }
        Ok(Self {
            head: head.to_string(),
            fields,
        })
    }
}

/// Keys run to the first space and end at the newline; both characters
/// (and `\r`, which `lines()`-based decoding would strip) become `-`.
fn sanitize_key(key: String) -> String {
    if key.contains([' ', '\n', '\r']) {
        key.chars()
            .map(|c| {
                if matches!(c, ' ' | '\n' | '\r') {
                    '-'
                } else {
                    c
                }
            })
            .collect()
    } else {
        key
    }
}

/// Values end at the newline; embedded line breaks become spaces.
fn sanitize_value(value: String) -> String {
    if value.contains(['\n', '\r']) {
        value
            .chars()
            .map(|c| if matches!(c, '\n' | '\r') { ' ' } else { c })
            .collect()
    } else {
        value
    }
}

/// Response status heads.
pub mod status {
    /// The request succeeded; fields carry the answer.
    pub const OK: &str = "ok";
    /// The bounded request queue is full — retry later. Sent instead of
    /// stalling the connection (explicit load shedding).
    pub const BUSY: &str = "busy";
    /// The request failed; the `message` field explains why.
    pub const ERROR: &str = "error";
}

/// Builds an `error` response.
#[must_use]
pub fn error_response(message: impl ToString) -> Message {
    Message::new(status::ERROR).field("message", message.to_string())
}

/// Builds the `busy` load-shedding response.
#[must_use]
pub fn busy_response() -> Message {
    Message::new(status::BUSY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let m = Message::new("maxflow")
            .field("dataset", "fb1")
            .field("source", 0)
            .field("sink", 4038)
            .field("note", "spaces are fine in values");
        let back = Message::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.get("sink"), Some("4038"));
        assert_eq!(back.get_parsed::<u64>("source").unwrap(), Some(0));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn repeated_fields_preserved() {
        let m = Message::new("serve")
            .field("graph", "a=/tmp/a.txt")
            .field("graph", "b=/tmp/b.txt");
        let back = Message::decode(&m.encode()).unwrap();
        let all: Vec<_> = back.get_all("graph").collect();
        assert_eq!(all, vec!["a=/tmp/a.txt", "b=/tmp/b.txt"]);
    }

    #[test]
    fn push_sanitizes_hostile_keys_and_values() {
        // Without sanitization these fields would desync the frame: the
        // embedded newlines would be parsed as extra field lines and the
        // spacey key would leak into its value.
        let mut m = Message::new("ok");
        m.push("bad key\nhere", "multi\nline\r\nvalue");
        m.push("tail", "intact");
        let back = Message::decode(&m.encode()).unwrap();
        assert_eq!(back.fields.len(), 2, "{back:?}");
        assert_eq!(back.get("bad-key-here"), Some("multi line  value"));
        assert_eq!(back.get("tail"), Some("intact"), "later fields survive");
    }

    #[test]
    fn joined_lines_reassembles_repeated_fields() {
        let m = Message::new("ok")
            .field("prom", "# TYPE a counter")
            .field("prom", "a 1")
            .field("other", "x");
        assert_eq!(m.joined_lines("prom"), "# TYPE a counter\na 1\n");
        assert_eq!(m.joined_lines("absent"), "");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode("").is_err());
        assert!(Message::decode("ok\n value-with-leading-space").is_err());
        let bare = Message::decode("ok\nflag").unwrap();
        assert_eq!(bare.get("flag"), Some(""));
    }

    #[test]
    fn parse_errors_name_the_field() {
        let m = Message::decode("maxflow\nsource abc").unwrap();
        let err = m.get_parsed::<u64>("source").unwrap_err();
        assert!(err.contains("source") && err.contains("abc"), "{err}");
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "ok\nflow 7").unwrap();
        write_frame(&mut buf, "busy").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "ok\nflow 7");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "busy");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = buf.as_slice();
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"abc"); // promised 8, delivered 3
        let mut r = buf.as_slice();
        assert!(matches!(read_frame(&mut r), Err(WireError::Io(_))));
    }
}
