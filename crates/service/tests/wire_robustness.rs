//! Wire-robustness property tests: the frame reader and message parser
//! must survive anything a hostile or broken peer can put on the socket
//! — truncated frames, oversized length prefixes, binary garbage,
//! malformed text — returning *typed* errors, never panicking.
//!
//! The corpora are seeded, so a failure reproduces by seed.

use std::io::Cursor;

use ffmr_prng::SplitMix64;
use ffmr_service::{read_frame, write_frame, Message, WireError, MAX_FRAME_BYTES};

/// Builds a raw frame by hand (length prefix + body) without the
/// `write_frame` assertions, so tests can lie about the length.
fn raw_frame(declared_len: u32, body: &[u8]) -> Vec<u8> {
    let mut out = declared_len.to_be_bytes().to_vec();
    out.extend_from_slice(body);
    out
}

#[test]
fn clean_eof_is_none_not_an_error() {
    assert!(read_frame(&mut Cursor::new(Vec::new())).unwrap().is_none());
}

#[test]
fn every_truncation_of_a_valid_frame_is_a_typed_io_error() {
    let mut frame = Vec::new();
    write_frame(&mut frame, "maxflow\nsource 3\nsink 42").unwrap();
    // cut = 0 is clean EOF; every other prefix is a mid-frame cut.
    for cut in 1..frame.len() {
        match read_frame(&mut Cursor::new(frame[..cut].to_vec())) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut {cut}");
            }
            other => panic!("cut {cut}: expected Io(UnexpectedEof), got {other:?}"),
        }
    }
    // The whole frame still reads fine.
    let payload = read_frame(&mut Cursor::new(frame)).unwrap().unwrap();
    assert_eq!(payload, "maxflow\nsource 3\nsink 42");
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    for declared in [
        MAX_FRAME_BYTES + 1,
        MAX_FRAME_BYTES * 2,
        u32::MAX, // a 4 GiB allocation if the cap were ignored
    ] {
        match read_frame(&mut Cursor::new(raw_frame(declared, &[]))) {
            Err(WireError::FrameTooLarge(n)) => assert_eq!(n, declared),
            other => panic!("declared {declared}: expected FrameTooLarge, got {other:?}"),
        }
    }
}

#[test]
fn non_utf8_payload_is_a_typed_error() {
    let body = [0xff, 0xfe, 0x80, 0x00];
    match read_frame(&mut Cursor::new(raw_frame(4, &body))) {
        Err(WireError::NotUtf8) => {}
        other => panic!("expected NotUtf8, got {other:?}"),
    }
}

#[test]
fn seeded_garbage_corpus_never_panics_read_frame() {
    let mut rng = SplitMix64::seed_from_u64(0x57_12e);
    for case in 0..2_000 {
        let len = (rng.next_u64() % 64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Any outcome is fine — Ok(None), Ok(Some), or a typed error —
        // as long as it returns rather than panicking or hanging.
        let _ = read_frame(&mut Cursor::new(bytes.clone()));

        // The same bytes with a *valid* length prefix must also never
        // panic: this drives the UTF-8 and parser paths with garbage.
        let framed = raw_frame(len as u32, &bytes);
        if let Ok(Some(payload)) = read_frame(&mut Cursor::new(framed)) {
            let _ = Message::decode(&payload);
        }
        let _ = case;
    }
}

#[test]
fn seeded_text_corpus_never_panics_message_decode() {
    let mut rng = SplitMix64::seed_from_u64(0xdec0de);
    let alphabet: Vec<char> = ('a'..='f')
        .chain([' ', '\n', '\r', '\t', '\0', '=', '-', '\u{1F600}'])
        .collect();
    for _ in 0..2_000 {
        let len = (rng.next_u64() % 40) as usize;
        let text: String = (0..len)
            .map(|_| alphabet[(rng.next_u64() as usize) % alphabet.len()])
            .collect();
        match Message::decode(&text) {
            Ok(message) => {
                // Decode/encode must converge: each cycle strips at
                // most one trailing `\r` per line (`lines()`
                // semantics), so `len + 2` cycles bound it. A cycle may
                // also *reject* the re-encoding (e.g. a head of exactly
                // "\r" collapses to an empty line) — that is fine, as
                // long as the rejection is a typed error, not a panic.
                let mut current = message;
                let mut settled = false;
                for _ in 0..len + 2 {
                    match Message::decode(&current.encode()) {
                        Ok(next) if next == current => {
                            settled = true;
                            break;
                        }
                        Ok(next) => current = next,
                        Err(e) => {
                            assert!(!e.is_empty(), "errors carry a reason");
                            settled = true;
                            break;
                        }
                    }
                }
                assert!(settled, "decode/encode never reached a fixed point");
            }
            Err(e) => assert!(!e.is_empty(), "errors carry a reason"),
        }
    }
}

#[test]
fn empty_and_headless_payloads_are_errors() {
    assert!(Message::decode("").is_err());
    assert!(Message::decode("\nfield value").is_err(), "empty head line");
    assert!(Message::decode("ok\n value-without-key").is_err());
}

#[test]
fn random_messages_round_trip_through_frame_and_parser() {
    let mut rng = SplitMix64::seed_from_u64(42);
    for _ in 0..200 {
        let mut message = Message::new(format!("verb{}", rng.next_u64() % 10));
        for f in 0..(rng.next_u64() % 6) {
            // Keys/values containing the format's delimiters are
            // sanitized on push, so anything we build here must survive.
            message.push(
                format!("key {f}\nx"),
                format!("value {} with\nnewline\rand cr", rng.next_u64()),
            );
        }
        let mut buf = Vec::new();
        write_frame(&mut buf, &message.encode()).unwrap();
        let payload = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        let decoded = Message::decode(&payload).unwrap();
        assert_eq!(decoded, message);
    }
}

#[test]
fn frame_at_exactly_the_cap_round_trips() {
    let payload = "x".repeat(MAX_FRAME_BYTES as usize);
    let mut buf = Vec::new();
    write_frame(&mut buf, &payload).unwrap();
    let back = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
    assert_eq!(back.len(), payload.len());
}
