//! End-to-end daemon test: a real `ffmrd` server on loopback, driven by
//! concurrent TCP clients over the wire protocol.
//!
//! Covers the full serving story in one scenario: mixed cached/uncached
//! queries, both solver routes (the in-memory parallel push-relabel
//! under the threshold, the FF5 MapReduce driver above it), cache hits
//! on repeated terminal sets, explicit `busy` load shedding when the
//! bounded queue saturates, and a clean shutdown that leaves no thread
//! hanging.

use std::sync::Arc;
use std::time::Duration;

use ffmr_service::engine::{EngineConfig, QueryEngine};
use ffmr_service::server::{serve, ServerConfig};
use ffmr_service::{Client, GraphStore, Message};
use swgraph::{gen, FlowNetwork, VertexId};

fn message(head: &str, dataset: &str, source: u64, sink: u64) -> Message {
    Message::new(head)
        .field("dataset", dataset)
        .field("source", source)
        .field("sink", sink)
}

/// Eight concurrent clients over two datasets — one routed to the
/// parallel push-relabel, one forced onto FF5 — with every answer
/// checked against a local oracle.
#[test]
fn concurrent_mixed_queries_against_live_daemon() {
    // "small" stays under the MR threshold (parallel push-relabel
    // route); "large" sits above it and takes the FF5 MapReduce route.
    let small_n = 500;
    let small = FlowNetwork::from_undirected_unit(small_n, &gen::barabasi_albert(small_n, 3, 11));
    let large_n = 700;
    let large =
        FlowNetwork::from_undirected_unit(large_n, &gen::watts_strogatz(large_n, 4, 0.2, 5));

    let store = Arc::new(GraphStore::new());
    store.insert_network("small", small.clone());
    store.insert_network("large", large.clone());
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&store),
        EngineConfig {
            mr_threshold_vertices: 600,
            ..EngineConfig::default()
        },
    ));
    let handle = serve(
        "127.0.0.1:0",
        engine,
        &ServerConfig {
            workers: 4,
            queue_depth: 16,
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Oracles computed locally, once.
    let dinic = |net: &FlowNetwork, s: u64, t: u64| {
        maxflow::dinic::max_flow(net, VertexId::new(s), VertexId::new(t)).value
    };
    let small_pairs: Vec<(u64, u64)> = vec![(0, 499), (1, 498), (2, 497)];
    let large_pairs: Vec<(u64, u64)> = vec![(0, 699), (1, 698)];

    let mut threads = Vec::new();
    // 6 distinct queries + 2 repeats of the first small pair = 8 clients.
    for (i, &(s, t)) in small_pairs.iter().enumerate() {
        for repeat in 0..if i == 0 { 3 } else { 1 } {
            let expected = dinic(&small, s, t);
            threads.push(std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let r = client.request(&message("maxflow", "small", s, t)).unwrap();
                assert_eq!(r.head, "ok", "repeat {repeat}: {r:?}");
                assert_eq!(r.get("flow"), Some(expected.to_string().as_str()));
                assert_eq!(
                    r.get("solver"),
                    Some("parallel-pr"),
                    "small graph routes to the parallel push-relabel"
                );
                r.get("cached").unwrap() == "1"
            }));
        }
    }
    for &(s, t) in &large_pairs {
        let expected = dinic(&large, s, t);
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.set_timeout(Some(Duration::from_secs(120))).unwrap();
            let r = client.request(&message("maxflow", "large", s, t)).unwrap();
            assert_eq!(r.head, "ok", "{r:?}");
            assert_eq!(r.get("flow"), Some(expected.to_string().as_str()));
            assert_eq!(
                r.get("solver"),
                Some("ff5"),
                "above threshold routes to ff5"
            );
            let rounds: usize = r.get("rounds").unwrap().parse().unwrap();
            assert!(rounds > 0, "MR route must report real rounds");
            r.get("cached").unwrap() == "1"
        }));
    }
    // One more concurrent client exercising a cheap inline verb.
    threads.push(std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let r = client.request(&Message::new("ping")).unwrap();
        assert_eq!(r.head, "ok");
        false
    }));
    assert!(
        threads.len() >= 8,
        "the scenario requires 8+ concurrent clients"
    );

    let cache_hits = threads
        .into_iter()
        .map(|t| t.join().expect("client thread must not panic"))
        .filter(|&hit| hit)
        .count();
    // The (0, 499) pair ran three times; at least one of the repeats (or
    // a racing duplicate) must have been answered from the cache.
    assert!(cache_hits >= 1, "repeated terminal set never hit the cache");

    // Re-asking a settled query is a guaranteed hit.
    let mut client = Client::connect(addr).unwrap();
    let r = client
        .request(&message("maxflow", "small", 0, 499))
        .unwrap();
    assert_eq!(r.get("cached"), Some("1"));

    // Snapshot swap invalidates: same name, different graph, new answer.
    store.insert_network("small", FlowNetwork::from_undirected_unit(500, &[(0, 499)]));
    let r = client
        .request(&message("maxflow", "small", 0, 499))
        .unwrap();
    assert_eq!(
        r.get("cached"),
        Some("0"),
        "epoch bump must fence the cache"
    );
    assert_eq!(r.get("flow"), Some("1"));

    handle.shutdown();
}

/// A saturated bounded queue sheds load with an explicit `busy` reply
/// instead of stalling, and the daemon still shuts down cleanly.
#[test]
fn saturated_queue_sheds_busy_and_shuts_down_clean() {
    let store = Arc::new(GraphStore::new());
    store.insert_network("g", FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 3)]));
    let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
    let handle = serve(
        "127.0.0.1:0",
        engine,
        &ServerConfig {
            workers: 1,
            queue_depth: 1,
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Occupy the single worker with a long diagnostic sleep...
    let occupier = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .request(&Message::new("sleep").field("ms", 1500))
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(300));
    // ...fill the queue's single slot...
    let queued = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .request(&Message::new("sleep").field("ms", 10))
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(300));

    // ...and the next heavy request must be shed immediately.
    let mut client = Client::connect(addr).unwrap();
    let start = std::time::Instant::now();
    let shed = client.request(&message("maxflow", "g", 0, 3)).unwrap();
    assert_eq!(shed.head, "busy", "{shed:?}");
    assert!(
        start.elapsed() < Duration::from_millis(500),
        "busy must be immediate, not queued"
    );

    // Cheap verbs bypass the queue and still answer while saturated.
    let pong = client.request(&Message::new("ping")).unwrap();
    assert_eq!(pong.head, "ok");

    assert_eq!(occupier.join().unwrap().head, "ok");
    assert_eq!(queued.join().unwrap().head, "ok");

    // After the workers drain, the shed query succeeds on retry.
    let retry = client.request(&message("maxflow", "g", 0, 3)).unwrap();
    assert_eq!(retry.head, "ok");
    assert_eq!(retry.get("flow"), Some("1"));

    // Clean shutdown: joins every accept/connection/worker thread. A
    // hang here fails the test via the harness timeout.
    handle.shutdown();
}
