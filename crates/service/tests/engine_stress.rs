//! Concurrency stress: many client threads firing mixed queries at one
//! engine while the snapshot is repeatedly swapped underneath them.
//!
//! The invariant under test is epoch consistency: every response names
//! the epoch it was answered against, and the flow value must be the
//! correct answer *for that epoch's graph* — never a hybrid of two
//! snapshots and never a stale cache entry served across a reload.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ffmr_service::engine::{EngineConfig, QueryEngine};
use ffmr_service::protocol::{status, Message};
use ffmr_service::GraphStore;
use swgraph::FlowNetwork;

const VERTICES: u64 = 8;
const SOURCE: u64 = 0;
const SINK: u64 = 7;
const EPOCHS: u64 = 6;

/// The epoch-`k` graph: `k` disjoint two-edge paths from SOURCE to SINK,
/// so its max flow is exactly `k`. Epoch 1 is a single path (pure
/// periphery, answered directly); later epochs have a 2-core.
fn variant(k: u64) -> FlowNetwork {
    let mut edges = Vec::new();
    for i in 0..k {
        edges.push((SOURCE, 1 + i));
        edges.push((1 + i, SINK));
    }
    FlowNetwork::from_undirected_unit(VERTICES, &edges)
}

#[test]
fn concurrent_queries_survive_snapshot_swaps() {
    let store = Arc::new(GraphStore::new());
    assert_eq!(store.insert_network("g", variant(1)), 1);
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&store),
        EngineConfig {
            cache_capacity: 16, // small enough to evict under load
            worker_threads: Some(2),
            ..EngineConfig::default()
        },
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let checked = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..6)
        .map(|worker: u64| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let checked = Arc::clone(&checked);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let mut q = Message::new(if (worker + i) % 4 == 3 {
                        "mincut"
                    } else {
                        "maxflow"
                    })
                    .field("dataset", "g")
                    .field("source", SOURCE)
                    .field("sink", SINK);
                    match (worker + i) % 4 {
                        1 => q.push("no-cache", 1),
                        2 => q.push("no-core", 1),
                        _ => {}
                    }
                    let r = engine.execute(&q);
                    assert_eq!(r.head, status::OK, "{q:?} → {r:?}");
                    let epoch: u64 = r.get("epoch").unwrap().parse().unwrap();
                    let flow: u64 = r.get("flow").unwrap().parse().unwrap();
                    assert!(
                        (1..=EPOCHS).contains(&epoch),
                        "epoch {epoch} was never swapped in"
                    );
                    // Epoch k's graph has max flow exactly k: any other
                    // value means a stale or hybrid answer leaked.
                    assert_eq!(
                        flow, epoch,
                        "answer {flow} is wrong for epoch {epoch}: {r:?}"
                    );
                    checked.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Swap the snapshot underneath the query storm, pausing briefly so
    // every epoch actually serves some queries.
    for k in 2..=EPOCHS {
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(store.insert_network("g", variant(k)), k);
    }
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker panicked (invariant violated)");
    }
    assert!(
        checked.load(Ordering::Relaxed) > 100,
        "stress test did real work"
    );

    // Cache stats stayed coherent through the churn.
    let stats = engine.cache_stats();
    assert!(stats.entries <= 16, "capacity respected: {stats:?}");
    assert!(stats.hits + stats.misses > 0, "{stats:?}");

    // The final epoch answers deterministically and caches normally.
    let q = Message::new("maxflow")
        .field("dataset", "g")
        .field("source", SOURCE)
        .field("sink", SINK);
    let warm = engine.execute(&q);
    assert_eq!(warm.get("epoch"), Some("6"));
    assert_eq!(warm.get("flow"), Some("6"));
    let hit = engine.execute(&q);
    assert_eq!(hit.get("cached"), Some("1"), "{hit:?}");
    assert_eq!(hit.get("flow"), Some("6"));
}

/// A barrage of identical expensive queries lands while the first is
/// still solving: followers coalesce onto the leader's solve (or hit
/// the cache the leader filled) — every response agrees, and the
/// engine never runs more solves than leaders.
#[test]
fn identical_query_storms_coalesce() {
    let n = 400;
    let net = FlowNetwork::from_undirected_unit(n, &swgraph::gen::barabasi_albert(n, 3, 17));
    let store = Arc::new(GraphStore::new());
    store.insert_network("g", net);
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&store),
        EngineConfig::default(),
    ));

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                engine.execute(
                    &Message::new("maxflow")
                        .field("dataset", "g")
                        .field("source", 0)
                        .field("sink", 399),
                )
            })
        })
        .collect();
    let responses: Vec<Message> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let first_flow = responses[0].get("flow").unwrap();
    let (mut led, mut followed, mut hit) = (0u64, 0u64, 0u64);
    for r in &responses {
        assert_eq!(r.head, status::OK, "{r:?}");
        assert_eq!(r.get("flow"), Some(first_flow), "all answers agree");
        let cached = r.get("cached") == Some("1");
        let coalesced = r.get("coalesced") == Some("1");
        match (cached, coalesced) {
            (true, _) => hit += 1,
            (false, true) => followed += 1,
            (false, false) => led += 1,
        }
    }
    assert!(led >= 1, "someone actually solved");
    // Every response took exactly one of the three paths — nobody fell
    // through to an unaccounted solve.
    assert_eq!(
        led + followed + hit,
        responses.len() as u64,
        "{led} led / {followed} followed / {hit} hit"
    );
    // Cache misses are bounded by one initial probe per thread plus the
    // leaders' anchor-key probes — a follower or hit never misses twice.
    let stats = engine.cache_stats();
    assert!(
        stats.misses <= responses.len() as u64 + led * 2,
        "followers must not fall through to the solver: {led} leaders, {stats:?}"
    );
}

/// A deadline expiring mid-core-solve: the leader and every coalesced
/// follower get the timeout error back (nobody hangs on the inflight
/// slot), the anchor-pair cache is left unpoisoned, and a later
/// sane-deadline query answers correctly via the same core plan.
#[test]
fn timeouts_on_the_core_path_release_followers_and_spare_the_cache() {
    let n = 200u64;
    let mut edges = swgraph::gen::barabasi_albert(n, 3, 7);
    // Pendant chain n+1 — n — 0: queries from the chain take the core
    // plan between anchor 0 and the sink, clamped by the chain's
    // unit bottleneck.
    edges.push((0, n));
    edges.push((n, n + 1));
    let net = FlowNetwork::from_undirected_unit(n + 2, &edges);
    let store = Arc::new(GraphStore::new());
    store.insert_network("g", net);
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&store),
        EngineConfig::default(),
    ));
    let ask = |timeout_ms: u64| {
        Message::new("maxflow")
            .field("dataset", "g")
            .field("source", n + 1)
            .field("sink", 150)
            .field("timeout-ms", timeout_ms)
    };

    // An already-expired deadline dies at the solver's first cancel
    // poll, inside the core solve. Leader and followers all must see
    // the timeout error.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let q = ask(0);
            std::thread::spawn(move || engine.execute(&q))
        })
        .collect();
    for t in threads {
        let r = t.join().expect("no follower may hang or panic");
        assert_eq!(r.head, status::ERROR, "{r:?}");
        assert!(r.get("message").unwrap().contains("timeout"), "{r:?}");
    }

    // The failed solves must not have cached anything — under either
    // the query key or the anchor-pair key.
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 0, "a timed-out solve poisoned the cache");

    // A sane deadline answers via the core plan with the right value...
    let good = engine.execute(&ask(30_000));
    assert_eq!(good.head, status::OK, "{good:?}");
    assert_eq!(good.get("plan"), Some("core"), "{good:?}");
    assert_eq!(good.get("cached"), Some("0"));
    assert_eq!(good.get("flow"), Some("1"), "chain bottleneck clamps to 1");
    // ...and a full-graph solve agrees, so no partial state leaked out
    // of the cancelled run.
    let full = engine.execute(&ask(30_000).field("no-cache", 1).field("no-core", 1));
    assert_eq!(full.head, status::OK, "{full:?}");
    assert_eq!(full.get("flow"), good.get("flow"));
}
