//! Synchronous (bulk-parallel) Push–Relabel in shared memory, after
//! Baumstark/Blelloch/Shun: the active frontier is discharged in
//! deterministic pulses — every worker plans pushes and relabels against
//! the *round-start* state into private per-chunk buffers, and the
//! buffers are applied in frontier order between pulses. The result is
//! bit-identical for any thread count, which is what lets the serving
//! tier adopt it as the default in-memory solver without giving up
//! reproducible answers.
//!
//! Heuristics match the sequential [`crate::push_relabel`] twin: exact
//! heights from a periodic global relabeling (reverse BFS from the sink,
//! then from the source for the excess-return phase — itself run as a
//! chunked parallel BFS) plus gap relabeling between pulses, so the two
//! solvers differ only in scheduling.
//!
//! No shared cell is ever written concurrently: each directed edge is
//! planned only by its unique tail, chunk outputs are private, and the
//! apply phase is sequential — lock-free by construction, with the
//! [`ffmr_sync`] primitives (one `RwLock` over the solver state, a
//! `Mutex`+`Condvar` job board) coordinating the persistent worker pool.
//!
//! # Example
//! ```
//! use swgraph::{FlowNetwork, VertexId};
//! let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
//! let f = maxflow::parallel_push_relabel::max_flow(&net, VertexId::new(0), VertexId::new(3));
//! assert_eq!(f.value, 2);
//! ```

use std::sync::Arc;

use ffmr_sync::{Condvar, Mutex, RwLock};
use swgraph::{Capacity, EdgeId, FlowNetwork, VertexId};

use crate::cancel::{Cancel, Cancelled};
use crate::report::SolveReport;
use crate::residual::FlowResult;

/// Tuning knobs for the parallel solver.
#[derive(Debug, Clone)]
pub struct PrConfig {
    /// Worker threads for the discharge and BFS phases. `1` runs the
    /// identical pulse schedule inline without spawning a pool; any
    /// value produces the same flow (see the module docs).
    pub threads: usize,
    /// Global relabeling runs whenever the work counter (edges scanned
    /// plus relabels) exceeds `factor * (n + m)` since the last one.
    pub global_relabel_factor: f64,
}

impl Default for PrConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            global_relabel_factor: 3.0,
        }
    }
}

/// Counters describing one solved instance.
#[derive(Debug, Clone, Default)]
pub struct PrStats {
    /// Bulk-synchronous discharge pulses executed.
    pub passes: usize,
    /// Global relabelings (including the initial one).
    pub global_relabels: usize,
    /// Individual push operations applied.
    pub pushes: usize,
    /// Individual relabel operations applied (gap lifts not counted).
    pub relabels: usize,
    /// Largest active frontier seen at a pulse boundary.
    pub max_frontier: usize,
    /// Worker threads the run was configured with.
    pub threads: usize,
    /// Times the coordinator polled its [`Cancel`] token (solve entry,
    /// each pulse, each BFS wave) — deterministic for any thread count.
    pub cancel_polls: usize,
}

impl PrStats {
    /// These counters as the cross-solver [`SolveReport`] shape
    /// (pulses map to phases).
    #[must_use]
    pub fn report(&self) -> SolveReport {
        SolveReport {
            phases: self.passes as u64,
            augmenting_paths: 0,
            pushes: self.pushes as u64,
            relabels: self.relabels as u64,
            global_relabels: self.global_relabels as u64,
            cancel_polls: self.cancel_polls as u64,
        }
    }
}

/// A parallel push-relabel run: the flow plus its execution counters.
#[derive(Debug, Clone)]
pub struct PrRun {
    /// The computed maximum flow.
    pub result: FlowResult,
    /// Execution counters (pulses, global relabels, frontier sizes).
    pub stats: PrStats,
}

/// Computes the maximum `s`–`t` flow with the default configuration
/// (all available cores).
#[must_use]
pub fn max_flow(net: &FlowNetwork, s: VertexId, t: VertexId) -> FlowResult {
    max_flow_with(net, s, t, &PrConfig::default()).result
}

/// Like [`max_flow`] but with explicit tuning, returning the execution
/// counters alongside the flow. The flow (value *and* per-edge
/// assignment) is independent of `threads`.
#[must_use]
pub fn max_flow_with(net: &FlowNetwork, s: VertexId, t: VertexId, config: &PrConfig) -> PrRun {
    max_flow_with_cancel(net, s, t, config, &Cancel::never())
        .expect("never-cancel solve cannot fail")
}

/// [`max_flow_with`] plus a cooperative [`Cancel`] token, polled before
/// every pulse and every global-relabel BFS level. Spawns a scoped
/// worker pool per call; the serving tier uses [`max_flow_pooled`] to
/// amortize the spawns away.
pub fn max_flow_with_cancel(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    config: &PrConfig,
    cancel: &Cancel,
) -> Result<PrRun, Cancelled> {
    let n = net.num_vertices();
    if s == t || n == 0 || s.index() >= n || t.index() >= n {
        return Ok(trivial_run(net));
    }
    let threads = config.threads.max(1);
    let state = RwLock::new(State::new(net, s, t));
    let run = if threads == 1 {
        let mut solver = Solver::new(net, s, t, config, threads, &state);
        solver.solve(&mut |state, job| run_job_inline(net, state, job), cancel)
    } else {
        let board = JobBoard::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| worker_loop(net, &state, &board));
            }
            let mut solver = Solver::new(net, s, t, config, threads, &state);
            let run = solver.solve(&mut |_, job| board.execute(job), cancel);
            board.shutdown();
            run
        })
    }?;
    record_metrics(&run.stats);
    Ok(run)
}

/// Runs the identical pulse schedule against a persistent [`SolverPool`]
/// instead of spawning scoped workers: the network and solver state are
/// shared with the pool via `Arc`, so concurrent serving-tier queries
/// reuse one set of threads with no per-query spawn cost. The flow is
/// byte-identical to [`max_flow_with`] for any pool size (the chunk
/// decomposition and apply order do not depend on who computes a chunk).
pub fn max_flow_pooled(
    net: &Arc<FlowNetwork>,
    s: VertexId,
    t: VertexId,
    config: &PrConfig,
    pool: &SolverPool,
    cancel: &Cancel,
) -> Result<PrRun, Cancelled> {
    let n = net.num_vertices();
    if s == t || n == 0 || s.index() >= n || t.index() >= n {
        return Ok(trivial_run(net));
    }
    let state = Arc::new(RwLock::new(State::new(net, s, t)));
    let threads = pool.threads().max(1);
    let mut solver = Solver::new(net, s, t, config, threads, &state);
    let run = if pool.threads() <= 1 {
        solver.solve(&mut |state, job| run_job_inline(net, state, job), cancel)
    } else {
        solver.solve(&mut |_, job| pool.execute(net, &state, job), cancel)
    }?;
    record_metrics(&run.stats);
    Ok(run)
}

fn trivial_run(net: &FlowNetwork) -> PrRun {
    PrRun {
        result: FlowResult {
            value: 0,
            flows: vec![0; net.num_directed_edges()],
        },
        stats: PrStats::default(),
    }
}

/// Frontier slice each discharge/BFS chunk covers. Fixed (and in
/// particular independent of the thread count) so the chunk decomposition
/// — and with it the apply order — never changes with parallelism.
const CHUNK: usize = 128;

/// Work-counter charge for one relabel (edges scanned charge 1 each).
const RELABEL_WORK: u64 = 12;

/// Solver state shared read-only with workers during a job and mutated
/// exclusively by the coordinator between jobs.
struct State {
    /// Per-directed-edge flow, skew-symmetric like [`crate::Residual`].
    flow: Vec<Capacity>,
    excess: Vec<Capacity>,
    height: Vec<u32>,
    /// Active vertices for the current discharge pulse, ascending.
    frontier: Vec<u32>,
    /// Current BFS level during a global relabeling.
    bfs_frontier: Vec<u32>,
    /// BFS distance scratch (`u32::MAX` = unreached).
    dist: Vec<u32>,
}

impl State {
    fn new(net: &FlowNetwork, s: VertexId, t: VertexId) -> Self {
        let n = net.num_vertices();
        let mut st = Self {
            flow: vec![0; net.num_directed_edges()],
            excess: vec![0; n],
            height: vec![0; n],
            frontier: Vec::new(),
            bfs_frontier: Vec::new(),
            dist: vec![u32::MAX; n],
        };
        // Saturate every source edge; terminal excess is untracked (it
        // is never read, and could overflow with several unbounded
        // terminal edges).
        for e in net.out_edges(s) {
            let cap = net.capacity(e);
            if cap > 0 {
                st.flow[e.index()] += cap;
                st.flow[e.reverse().index()] -= cap;
                let v = net.head(e);
                if v != s && v != t {
                    st.excess[v.index()] += cap;
                }
            }
        }
        st
    }

    fn residual(&self, net: &FlowNetwork, e: EdgeId) -> Capacity {
        net.capacity(e) - self.flow[e.index()]
    }
}

/// What one dispatched job asks the pool to compute.
#[derive(Debug, Clone, Copy)]
enum JobKind {
    /// Plan pushes/relabels for `state.frontier` chunks.
    Discharge,
    /// Expand `state.bfs_frontier` one level over reverse residual arcs.
    BfsExpand,
}

/// One parallel job: `chunks` slices of the relevant frontier.
#[derive(Debug, Clone, Copy)]
struct Job {
    kind: JobKind,
    chunks: usize,
}

/// Private output of one chunk, applied sequentially in chunk order.
#[derive(Debug, Default)]
struct ChunkOut {
    /// Planned pushes `(edge, amount)`; each edge appears at most once
    /// across all chunks because only its tail plans it.
    pushes: Vec<(EdgeId, Capacity)>,
    /// Planned relabels `(vertex, round-start height, new height)`.
    relabels: Vec<(u32, u32, u32)>,
    /// Edges scanned (the global-relabel trigger currency).
    work: u64,
    /// BFS: vertices adjacent to this chunk's slice (pre-dedup).
    candidates: Vec<u32>,
}

/// Shared job board coordinating the persistent worker pool: the
/// coordinator posts a [`Job`], workers claim chunk indices until they
/// run out, and the last finished chunk wakes the coordinator.
struct JobBoard {
    slot: Mutex<BoardSlot>,
    /// Workers wait here for a new job (or shutdown).
    work_ready: Condvar,
    /// The coordinator waits here for the last chunk of the job.
    job_done: Condvar,
}

#[derive(Default)]
struct BoardSlot {
    job: Option<Job>,
    next_chunk: usize,
    remaining: usize,
    outputs: Vec<Option<ChunkOut>>,
    shutdown: bool,
}

impl JobBoard {
    fn new() -> Self {
        Self {
            slot: Mutex::new(BoardSlot::default()),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
        }
    }

    /// Posts `job`, blocks until every chunk is computed, and returns
    /// the outputs in chunk order.
    fn execute(&self, job: Job) -> Vec<ChunkOut> {
        if job.chunks == 0 {
            return Vec::new();
        }
        let mut slot = self.slot.lock();
        debug_assert!(slot.job.is_none(), "one job in flight at a time");
        slot.job = Some(job);
        slot.next_chunk = 0;
        slot.remaining = job.chunks;
        slot.outputs = (0..job.chunks).map(|_| None).collect();
        self.work_ready.notify_all();
        while slot.remaining > 0 {
            self.job_done.wait(&mut slot);
        }
        slot.job = None;
        let outputs = std::mem::take(&mut slot.outputs);
        outputs
            .into_iter()
            .map(|o| o.expect("every chunk produced output"))
            .collect()
    }

    fn shutdown(&self) {
        self.slot.lock().shutdown = true;
        self.work_ready.notify_all();
    }
}

/// A persistent worker pool for [`max_flow_pooled`]: threads are spawned
/// once and shared across every query the serving tier admits, instead
/// of the spawn-per-solve model of [`max_flow_with`].
///
/// One job occupies the board at a time; concurrent coordinators queue on
/// an internal condvar, which serializes the *compute* phases of
/// concurrent solves while letting their setup/apply phases overlap —
/// the right trade on the bulk-synchronous schedule, where a pulse wants
/// every core anyway. Jobs carry `Arc` handles to their network and
/// state, so the pool never borrows from a coordinator's stack and the
/// crate stays `forbid(unsafe_code)`.
pub struct SolverPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct PoolShared {
    slot: Mutex<PoolSlot>,
    /// Workers wait here for a new job (or shutdown).
    work_ready: Condvar,
    /// The owning coordinator waits here for its last chunk.
    job_done: Condvar,
    /// Other coordinators wait here for the board to free up.
    slot_free: Condvar,
}

#[derive(Default)]
struct PoolSlot {
    job: Option<PoolJob>,
    shutdown: bool,
}

/// A posted job plus the owned handles workers need to compute it.
struct PoolJob {
    net: Arc<FlowNetwork>,
    state: Arc<RwLock<State>>,
    job: Job,
    next_chunk: usize,
    remaining: usize,
    outputs: Vec<Option<ChunkOut>>,
}

impl SolverPool {
    /// Spawns a pool of `threads` workers. With `threads <= 1` no
    /// threads are spawned and [`max_flow_pooled`] runs chunks inline.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(PoolSlot::default()),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            slot_free: Condvar::new(),
        });
        let handles = if threads <= 1 {
            Vec::new()
        } else {
            (0..threads)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || pool_worker(&shared))
                })
                .collect()
        };
        Self { shared, handles }
    }

    /// The worker count the pool was built with (0 or 1 means inline).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.handles.len().max(1)
    }

    /// Posts `job`, blocks until every chunk is computed, and returns
    /// the outputs in chunk order. Waits for the board first when
    /// another coordinator's job is in flight.
    fn execute(
        &self,
        net: &Arc<FlowNetwork>,
        state: &Arc<RwLock<State>>,
        job: Job,
    ) -> Vec<ChunkOut> {
        if job.chunks == 0 {
            return Vec::new();
        }
        let shared = &*self.shared;
        let mut slot = shared.slot.lock();
        while slot.job.is_some() {
            shared.slot_free.wait(&mut slot);
        }
        slot.job = Some(PoolJob {
            net: Arc::clone(net),
            state: Arc::clone(state),
            job,
            next_chunk: 0,
            remaining: job.chunks,
            outputs: (0..job.chunks).map(|_| None).collect(),
        });
        shared.work_ready.notify_all();
        // Only this coordinator can clear the slot, so the job observed
        // here is always ours.
        while slot.job.as_ref().is_some_and(|pj| pj.remaining > 0) {
            shared.job_done.wait(&mut slot);
        }
        let done = slot.job.take().expect("job slot owned by this coordinator");
        shared.slot_free.notify_one();
        done.outputs
            .into_iter()
            .map(|o| o.expect("every chunk produced output"))
            .collect()
    }
}

impl Drop for SolverPool {
    fn drop(&mut self) {
        self.shared.slot.lock().shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for SolverPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverPool")
            .field("threads", &self.threads())
            .finish()
    }
}

/// Body of one persistent pool worker: like [`worker_loop`] but claims
/// the job's `Arc` handles instead of borrowing a coordinator's stack.
/// A claimed chunk pins its job on the board (the coordinator cannot
/// observe `remaining == 0` until every claim is deposited), so the
/// deposit below always finds the job it claimed from.
fn pool_worker(shared: &PoolShared) {
    loop {
        let (net, state, job, index) = {
            let mut slot = shared.slot.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if let Some(pj) = slot.job.as_mut() {
                    if pj.next_chunk < pj.job.chunks {
                        let index = pj.next_chunk;
                        pj.next_chunk += 1;
                        break (Arc::clone(&pj.net), Arc::clone(&pj.state), pj.job, index);
                    }
                }
                shared.work_ready.wait(&mut slot);
            }
        };
        let out = {
            let st = state.read();
            compute_chunk(&net, &st, job, index)
        };
        let mut slot = shared.slot.lock();
        let pj = slot.job.as_mut().expect("claimed chunk pins its job");
        pj.outputs[index] = Some(out);
        pj.remaining -= 1;
        if pj.remaining == 0 {
            shared.job_done.notify_all();
        }
    }
}

/// Body of one pool worker: claim a chunk, compute it against a read
/// lock on the state, deposit the output, repeat; park between jobs.
fn worker_loop(net: &FlowNetwork, state: &RwLock<State>, board: &JobBoard) {
    loop {
        let (job, index) = {
            let mut slot = board.slot.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if let Some(job) = slot.job {
                    if slot.next_chunk < job.chunks {
                        let index = slot.next_chunk;
                        slot.next_chunk += 1;
                        break (job, index);
                    }
                }
                board.work_ready.wait(&mut slot);
            }
        };
        let out = {
            let st = state.read();
            compute_chunk(net, &st, job, index)
        };
        let mut slot = board.slot.lock();
        slot.outputs[index] = Some(out);
        slot.remaining -= 1;
        if slot.remaining == 0 {
            board.job_done.notify_all();
        }
    }
}

/// Single-threaded executor: computes every chunk inline, in order.
fn run_job_inline(net: &FlowNetwork, state: &RwLock<State>, job: Job) -> Vec<ChunkOut> {
    let st = state.read();
    (0..job.chunks)
        .map(|i| compute_chunk(net, &st, job, i))
        .collect()
}

fn compute_chunk(net: &FlowNetwork, st: &State, job: Job, index: usize) -> ChunkOut {
    let mut out = ChunkOut::default();
    match job.kind {
        JobKind::Discharge => {
            let lo = index * CHUNK;
            let hi = (lo + CHUNK).min(st.frontier.len());
            for &u in &st.frontier[lo..hi] {
                plan_discharge(net, st, u, &mut out);
            }
        }
        JobKind::BfsExpand => {
            let lo = index * CHUNK;
            let hi = (lo + CHUNK).min(st.bfs_frontier.len());
            for &w in &st.bfs_frontier[lo..hi] {
                // Reverse residual arcs into `w`: out-edge `e` of `w`
                // pairs with `e.reverse()`, the arc `head(e) → w`.
                for e in net.out_edges(VertexId::new(u64::from(w))) {
                    out.work += 1;
                    if st.residual(net, e.reverse()) > 0 {
                        let x = net.head(e);
                        if st.dist[x.index()] == u32::MAX {
                            out.candidates.push(x.index() as u32);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Plans one active vertex's pulse against the round-start state:
/// saturating pushes down every admissible arc while excess lasts, and
/// a relabel proposal if excess remains. Writes only into `out`.
fn plan_discharge(net: &FlowNetwork, st: &State, u: u32, out: &mut ChunkOut) {
    let ui = u as usize;
    let mut remaining = st.excess[ui];
    debug_assert!(
        remaining > 0,
        "frontier holds only positive-excess vertices"
    );
    let hu = st.height[ui];
    let mut min_h = u32::MAX;
    for e in net.out_edges(VertexId::new(u64::from(u))) {
        out.work += 1;
        let rc = st.residual(net, e);
        if rc <= 0 {
            continue;
        }
        let hv = st.height[net.head(e).index()];
        if hu == hv + 1 {
            let amount = rc.min(remaining);
            remaining -= amount;
            out.pushes.push((e, amount));
            if remaining == 0 {
                // All excess placed: no relabel, and the residual min
                // is irrelevant — stop scanning.
                return;
            }
        } else {
            min_h = min_h.min(hv);
        }
    }
    // Excess remains, so every admissible arc above was saturated; the
    // surviving residual arcs all point at `min_h >= hu`, making the
    // proposal a strict increase.
    if min_h != u32::MAX {
        out.relabels.push((u, hu, min_h.saturating_add(1)));
    }
}

/// The pulse-loop coordinator. Owns the bookkeeping the apply phase
/// needs (height counts for the gap heuristic, scratch bitmaps) and
/// drives jobs through an executor closure — the pool or the inline
/// runner — so the schedule is one piece of code for any thread count.
struct Solver<'a> {
    net: &'a FlowNetwork,
    s: VertexId,
    t: VertexId,
    n: usize,
    state: &'a RwLock<State>,
    /// Vertices per height, for the gap heuristic.
    height_count: Vec<usize>,
    /// Scratch: vertex received a push in the pulse being applied.
    received: Vec<bool>,
    /// Scratch: vertex already queued for the next frontier.
    queued: Vec<bool>,
    /// Work since the last global relabeling.
    work_since_relabel: u64,
    /// Work threshold that triggers the next global relabeling.
    relabel_threshold: u64,
    stats: PrStats,
}

type Executor<'e> = dyn FnMut(&RwLock<State>, Job) -> Vec<ChunkOut> + 'e;

impl<'a> Solver<'a> {
    fn new(
        net: &'a FlowNetwork,
        s: VertexId,
        t: VertexId,
        config: &PrConfig,
        threads: usize,
        state: &'a RwLock<State>,
    ) -> Self {
        let n = net.num_vertices();
        let m = net.num_directed_edges();
        let budget = (config.global_relabel_factor * (n + m) as f64).max(1.0);
        Self {
            net,
            s,
            t,
            n,
            state,
            height_count: vec![0; 2 * n + 1],
            received: vec![false; n],
            queued: vec![false; n],
            work_since_relabel: 0,
            relabel_threshold: budget as u64,
            stats: PrStats {
                threads,
                ..PrStats::default()
            },
        }
    }

    fn solve(&mut self, run: &mut Executor<'_>, cancel: &Cancel) -> Result<PrRun, Cancelled> {
        self.stats.cancel_polls += 1;
        cancel.check()?;
        self.global_relabel(run, cancel)?;
        self.rebuild_frontier();
        loop {
            self.stats.cancel_polls += 1;
            cancel.check()?;
            let frontier_len = self.state.read().frontier.len();
            if frontier_len == 0 {
                break;
            }
            self.stats.max_frontier = self.stats.max_frontier.max(frontier_len);
            ffmr_obs::global()
                .histogram("ffmr_pr_frontier_size", &[])
                .record(frontier_len as u64);
            if self.work_since_relabel >= self.relabel_threshold {
                self.global_relabel(run, cancel)?;
                self.refilter_frontier();
                if self.state.read().frontier.is_empty() {
                    break;
                }
            }
            self.pulse(run);
            self.stats.passes += 1;
        }
        let st = self.state.read();
        let value = self.net.out_edges(self.s).map(|e| st.flow[e.index()]).sum();
        Ok(PrRun {
            result: FlowResult {
                value,
                flows: st.flow.clone(),
            },
            stats: self.stats.clone(),
        })
    }

    /// One bulk-synchronous pulse: parallel planning over the frontier,
    /// then the sequential apply (pushes, then relabels + gap lifts),
    /// then the next frontier.
    fn pulse(&mut self, run: &mut Executor<'_>) {
        let started = std::time::Instant::now();
        let chunks = {
            let st = self.state.read();
            st.frontier.len().div_ceil(CHUNK)
        };
        let outputs = run(
            self.state,
            Job {
                kind: JobKind::Discharge,
                chunks,
            },
        );
        self.apply(&outputs);
        ffmr_obs::global()
            .histogram("ffmr_pr_pass_wall_us", &[])
            .record_duration(started.elapsed());
    }

    /// Applies one pulse's buffered outputs in chunk order. Pushes land
    /// first (each planned against round-start residuals by its unique
    /// tail, so no arc over-subscribes); relabels follow, clamped to
    /// `round-start + 2` for push receivers — the newly created reverse
    /// arc back to a pusher at `h+1` caps how far the receiver may rise
    /// this pulse — and skipped entirely if a gap lift got there first.
    fn apply(&mut self, outputs: &[ChunkOut]) {
        let mut st = self.state.write();
        let st = &mut *st;
        let (si, ti) = (self.s.index(), self.t.index());
        let mut receivers: Vec<u32> = Vec::new();
        for out in outputs {
            self.work_since_relabel += out.work;
            for &(e, amount) in &out.pushes {
                debug_assert!(amount <= self.net.capacity(e) - st.flow[e.index()]);
                st.flow[e.index()] += amount;
                st.flow[e.reverse().index()] -= amount;
                let u = self.net.tail(e).index();
                let v = self.net.head(e).index();
                st.excess[u] -= amount;
                debug_assert!(st.excess[u] >= 0);
                if v != si && v != ti {
                    st.excess[v] += amount;
                    if !self.received[v] {
                        self.received[v] = true;
                        receivers.push(v as u32);
                    }
                }
                self.stats.pushes += 1;
            }
        }
        let cap = (2 * self.n) as u32;
        for out in outputs {
            for &(u, old, proposal) in &out.relabels {
                let ui = u as usize;
                if st.height[ui] != old {
                    // A gap lift in this same apply already raised the
                    // vertex; the stale proposal no longer applies.
                    continue;
                }
                let mut new = proposal.min(cap);
                if self.received[ui] {
                    new = new.min(old + 2);
                }
                if new <= old {
                    continue;
                }
                self.height_count[old as usize] -= 1;
                self.height_count[new as usize] += 1;
                st.height[ui] = new;
                self.stats.relabels += 1;
                self.work_since_relabel += RELABEL_WORK;
                if self.height_count[old as usize] == 0 && (old as usize) < self.n {
                    gap_lift(st, &mut self.height_count, self.n, old, si);
                }
            }
        }
        // Next frontier: pulse survivors plus push receivers, dedup'd
        // and sorted so the chunk decomposition stays canonical.
        let old_frontier = std::mem::take(&mut st.frontier);
        let mut next: Vec<u32> = Vec::with_capacity(old_frontier.len() + receivers.len());
        for &u in old_frontier.iter().chain(receivers.iter()) {
            let ui = u as usize;
            if !self.queued[ui] && st.excess[ui] > 0 && st.height[ui] < cap {
                self.queued[ui] = true;
                next.push(u);
            }
        }
        next.sort_unstable();
        for &u in &next {
            self.queued[u as usize] = false;
        }
        for &v in &receivers {
            self.received[v as usize] = false;
        }
        st.frontier = next;
    }

    /// Exact heights by two chunked reverse BFS waves: distance to `t`
    /// over residual arcs for the sink-reaching side, then `n +`
    /// distance to `s` for everyone else (the excess-return phase);
    /// unreached by both parks at `2n`. `s` stays pinned at `n`, `t` at
    /// `0`. Labels only ever increase (heights are valid lower bounds
    /// on the exact distances), so the relabel discipline is preserved.
    fn global_relabel(&mut self, run: &mut Executor<'_>, cancel: &Cancel) -> Result<(), Cancelled> {
        let n = self.n;
        let (si, ti) = (self.s.index(), self.t.index());
        let dist_t = self.reverse_bfs(run, self.t, si, cancel)?;
        let dist_s = self.reverse_bfs(run, self.s, ti, cancel)?;
        let mut st = self.state.write();
        self.height_count.iter_mut().for_each(|c| *c = 0);
        for v in 0..n {
            let h = if v == si {
                n as u32
            } else if v == ti {
                0
            } else if dist_t[v] != u32::MAX {
                dist_t[v]
            } else if dist_s[v] != u32::MAX {
                n as u32 + dist_s[v]
            } else {
                (2 * n) as u32
            };
            debug_assert!(h >= st.height[v], "global relabeling never lowers");
            st.height[v] = h;
            self.height_count[h as usize] += 1;
        }
        self.work_since_relabel = 0;
        self.stats.global_relabels += 1;
        ffmr_obs::global()
            .counter("ffmr_pr_global_relabels_total", &[])
            .inc();
        Ok(())
    }

    /// Level-synchronous reverse BFS from `root` over residual arcs
    /// (`x` joins level `k+1` when the arc `x → w` has residual capacity
    /// for some level-`k` vertex `w`), chunked through the executor.
    /// `skip` (the opposite terminal) is never entered.
    fn reverse_bfs(
        &mut self,
        run: &mut Executor<'_>,
        root: VertexId,
        skip: usize,
        cancel: &Cancel,
    ) -> Result<Vec<u32>, Cancelled> {
        {
            let mut st = self.state.write();
            st.dist.iter_mut().for_each(|d| *d = u32::MAX);
            st.dist[root.index()] = 0;
            st.bfs_frontier.clear();
            st.bfs_frontier.push(root.index() as u32);
        }
        let mut level = 0u32;
        loop {
            self.stats.cancel_polls += 1;
            cancel.check()?;
            let chunks = {
                let st = self.state.read();
                st.bfs_frontier.len().div_ceil(CHUNK)
            };
            if chunks == 0 {
                break;
            }
            let outputs = run(
                self.state,
                Job {
                    kind: JobKind::BfsExpand,
                    chunks,
                },
            );
            level += 1;
            let mut st = self.state.write();
            st.bfs_frontier.clear();
            let st = &mut *st;
            for out in &outputs {
                for &x in &out.candidates {
                    let xi = x as usize;
                    if xi != skip && st.dist[xi] == u32::MAX {
                        st.dist[xi] = level;
                        st.bfs_frontier.push(x);
                    }
                }
            }
        }
        Ok(self.state.read().dist.clone())
    }

    /// Initial frontier: every positive-excess non-terminal.
    fn rebuild_frontier(&mut self) {
        let mut st = self.state.write();
        let cap = (2 * self.n) as u32;
        let (si, ti) = (self.s.index(), self.t.index());
        let st = &mut *st;
        let (excess, height) = (&st.excess, &st.height);
        let next: Vec<u32> = (0..self.n)
            .filter(|&v| v != si && v != ti && excess[v] > 0 && height[v] < cap)
            .map(|v| v as u32)
            .collect();
        st.frontier = next;
    }

    /// Drops frontier entries a global relabeling pushed to `2n`.
    fn refilter_frontier(&mut self) {
        let mut st = self.state.write();
        let cap = (2 * self.n) as u32;
        let st = &mut *st;
        let height = &st.height;
        st.frontier.retain(|&u| height[u as usize] < cap);
    }
}

/// The gap heuristic: `old` just became unoccupied below `n`, so no
/// vertex strictly above it (and below `n`) can reach the sink any
/// more — lift them all past `n` in one sweep. Validity is preserved
/// because any residual arc out of a lifted vertex points at another
/// vertex above the gap (itself lifted or already at `>= n`).
fn gap_lift(st: &mut State, height_count: &mut [usize], n: usize, old: u32, s_index: usize) {
    for (w, h) in st.height.iter_mut().enumerate() {
        if *h > old && (*h as usize) < n && w != s_index {
            height_count[*h as usize] -= 1;
            *h = (n + 1) as u32;
            height_count[n + 1] += 1;
        }
    }
}

/// Folds one run into the process-wide registry (`ffmr stats` /
/// `ffmr report` surface these).
fn record_metrics(stats: &PrStats) {
    let m = ffmr_obs::global();
    m.counter("ffmr_pr_discharge_passes_total", &[])
        .add(stats.passes as u64);
    m.counter("ffmr_pr_pushes_total", &[])
        .add(stats.pushes as u64);
    m.counter("ffmr_pr_relabels_total", &[])
        .add(stats.relabels as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_flow;
    use swgraph::gen;
    use swgraph::FlowNetworkBuilder;

    fn config(threads: usize) -> PrConfig {
        PrConfig {
            threads,
            ..PrConfig::default()
        }
    }

    #[test]
    fn clrs_network_value() {
        let mut b = FlowNetworkBuilder::new(6);
        b.add_edge(0, 1, 16);
        b.add_edge(0, 2, 13);
        b.add_edge(1, 2, 10);
        b.add_edge(2, 1, 4);
        b.add_edge(1, 3, 12);
        b.add_edge(3, 2, 9);
        b.add_edge(2, 4, 14);
        b.add_edge(4, 3, 7);
        b.add_edge(3, 5, 20);
        b.add_edge(4, 5, 4);
        let net = b.build();
        for threads in [1, 2, 8] {
            let run = max_flow_with(&net, VertexId::new(0), VertexId::new(5), &config(threads));
            assert_eq!(run.result.value, 23, "threads={threads}");
            check_flow(&net, VertexId::new(0), VertexId::new(5), &run.result).unwrap();
        }
    }

    #[test]
    fn agrees_with_dinic_on_random_graphs() {
        for seed in 0..15 {
            let edges = gen::erdos_renyi(30, 90, seed);
            let net = FlowNetwork::from_undirected_unit(30, &edges);
            let s = VertexId::new(0);
            let t = VertexId::new(29);
            let f = max_flow(&net, s, t);
            let d = crate::dinic::max_flow(&net, s, t);
            assert_eq!(f.value, d.value, "seed {seed}");
            check_flow(&net, s, t, &f).unwrap();
        }
    }

    #[test]
    fn flow_assignment_is_thread_count_invariant() {
        let edges = gen::barabasi_albert(300, 3, 9);
        let net = FlowNetwork::from_undirected_unit(300, &edges);
        let s = VertexId::new(0);
        let t = VertexId::new(299);
        let reference = max_flow_with(&net, s, t, &config(1));
        check_flow(&net, s, t, &reference.result).unwrap();
        for threads in [2, 3, 8] {
            let run = max_flow_with(&net, s, t, &config(threads));
            assert_eq!(
                run.result, reference.result,
                "threads={threads}: full per-edge assignment must match"
            );
            assert_eq!(run.stats.passes, reference.stats.passes);
            assert_eq!(run.stats.global_relabels, reference.stats.global_relabels);
        }
    }

    #[test]
    fn stats_reflect_the_run() {
        let edges = gen::watts_strogatz(200, 4, 0.2, 3);
        let net = FlowNetwork::from_undirected_unit(200, &edges);
        let run = max_flow_with(&net, VertexId::new(0), VertexId::new(199), &config(2));
        assert!(run.result.value > 0);
        assert!(run.stats.passes > 0);
        assert!(run.stats.global_relabels >= 1, "initial relabel counted");
        assert!(run.stats.max_frontier >= 1);
        assert_eq!(run.stats.threads, 2);
    }

    #[test]
    fn degenerate_cases() {
        let net = FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
        assert_eq!(max_flow(&net, VertexId::new(0), VertexId::new(0)).value, 0);
        assert_eq!(max_flow(&net, VertexId::new(7), VertexId::new(1)).value, 0);
        assert_eq!(max_flow(&net, VertexId::new(0), VertexId::new(9)).value, 0);
    }

    #[test]
    fn disconnected_terminals_yield_zero() {
        // Two components: s in one, t in the other.
        let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (2, 3)]);
        let run = max_flow_with(&net, VertexId::new(0), VertexId::new(3), &config(2));
        assert_eq!(run.result.value, 0);
        check_flow(&net, VertexId::new(0), VertexId::new(3), &run.result).unwrap();
    }

    #[test]
    fn pooled_solve_matches_scoped_and_inline() {
        let edges = gen::barabasi_albert(300, 3, 9);
        let net = Arc::new(FlowNetwork::from_undirected_unit(300, &edges));
        let s = VertexId::new(0);
        let t = VertexId::new(299);
        let reference = max_flow_with(&net, s, t, &config(1));
        for pool_threads in [1, 2, 4] {
            let pool = SolverPool::new(pool_threads);
            let run = max_flow_pooled(&net, s, t, &config(pool_threads), &pool, &Cancel::never())
                .expect("never-cancel solve cannot fail");
            assert_eq!(
                run.result, reference.result,
                "pool_threads={pool_threads}: per-edge assignment must match scoped/inline"
            );
            assert_eq!(run.stats.passes, reference.stats.passes);
        }
    }

    #[test]
    fn pool_is_reusable_across_solves_and_graphs() {
        let pool = SolverPool::new(2);
        for seed in 0..4 {
            let edges = gen::erdos_renyi(40, 120, seed);
            let net = Arc::new(FlowNetwork::from_undirected_unit(40, &edges));
            let s = VertexId::new(0);
            let t = VertexId::new(39);
            let pooled = max_flow_pooled(&net, s, t, &config(2), &pool, &Cancel::never()).unwrap();
            let d = crate::dinic::max_flow(&net, s, t);
            assert_eq!(pooled.result.value, d.value, "seed {seed}");
            check_flow(&net, s, t, &pooled.result).unwrap();
        }
    }

    #[test]
    fn expired_deadline_cancels_scoped_and_pooled() {
        let edges = gen::barabasi_albert(200, 3, 5);
        let net = Arc::new(FlowNetwork::from_undirected_unit(200, &edges));
        let s = VertexId::new(0);
        let t = VertexId::new(199);
        let expired = Cancel::after(std::time::Duration::from_secs(0));
        assert!(matches!(
            max_flow_with_cancel(&net, s, t, &config(2), &expired),
            Err(Cancelled)
        ));
        let pool = SolverPool::new(2);
        assert!(matches!(
            max_flow_pooled(&net, s, t, &config(2), &pool, &expired),
            Err(Cancelled)
        ));
    }

    #[test]
    fn directed_asymmetric_capacities() {
        let mut b = FlowNetworkBuilder::new(4);
        b.add_edge(0, 1, 7);
        b.add_edge(1, 2, 3);
        b.add_edge(1, 3, 5);
        b.add_edge(2, 3, 9);
        let net = b.build();
        let f = max_flow(&net, VertexId::new(0), VertexId::new(3));
        assert_eq!(f.value, 7);
        check_flow(&net, VertexId::new(0), VertexId::new(3), &f).unwrap();
    }
}
