//! Cooperative cancellation for the in-memory solvers.
//!
//! The serving tier hands every query a deadline; MapReduce queries have
//! long been cancellable through the round watchdog, but the sequential
//! and parallel-PR solvers used to run to completion no matter what. A
//! [`Cancel`] token closes that gap: solvers poll it at their natural
//! progress boundaries (augmenting path, discharge batch, pulse) and bail
//! out with [`Cancelled`] instead of pinning a pool thread.
//!
//! Polling [`Cancel::never`] compiles down to two branch-not-taken checks,
//! so the always-available `*_cancellable` entry points cost nothing on
//! the common path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cancellation token combining an optional wall-clock deadline with an
/// optional externally-settable flag.
#[derive(Debug, Clone, Default)]
pub struct Cancel {
    deadline: Option<Instant>,
    flag: Option<Arc<AtomicBool>>,
}

impl Cancel {
    /// A token that never fires — solvers run to completion.
    #[must_use]
    pub fn never() -> Self {
        Self::default()
    }

    /// Cancels once the wall clock passes `deadline`.
    #[must_use]
    pub fn at(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            flag: None,
        }
    }

    /// Cancels `timeout` from now.
    #[must_use]
    pub fn after(timeout: Duration) -> Self {
        Self::at(Instant::now() + timeout)
    }

    /// Cancels when `flag` becomes `true` (e.g. from a watchdog thread).
    #[must_use]
    pub fn with_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.flag = Some(flag);
        self
    }

    /// True once the deadline has passed or the flag has been raised.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// Returns `Err(Cancelled)` when the token has fired.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// The error a cancellable solver returns when its [`Cancel`] token fires
/// mid-run. Partial flow state is discarded — the caller retries or
/// reports a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("solver cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_does_not_fire() {
        let c = Cancel::never();
        assert!(!c.is_cancelled());
        assert!(c.check().is_ok());
    }

    #[test]
    fn expired_deadline_fires() {
        let c = Cancel::after(Duration::from_secs(0));
        assert!(c.is_cancelled());
        assert_eq!(c.check(), Err(Cancelled));
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let c = Cancel::after(Duration::from_secs(3600));
        assert!(!c.is_cancelled());
    }

    #[test]
    fn flag_fires_when_raised() {
        let flag = Arc::new(AtomicBool::new(false));
        let c = Cancel::never().with_flag(Arc::clone(&flag));
        assert!(!c.is_cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(c.is_cancelled());
    }
}
