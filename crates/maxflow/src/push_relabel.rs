//! FIFO Push–Relabel \[13\] with the global-relabeling and gap
//! heuristics \[28\] — the comparator the paper examined and rejected for
//! MapReduce (Sec. II): it is fast sequentially, but its active set is
//! often tiny relative to the graph, which is exactly what starves
//! parallel MR rounds.
//!
//! The heuristics mirror [`crate::parallel_push_relabel`] exactly (exact
//! heights from periodic reverse BFS off the sink and source, gap lifts
//! on vacated levels), so the sequential/parallel pair differ only in
//! scheduling.

use std::collections::VecDeque;

use swgraph::{Capacity, FlowNetwork, VertexId};

use crate::cancel::{Cancel, Cancelled};
use crate::report::SolveReport;
use crate::residual::{FlowResult, Residual};

/// Work (edges scanned + weighted relabels) between global relabelings,
/// as a multiple of `n + m` — the same budget the parallel twin uses.
const GLOBAL_RELABEL_FACTOR: u64 = 3;

/// Work-counter charge for one relabel (edge scans charge 1 each).
const RELABEL_WORK: u64 = 12;

/// Computes the maximum `s`–`t` flow with FIFO Push–Relabel.
///
/// Also exposed through [`max_flow_instrumented`], which reports the
/// active-vertex trace used by the paper-motivated parallelism ablation.
///
/// # Example
/// ```
/// use swgraph::{FlowNetwork, VertexId};
/// let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
/// let f = maxflow::push_relabel::max_flow(&net, VertexId::new(0), VertexId::new(3));
/// assert_eq!(f.value, 2);
/// ```
#[must_use]
pub fn max_flow(net: &FlowNetwork, s: VertexId, t: VertexId) -> FlowResult {
    max_flow_instrumented(net, s, t).result
}

/// [`max_flow`] with a cooperative [`Cancel`] token, polled every
/// `CANCEL_POLL_INTERVAL` discharges.
pub fn max_flow_cancellable(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<FlowResult, Cancelled> {
    run_instrumented(net, s, t, cancel).map(|run| run.result)
}

/// [`max_flow_cancellable`] returning the [`SolveReport`] counters
/// (sweeps, pushes, relabels, global relabels, cancel polls) alongside
/// the flow.
pub fn max_flow_with_report(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<(FlowResult, SolveReport), Cancelled> {
    run_instrumented(net, s, t, cancel).map(|run| (run.result, run.report))
}

/// How many FIFO discharges happen between [`Cancel`] polls: frequent
/// enough that a deadline lands within microseconds, rare enough that
/// the `Instant::now()` call is invisible in profiles.
const CANCEL_POLL_INTERVAL: u64 = 64;

/// A push-relabel run plus the per-sweep count of active vertices.
#[derive(Debug, Clone)]
pub struct InstrumentedRun {
    /// The computed maximum flow.
    pub result: FlowResult,
    /// Number of active (positive-excess, non-terminal) vertices sampled
    /// at the start of each FIFO sweep — the paper's "available
    /// parallelism" measure for push-relabel.
    pub active_trace: Vec<usize>,
    /// Deterministic execution counters (sweeps as phases, pushes,
    /// relabels, global relabels, cancel polls).
    pub report: SolveReport,
}

/// Like [`max_flow`] but records how many vertices were active over time.
#[must_use]
pub fn max_flow_instrumented(net: &FlowNetwork, s: VertexId, t: VertexId) -> InstrumentedRun {
    run_instrumented(net, s, t, &Cancel::never()).expect("never-cancel solve cannot fail")
}

fn run_instrumented(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<InstrumentedRun, Cancelled> {
    let n = net.num_vertices();
    let mut residual = Residual::new(net);
    if s == t || n == 0 || s.index() >= n || t.index() >= n {
        return Ok(InstrumentedRun {
            result: residual.into_result(s),
            active_trace: Vec::new(),
            report: SolveReport::default(),
        });
    }
    let mut report = SolveReport::default();

    let mut height: Vec<usize> = vec![0; n];
    let mut excess: Vec<Capacity> = vec![0; n];
    let mut height_count: Vec<usize> = vec![0; 2 * n + 1];
    height[s.index()] = n;

    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut in_queue = vec![false; n];
    let mut active_trace = Vec::new();

    // Saturate every source edge.
    for e in net.out_edges(s) {
        let cap = residual.residual_capacity(e);
        if cap > 0 {
            let v = net.head(e);
            residual.push(e, cap);
            // Terminal excess is never read (terminals are not queued) and
            // can exceed i64 range with multiple unbounded terminal edges,
            // so it is not tracked at all.
            if v != t && v != s {
                excess[v.index()] += cap;
                if !in_queue[v.index()] {
                    in_queue[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
    }

    // Exact initial heights, then the FIFO discharge loop with periodic
    // re-relabeling once enough work (edge scans + relabels) piles up.
    // Sample the active set once per sweep boundary.
    let m = net.num_directed_edges();
    let relabel_threshold = GLOBAL_RELABEL_FACTOR * (n + m) as u64;
    let mut work: u64 = 0;
    global_relabel(net, &residual, s, t, &mut height, &mut height_count);
    report.global_relabels += 1;
    let mut sweep_budget = queue.len();
    active_trace.push(queue.len());
    report.phases += 1;
    let mut discharges: u64 = 0;
    while let Some(u) = queue.pop_front() {
        // Poll on the first discharge (so an already-expired deadline
        // fails deterministically even on tiny graphs), then periodically.
        if discharges.is_multiple_of(CANCEL_POLL_INTERVAL) {
            report.cancel_polls += 1;
            cancel.check()?;
        }
        discharges += 1;
        in_queue[u.index()] = false;
        if work >= relabel_threshold {
            work = 0;
            global_relabel(net, &residual, s, t, &mut height, &mut height_count);
            report.global_relabels += 1;
        }
        discharge(
            net,
            &mut residual,
            &mut height,
            &mut excess,
            &mut height_count,
            &mut queue,
            &mut in_queue,
            &mut work,
            &mut report,
            u,
            s,
            t,
        );
        if sweep_budget <= 1 {
            sweep_budget = queue.len();
            if !queue.is_empty() {
                active_trace.push(queue.len());
                report.phases += 1;
            }
        } else {
            sweep_budget -= 1;
        }
    }

    Ok(InstrumentedRun {
        result: residual.into_result(s),
        active_trace,
        report,
    })
}

/// Recomputes every height as its exact residual distance: `dist(v, t)`
/// for the sink-reaching side (reverse BFS from `t`, `s` excluded),
/// `n + dist(v, s)` for the rest (the excess-return phase), `2n` when
/// unreached by both. `s` stays pinned at `n`, `t` at `0`; valid labels
/// are lower bounds on these distances, so no height ever decreases.
fn global_relabel(
    net: &FlowNetwork,
    residual: &Residual<'_>,
    s: VertexId,
    t: VertexId,
    height: &mut [usize],
    height_count: &mut [usize],
) {
    let n = net.num_vertices();
    let dist_t = reverse_bfs(net, residual, t, s);
    let dist_s = reverse_bfs(net, residual, s, t);
    height_count.iter_mut().for_each(|c| *c = 0);
    for v in 0..n {
        let h = if v == s.index() {
            n
        } else if v == t.index() {
            0
        } else if dist_t[v] != usize::MAX {
            dist_t[v]
        } else if dist_s[v] != usize::MAX {
            n + dist_s[v]
        } else {
            2 * n
        };
        debug_assert!(h >= height[v], "global relabeling never lowers");
        height[v] = h;
        height_count[h] += 1;
    }
}

/// BFS from `root` along *reverse* residual arcs: `x` is at distance
/// `k+1` when some distance-`k` vertex `w` has a residual arc `x → w`.
/// `skip` (the opposite terminal) is never entered.
fn reverse_bfs(
    net: &FlowNetwork,
    residual: &Residual<'_>,
    root: VertexId,
    skip: VertexId,
) -> Vec<usize> {
    let mut dist = vec![usize::MAX; net.num_vertices()];
    dist[root.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(root);
    while let Some(w) = queue.pop_front() {
        for e in net.out_edges(w) {
            // `e` runs w → x; its pair is the arc x → w.
            if residual.residual_capacity(e.reverse()) > 0 {
                let x = net.head(e);
                if x != skip && dist[x.index()] == usize::MAX {
                    dist[x.index()] = dist[w.index()] + 1;
                    queue.push_back(x);
                }
            }
        }
    }
    dist
}

#[allow(clippy::too_many_arguments)]
fn discharge(
    net: &FlowNetwork,
    residual: &mut Residual<'_>,
    height: &mut [usize],
    excess: &mut [Capacity],
    height_count: &mut [usize],
    queue: &mut VecDeque<VertexId>,
    in_queue: &mut [bool],
    work: &mut u64,
    report: &mut SolveReport,
    u: VertexId,
    s: VertexId,
    t: VertexId,
) {
    let n = net.num_vertices();
    while excess[u.index()] > 0 {
        let mut min_height = usize::MAX;
        let mut pushed_any = false;
        for e in net.out_edges(u) {
            *work += 1;
            let rc = residual.residual_capacity(e);
            if rc <= 0 {
                continue;
            }
            let v = net.head(e);
            if height[u.index()] == height[v.index()] + 1 {
                let amount = rc.min(excess[u.index()]);
                residual.push(e, amount);
                excess[u.index()] -= amount;
                pushed_any = true;
                report.pushes += 1;
                // Terminal excess is untracked (see above).
                if v != s && v != t {
                    excess[v.index()] += amount;
                    if !in_queue[v.index()] && excess[v.index()] > 0 {
                        in_queue[v.index()] = true;
                        queue.push_back(v);
                    }
                }
                if excess[u.index()] == 0 {
                    break;
                }
            } else {
                min_height = min_height.min(height[v.index()]);
            }
        }
        if excess[u.index()] == 0 {
            break;
        }
        if !pushed_any {
            if min_height == usize::MAX {
                // Nowhere to push at all; excess is trapped (can happen
                // only transiently); stop discharging this vertex.
                break;
            }
            // Relabel with the gap heuristic.
            let old = height[u.index()];
            height_count[old] -= 1;
            let new = min_height + 1;
            height[u.index()] = new.min(2 * n);
            height_count[height[u.index()]] += 1;
            *work += RELABEL_WORK;
            report.relabels += 1;
            if height_count[old] == 0 && old < n {
                // Gap: every vertex above `old` (but below n) can never
                // reach t again; lift them above n to avoid useless work.
                for (w, h) in height.iter_mut().enumerate() {
                    if *h > old && *h < n && w != s.index() {
                        height_count[*h] -= 1;
                        *h = n + 1;
                        height_count[n + 1] += 1;
                    }
                }
            }
            if height[u.index()] >= 2 * n {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_flow;
    use swgraph::gen;
    use swgraph::FlowNetworkBuilder;

    #[test]
    fn clrs_network_value() {
        let mut b = FlowNetworkBuilder::new(6);
        b.add_edge(0, 1, 16);
        b.add_edge(0, 2, 13);
        b.add_edge(1, 2, 10);
        b.add_edge(2, 1, 4);
        b.add_edge(1, 3, 12);
        b.add_edge(3, 2, 9);
        b.add_edge(2, 4, 14);
        b.add_edge(4, 3, 7);
        b.add_edge(3, 5, 20);
        b.add_edge(4, 5, 4);
        let net = b.build();
        let f = max_flow(&net, VertexId::new(0), VertexId::new(5));
        assert_eq!(f.value, 23);
    }

    #[test]
    fn matches_dinic_on_random_graphs() {
        for seed in 0..15 {
            let edges = gen::erdos_renyi(30, 90, seed);
            let net = FlowNetwork::from_undirected_unit(30, &edges);
            let s = VertexId::new(0);
            let t = VertexId::new(29);
            let pr = max_flow(&net, s, t);
            let d = crate::dinic::max_flow(&net, s, t);
            assert_eq!(pr.value, d.value, "seed {seed}");
        }
    }

    #[test]
    fn flow_function_is_valid() {
        let edges = gen::barabasi_albert(100, 3, 4);
        let net = FlowNetwork::from_undirected_unit(100, &edges);
        let s = VertexId::new(0);
        let t = VertexId::new(99);
        let f = max_flow(&net, s, t);
        check_flow(&net, s, t, &f).unwrap();
    }

    #[test]
    fn active_trace_is_recorded_and_bounded() {
        let edges = gen::barabasi_albert(200, 3, 1);
        let net = FlowNetwork::from_undirected_unit(200, &edges);
        let run = max_flow_instrumented(&net, VertexId::new(0), VertexId::new(199));
        assert!(!run.active_trace.is_empty());
        for &a in &run.active_trace {
            assert!(a <= 200);
        }
    }

    #[test]
    fn degenerate_cases() {
        let net = FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
        assert_eq!(max_flow(&net, VertexId::new(0), VertexId::new(0)).value, 0);
        assert_eq!(max_flow(&net, VertexId::new(7), VertexId::new(1)).value, 0);
    }
}
