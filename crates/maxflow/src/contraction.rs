//! Core contraction for the query-serving tier, after Bläsius, Friedrich
//! and Weyand ("Efficiently Computing Maximum Flows in Scale-Free
//! Networks"): the low-degree periphery of a small-world graph is a
//! forest of trees hanging off the 2-core, and an s–t max flow
//! decomposes exactly into *tree bottleneck → core flow → tree
//! bottleneck*. Peeling the periphery once per snapshot therefore lets
//! every subsequent query run on a graph a fraction of the original
//! size — or skip the solver entirely when both terminals share a tree.
//!
//! # The peel and why it is exact
//!
//! [`CoreIndex::build`] repeatedly removes vertices of (structural)
//! degree ≤ 1 with a BFS-style queue. What survives is the 2-core; every
//! removed vertex joins a tree that touches the core at exactly one
//! vertex, its *anchor*. (A peeled path connecting two core vertices is
//! impossible: the first of its internal vertices to peel would still
//! have had two unpeeled neighbours, i.e. degree 2.)
//!
//! Because a periphery tree meets the rest of the graph only at its
//! anchor, flow entering the tree anywhere must leave through the
//! anchor, and the usable rate from a tree vertex `v` outward is the
//! directed bottleneck of the unique `v → anchor` path (and dually
//! inward). Hence, with `a_s`/`a_t` the anchors and `up`/`down` the path
//! bottlenecks:
//!
//! ```text
//! maxflow(s, t) = min( up(s),  maxflow_core(a_s, a_t),  down(t) )
//! ```
//!
//! and `maxflow_core` computed on the contracted core equals the
//! full-graph value between the anchors — the property the serving tier
//! exploits to cache one core solve under the anchor pair and reuse it
//! for every query that resolves to the same anchors. When both
//! terminals live in the same tree the unique tree path carries
//! everything and no solve runs at all. This is the "cut-safety" of the
//! planner: every min cut separating the terminals either is a single
//! tree edge (captured by the bottlenecks) or lies entirely in the core.

use std::collections::VecDeque;
use std::sync::Arc;

use swgraph::{Capacity, EdgeId, FlowNetwork, FlowNetworkBuilder, VertexId};

/// Sentinel for "no such vertex" in the index's `u32` id arrays.
const NONE: u32 = u32::MAX;

/// The per-snapshot contraction: the 2-core as its own [`FlowNetwork`]
/// plus, for every peeled (periphery) vertex, the data needed to answer
/// or route a query in O(tree depth): parent edge capacities, anchor,
/// and directed path bottlenecks to the tree root.
#[derive(Debug)]
pub struct CoreIndex {
    /// The contracted 2-core under renumbered vertex ids.
    core_net: Arc<FlowNetwork>,
    /// Full id → core id (`NONE` for periphery vertices).
    core_of: Vec<u32>,
    /// Core id → full id.
    core_to_full: Vec<u32>,
    /// Periphery: the next vertex toward the root (`NONE` at roots and
    /// on core vertices).
    parent: Vec<u32>,
    /// Periphery: capacity of the directed edge `v → parent(v)`.
    up_cap: Vec<Capacity>,
    /// Periphery: capacity of the directed edge `parent(v) → v`.
    down_cap: Vec<Capacity>,
    /// Periphery: full id of the core vertex the tree hangs off
    /// (`NONE` when the whole component peeled away).
    anchor: Vec<u32>,
    /// Periphery: full id of the tree root — the anchor for anchored
    /// trees, the last-peeled vertex for coreless components.
    root: Vec<u32>,
    /// Periphery: hops to the root (the root itself is 0).
    depth: Vec<u32>,
    /// Periphery: min capacity along the directed `v → root` path.
    up_bottleneck: Vec<Capacity>,
    /// Periphery: min capacity along the directed `root → v` path.
    down_bottleneck: Vec<Capacity>,
}

/// How the planner answers one plain s–t max-flow query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorePlan {
    /// The value is fully determined by periphery trees (same tree,
    /// same anchor, or disconnected) — no solver run needed.
    Direct(Capacity),
    /// Solve on the contracted core between `source` and `sink` (core
    /// ids); the final value is `min(limit, core flow)`. The anchors'
    /// full-graph ids identify the solve for caching.
    Core {
        /// Core id of the source-side anchor.
        source: VertexId,
        /// Core id of the sink-side anchor.
        sink: VertexId,
        /// Combined tree bottleneck, `Capacity::MAX` when both
        /// terminals are core vertices.
        limit: Capacity,
        /// Full-graph id of the source-side anchor.
        source_anchor: u64,
        /// Full-graph id of the sink-side anchor.
        sink_anchor: u64,
    },
}

impl CoreIndex {
    /// Peels `net` down to its 2-core and precomputes the periphery
    /// forest. Runs in `O(n + m)`.
    #[must_use]
    pub fn build(net: &FlowNetwork) -> Self {
        let n = net.num_vertices();
        assert!(n < NONE as usize, "vertex ids must fit u32");
        let mut deg: Vec<u32> = (0..n)
            .map(|v| net.out_edges(VertexId::new(v as u64)).count() as u32)
            .collect();
        let mut peeled = vec![false; n];
        let mut parent = vec![NONE; n];
        let mut up_cap: Vec<Capacity> = vec![0; n];
        let mut down_cap: Vec<Capacity> = vec![0; n];
        let mut order: Vec<u32> = Vec::new();
        let mut queue: VecDeque<u32> = (0..n as u32).filter(|&v| deg[v as usize] <= 1).collect();
        while let Some(v) = queue.pop_front() {
            let vi = v as usize;
            if peeled[vi] {
                continue;
            }
            peeled[vi] = true;
            order.push(v);
            // At most one neighbour is still unpeeled; it becomes the
            // parent. None at all makes `v` the root of a coreless tree.
            for e in net.out_edges(VertexId::new(u64::from(v))) {
                let w = net.head(e).index();
                if !peeled[w] {
                    parent[vi] = w as u32;
                    up_cap[vi] = net.capacity(e);
                    down_cap[vi] = net.capacity(e.reverse());
                    deg[w] -= 1;
                    if deg[w] == 1 {
                        queue.push_back(w as u32);
                    }
                    break;
                }
            }
        }

        // Renumber the surviving core and rebuild it as its own network.
        let mut core_of = vec![NONE; n];
        let mut core_to_full = Vec::new();
        for v in 0..n {
            if !peeled[v] {
                core_of[v] = core_to_full.len() as u32;
                core_to_full.push(v as u32);
            }
        }
        let mut builder = FlowNetworkBuilder::new(core_to_full.len() as u64);
        for p in 0..net.num_edge_pairs() {
            let e = EdgeId::new(2 * p as u64);
            let u = net.tail(e).index();
            let v = net.head(e).index();
            if peeled[u] || peeled[v] {
                continue;
            }
            let (cu, cv) = (u64::from(core_of[u]), u64::from(core_of[v]));
            let fwd = net.capacity(e);
            let bwd = net.capacity(e.reverse());
            if fwd > 0 {
                builder.add_edge(cu, cv, fwd);
            }
            if bwd > 0 {
                builder.add_edge(cv, cu, bwd);
            }
        }
        let core_net = Arc::new(builder.build());

        // Anchors, roots, depths and path bottlenecks, in reverse peel
        // order so a vertex's parent is always resolved first (the
        // parent either survived as core or peeled strictly later).
        let mut anchor = vec![NONE; n];
        let mut root = vec![NONE; n];
        let mut depth = vec![0u32; n];
        let mut up_bottleneck = vec![Capacity::MAX; n];
        let mut down_bottleneck = vec![Capacity::MAX; n];
        for &v in order.iter().rev() {
            let vi = v as usize;
            let p = parent[vi];
            if p == NONE {
                root[vi] = v;
                continue;
            }
            let pi = p as usize;
            if !peeled[pi] {
                anchor[vi] = p;
                root[vi] = p;
                depth[vi] = 1;
                up_bottleneck[vi] = up_cap[vi];
                down_bottleneck[vi] = down_cap[vi];
            } else {
                anchor[vi] = anchor[pi];
                root[vi] = root[pi];
                depth[vi] = depth[pi] + 1;
                up_bottleneck[vi] = up_cap[vi].min(up_bottleneck[pi]);
                down_bottleneck[vi] = down_cap[vi].min(down_bottleneck[pi]);
            }
        }

        Self {
            core_net,
            core_of,
            core_to_full,
            parent,
            up_cap,
            down_cap,
            anchor,
            root,
            depth,
            up_bottleneck,
            down_bottleneck,
        }
    }

    /// The contracted 2-core network.
    #[must_use]
    pub fn core_net(&self) -> &Arc<FlowNetwork> {
        &self.core_net
    }

    /// Number of vertices that survived the peel.
    #[must_use]
    pub fn core_vertex_count(&self) -> usize {
        self.core_to_full.len()
    }

    /// Number of vertices peeled into the periphery forest.
    #[must_use]
    pub fn periphery_vertex_count(&self) -> usize {
        self.core_of.len() - self.core_to_full.len()
    }

    /// Undirected edge pairs in the contracted core.
    #[must_use]
    pub fn core_edge_pairs(&self) -> usize {
        self.core_net.num_edge_pairs()
    }

    /// Maps a core id back to the full-graph vertex id.
    #[must_use]
    pub fn to_full(&self, core: VertexId) -> VertexId {
        VertexId::new(u64::from(self.core_to_full[core.index()]))
    }

    /// True when `v` survived the peel.
    #[must_use]
    pub fn is_core(&self, v: VertexId) -> bool {
        self.core_of[v.index()] != NONE
    }

    /// Plans one plain s–t max-flow query. Degenerate inputs (equal or
    /// out-of-range terminals) plan to `Direct(0)`, matching the
    /// solvers' conventions.
    #[must_use]
    pub fn plan(&self, s: VertexId, t: VertexId) -> CorePlan {
        let n = self.core_of.len();
        if s == t || s.index() >= n || t.index() >= n {
            return CorePlan::Direct(0);
        }
        let (si, ti) = (s.index(), t.index());
        let s_core = self.core_of[si] != NONE;
        let t_core = self.core_of[ti] != NONE;
        if !s_core && !t_core && self.root[si] == self.root[ti] {
            // Same periphery tree: the unique tree path carries all flow.
            return CorePlan::Direct(self.tree_path_bottleneck(si, ti));
        }
        let (sa, s_limit) = if s_core {
            (si as u32, Capacity::MAX)
        } else {
            (self.anchor[si], self.up_bottleneck[si])
        };
        let (ta, t_limit) = if t_core {
            (ti as u32, Capacity::MAX)
        } else {
            (self.anchor[ti], self.down_bottleneck[ti])
        };
        if sa == NONE || ta == NONE {
            // One side lives in a coreless component and the other side
            // is not in the same tree (handled above): disconnected.
            return CorePlan::Direct(0);
        }
        if sa == ta {
            // Both trees hang off the same core vertex (or one terminal
            // *is* it): the paths concatenate at the anchor.
            return CorePlan::Direct(s_limit.min(t_limit));
        }
        CorePlan::Core {
            source: VertexId::new(u64::from(self.core_of[sa as usize])),
            sink: VertexId::new(u64::from(self.core_of[ta as usize])),
            limit: s_limit.min(t_limit),
            source_anchor: u64::from(sa),
            sink_anchor: u64::from(ta),
        }
    }

    /// Directed bottleneck of the unique tree path `u → v` (both
    /// periphery, same root): `u` climbs shedding up-capacities, `v`
    /// climbs shedding down-capacities, meeting at the LCA. Core
    /// anchors count as depth 0.
    fn tree_path_bottleneck(&self, mut u: usize, mut v: usize) -> Capacity {
        let depth_of = |x: usize| {
            if self.core_of[x] != NONE {
                0
            } else {
                self.depth[x]
            }
        };
        let mut up = Capacity::MAX;
        let mut down = Capacity::MAX;
        while depth_of(u) > depth_of(v) {
            up = up.min(self.up_cap[u]);
            u = self.parent[u] as usize;
        }
        while depth_of(v) > depth_of(u) {
            down = down.min(self.down_cap[v]);
            v = self.parent[v] as usize;
        }
        while u != v {
            up = up.min(self.up_cap[u]);
            u = self.parent[u] as usize;
            down = down.min(self.down_cap[v]);
            v = self.parent[v] as usize;
        }
        up.min(down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgraph::gen;

    fn v(id: u64) -> VertexId {
        VertexId::new(id)
    }

    /// Resolves a plan to a flow value, solving the core with Dinic.
    fn answer(idx: &CoreIndex, s: VertexId, t: VertexId) -> Capacity {
        match idx.plan(s, t) {
            CorePlan::Direct(value) => value,
            CorePlan::Core {
                source,
                sink,
                limit,
                ..
            } => limit.min(crate::dinic::max_flow(idx.core_net(), source, sink).value),
        }
    }

    #[test]
    fn path_graph_peels_completely() {
        // 0-1-2-3 with unit capacities: no 2-core at all.
        let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 2), (2, 3)]);
        let idx = CoreIndex::build(&net);
        assert_eq!(idx.core_vertex_count(), 0);
        assert_eq!(idx.periphery_vertex_count(), 4);
        assert_eq!(idx.plan(v(0), v(3)), CorePlan::Direct(1));
        assert_eq!(idx.plan(v(1), v(2)), CorePlan::Direct(1));
    }

    #[test]
    fn star_routes_through_the_centre() {
        let net = FlowNetwork::from_undirected_unit(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let idx = CoreIndex::build(&net);
        assert_eq!(idx.core_vertex_count(), 0);
        assert_eq!(idx.plan(v(1), v(4)), CorePlan::Direct(1));
        assert_eq!(idx.plan(v(0), v(3)), CorePlan::Direct(1));
    }

    #[test]
    fn cycle_survives_as_core() {
        let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let idx = CoreIndex::build(&net);
        assert_eq!(idx.core_vertex_count(), 4);
        assert_eq!(idx.periphery_vertex_count(), 0);
        match idx.plan(v(0), v(2)) {
            CorePlan::Core {
                limit,
                source_anchor,
                sink_anchor,
                ..
            } => {
                assert_eq!(limit, Capacity::MAX);
                assert_eq!((source_anchor, sink_anchor), (0, 2));
            }
            other => panic!("expected core plan, got {other:?}"),
        }
        assert_eq!(answer(&idx, v(0), v(2)), 2);
    }

    #[test]
    fn pendant_chain_limits_the_core_flow() {
        // Square 0-1-2-3 plus a chain 2-4-5 hanging off vertex 2.
        let net =
            FlowNetwork::from_undirected_unit(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5)]);
        let idx = CoreIndex::build(&net);
        assert_eq!(idx.core_vertex_count(), 4);
        assert_eq!(idx.periphery_vertex_count(), 2);
        // 5 → 0: chain bottleneck 1, core flow 2 → min is 1.
        assert_eq!(answer(&idx, v(5), v(0)), 1);
        assert_eq!(
            crate::dinic::max_flow(&net, v(5), v(0)).value,
            answer(&idx, v(5), v(0))
        );
        // Same-anchor shortcut: 5 → 2 never touches the core solver.
        assert_eq!(idx.plan(v(5), v(2)), CorePlan::Direct(1));
        // 4 and 5 share a tree.
        assert_eq!(idx.plan(v(4), v(5)), CorePlan::Direct(1));
    }

    #[test]
    fn asymmetric_capacities_use_directional_bottlenecks() {
        // Directed chain onto a triangle: 4 →(7) 3 →(2) 0, triangle
        // {0,1,2} with capacity 5 each way; reverse direction of the
        // chain has capacity 1.
        let mut b = FlowNetworkBuilder::new(5);
        for &(x, y) in &[(0, 1), (1, 2), (2, 0)] {
            b.add_edge(x, y, 5);
            b.add_edge(y, x, 5);
        }
        b.add_edge(4, 3, 7);
        b.add_edge(3, 4, 1);
        b.add_edge(3, 0, 2);
        b.add_edge(0, 3, 1);
        let net = b.build();
        let idx = CoreIndex::build(&net);
        assert_eq!(idx.core_vertex_count(), 3);
        // Out of the tree: min(7, 2) = 2 limits the core side.
        assert_eq!(answer(&idx, v(4), v(1)), 2);
        // Into the tree: min(1, 1) = 1.
        assert_eq!(answer(&idx, v(1), v(4)), 1);
        assert_eq!(crate::dinic::max_flow(&net, v(4), v(1)).value, 2);
        assert_eq!(crate::dinic::max_flow(&net, v(1), v(4)).value, 1);
    }

    #[test]
    fn disconnected_components_plan_to_zero() {
        let net = FlowNetwork::from_undirected_unit(5, &[(0, 1), (2, 3), (3, 4)]);
        let idx = CoreIndex::build(&net);
        assert_eq!(idx.plan(v(0), v(4)), CorePlan::Direct(0));
        assert_eq!(idx.plan(v(1), v(2)), CorePlan::Direct(0));
    }

    #[test]
    fn degenerate_queries_plan_to_zero() {
        let net = FlowNetwork::from_undirected_unit(3, &[(0, 1), (1, 2)]);
        let idx = CoreIndex::build(&net);
        assert_eq!(idx.plan(v(1), v(1)), CorePlan::Direct(0));
        assert_eq!(idx.plan(v(0), v(9)), CorePlan::Direct(0));
    }

    #[test]
    fn ba_tree_has_empty_core_and_exact_answers() {
        // Barabási–Albert with m=1 is a tree: everything peels.
        let edges = gen::barabasi_albert(64, 1, 7);
        let net = FlowNetwork::from_undirected_unit(64, &edges);
        let idx = CoreIndex::build(&net);
        assert_eq!(idx.core_vertex_count(), 0);
        for (s, t) in [(0u64, 63u64), (5, 40), (12, 13)] {
            assert_eq!(
                answer(&idx, v(s), v(t)),
                crate::dinic::max_flow(&net, v(s), v(t)).value,
                "terminals ({s},{t})"
            );
        }
    }

    #[test]
    fn dense_ba_graph_keeps_everything_in_core() {
        // m=3 preferential attachment: min degree 3, nothing peels.
        let edges = gen::barabasi_albert(100, 3, 11);
        let net = FlowNetwork::from_undirected_unit(100, &edges);
        let idx = CoreIndex::build(&net);
        assert_eq!(idx.periphery_vertex_count(), 0);
        assert_eq!(idx.core_edge_pairs(), net.num_edge_pairs());
        assert_eq!(answer(&idx, v(0), v(99)), {
            crate::dinic::max_flow(&net, v(0), v(99)).value
        });
    }
}
