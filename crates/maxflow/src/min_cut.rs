//! Minimum-cut extraction from a finished max-flow.
//!
//! The applications that motivate the paper — community identification,
//! spam detection, Sybil-resistant vote counting — all consume the *cut*,
//! not just the flow value, so the workspace exposes it as a first-class
//! result.

use std::collections::VecDeque;

use swgraph::{Capacity, EdgeId, FlowNetwork, VertexId};

use crate::residual::FlowResult;

/// A minimum `s`–`t` cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCut {
    /// Vertices on the source side (reachable in the final residual graph).
    pub source_side: Vec<VertexId>,
    /// Saturated directed edges crossing from the source side to the sink
    /// side.
    pub cut_edges: Vec<EdgeId>,
    /// Total capacity of `cut_edges` (equals the max-flow value by the
    /// max-flow/min-cut theorem).
    pub value: Capacity,
}

/// Extracts the minimum cut witnessed by a maximum flow: BFS from `s`
/// over positive-residual edges, then collect the saturated boundary.
///
/// # Example
/// ```
/// use swgraph::{FlowNetwork, VertexId};
/// let net = FlowNetwork::from_undirected_unit(3, &[(0, 1), (1, 2)]);
/// let (s, t) = (VertexId::new(0), VertexId::new(2));
/// let f = maxflow::dinic::max_flow(&net, s, t);
/// let cut = maxflow::min_cut::extract_min_cut(&net, s, &f);
/// assert_eq!(cut.value, f.value);
/// ```
#[must_use]
pub fn extract_min_cut(net: &FlowNetwork, s: VertexId, flow: &FlowResult) -> MinCut {
    let n = net.num_vertices();
    let mut reachable = vec![false; n];
    if s.index() < n {
        reachable[s.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for e in net.out_edges(u) {
                let v = net.head(e);
                if !reachable[v.index()] && net.capacity(e) - flow.flow(e) > 0 {
                    reachable[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    let mut cut_edges = Vec::new();
    let mut value: Capacity = 0;
    for u in 0..n {
        if !reachable[u] {
            continue;
        }
        for e in net.out_edges(VertexId::new(u as u64)) {
            if net.capacity(e) > 0 && !reachable[net.head(e).index()] {
                cut_edges.push(e);
                value = value.saturating_add(net.capacity(e));
            }
        }
    }
    let source_side = (0..n)
        .filter(|&u| reachable[u])
        .map(|u| VertexId::new(u as u64))
        .collect();
    MinCut {
        source_side,
        cut_edges,
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;
    use swgraph::gen;
    use swgraph::FlowNetworkBuilder;

    #[test]
    fn cut_value_equals_flow_value() {
        for seed in 0..10 {
            let edges = gen::erdos_renyi(30, 70, seed);
            let net = FlowNetwork::from_undirected_unit(30, &edges);
            let (s, t) = (VertexId::new(0), VertexId::new(29));
            let f = dinic::max_flow(&net, s, t);
            let cut = extract_min_cut(&net, s, &f);
            assert_eq!(cut.value, f.value, "seed {seed}");
            assert!(cut.source_side.contains(&s));
            assert!(!cut.source_side.contains(&t) || f.value == 0);
        }
    }

    #[test]
    fn bottleneck_edge_is_the_cut() {
        // 0 -> 1 (cap 10) -> 2 (cap 1) -> 3 (cap 10): the cut is {1->2}.
        let mut b = FlowNetworkBuilder::new(4);
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 10);
        let net = b.build();
        let (s, t) = (VertexId::new(0), VertexId::new(3));
        let f = dinic::max_flow(&net, s, t);
        let cut = extract_min_cut(&net, s, &f);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.cut_edges.len(), 1);
        let e = cut.cut_edges[0];
        assert_eq!(net.tail(e), VertexId::new(1));
        assert_eq!(net.head(e), VertexId::new(2));
    }

    #[test]
    fn disconnected_cut_is_empty() {
        let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (2, 3)]);
        let (s, t) = (VertexId::new(0), VertexId::new(3));
        let f = dinic::max_flow(&net, s, t);
        let cut = extract_min_cut(&net, s, &f);
        assert_eq!(cut.value, 0);
        assert!(cut.cut_edges.is_empty());
        assert_eq!(cut.source_side.len(), 2);
    }
}
