//! Shared residual-graph bookkeeping for all sequential solvers.

use swgraph::{Capacity, EdgeId, FlowNetwork, VertexId};

/// Mutable flow state over a [`FlowNetwork`].
///
/// Maintains the skew-symmetry invariant `f(e) == -f(e.reverse())` on every
/// push, so the residual capacity of either direction is always
/// `capacity - flow`.
///
/// # Example
/// ```
/// use swgraph::{FlowNetwork, VertexId};
/// use maxflow::Residual;
///
/// let net = FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
/// let mut r = Residual::new(&net);
/// let e = net.out_edges(VertexId::new(0)).next().unwrap();
/// assert_eq!(r.residual_capacity(e), 1);
/// r.push(e, 1);
/// assert_eq!(r.residual_capacity(e), 0);
/// assert_eq!(r.residual_capacity(e.reverse()), 2); // 1 cap + 1 returned
/// ```
#[derive(Debug, Clone)]
pub struct Residual<'a> {
    net: &'a FlowNetwork,
    flow: Vec<Capacity>,
}

impl<'a> Residual<'a> {
    /// Zero flow over `net`.
    #[must_use]
    pub fn new(net: &'a FlowNetwork) -> Self {
        Self {
            net,
            flow: vec![0; net.num_directed_edges()],
        }
    }

    /// The underlying network (borrowing for the network's own lifetime,
    /// so callers can keep it while pushing flow).
    #[must_use]
    pub fn network(&self) -> &'a FlowNetwork {
        self.net
    }

    /// Current flow on directed edge `e` (negative when the reverse
    /// direction carries flow).
    #[must_use]
    pub fn flow(&self, e: EdgeId) -> Capacity {
        self.flow[e.index()]
    }

    /// Residual capacity of `e`: how much more flow it can carry.
    #[must_use]
    pub fn residual_capacity(&self, e: EdgeId) -> Capacity {
        self.net.capacity(e) - self.flow[e.index()]
    }

    /// Sends `amount` additional flow along `e`, updating both directions.
    ///
    /// # Panics
    /// Panics (debug) if `amount` exceeds the residual capacity.
    pub fn push(&mut self, e: EdgeId, amount: Capacity) {
        debug_assert!(
            amount <= self.residual_capacity(e),
            "over-push on {e}: {amount} > {}",
            self.residual_capacity(e)
        );
        self.flow[e.index()] += amount;
        self.flow[e.reverse().index()] -= amount;
    }

    /// Net flow out of `s` (the flow value when `s` is the source);
    /// 0 for an out-of-range vertex.
    #[must_use]
    pub fn value_from(&self, s: VertexId) -> Capacity {
        if s.index() >= self.net.num_vertices() {
            return 0;
        }
        self.net.out_edges(s).map(|e| self.flow(e)).sum()
    }

    /// Finalizes into a [`FlowResult`] with the value measured at `s`.
    #[must_use]
    pub fn into_result(self, s: VertexId) -> FlowResult {
        let value = self.value_from(s);
        FlowResult {
            value,
            flows: self.flow,
        }
    }
}

/// The output of a max-flow computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowResult {
    /// The flow value |f| from source to sink.
    pub value: Capacity,
    /// Flow per directed edge slot, indexed by [`EdgeId`]; skew-symmetric.
    pub flows: Vec<Capacity>,
}

impl FlowResult {
    /// Flow on directed edge `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range for the network this result came from.
    #[must_use]
    pub fn flow(&self, e: EdgeId) -> Capacity {
        self.flows[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_path() -> FlowNetwork {
        FlowNetwork::from_undirected_unit(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn push_maintains_skew_symmetry() {
        let net = two_path();
        let mut r = Residual::new(&net);
        let e = net.out_edges(VertexId::new(0)).next().unwrap();
        r.push(e, 1);
        assert_eq!(r.flow(e), 1);
        assert_eq!(r.flow(e.reverse()), -1);
    }

    #[test]
    fn value_counts_net_outflow() {
        let net = two_path();
        let mut r = Residual::new(&net);
        let e01 = net
            .out_edges(VertexId::new(0))
            .find(|&e| net.head(e) == VertexId::new(1))
            .unwrap();
        r.push(e01, 1);
        assert_eq!(r.value_from(VertexId::new(0)), 1);
        let result = r.into_result(VertexId::new(0));
        assert_eq!(result.value, 1);
        assert_eq!(result.flow(e01), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "over-push")]
    fn over_push_is_caught() {
        let net = two_path();
        let mut r = Residual::new(&net);
        let e = net.out_edges(VertexId::new(0)).next().unwrap();
        r.push(e, 5);
    }

    #[test]
    fn cancellation_restores_residual() {
        let net = two_path();
        let mut r = Residual::new(&net);
        let e = net.out_edges(VertexId::new(0)).next().unwrap();
        r.push(e, 1);
        r.push(e.reverse(), 2); // 1 unit of its own capacity + 1 cancel
        assert_eq!(r.flow(e), -1);
        assert_eq!(r.residual_capacity(e), 2);
    }
}
