//! Flow-function validation: the three constraints from the paper's
//! Sec. II-A (capacity, skew symmetry, conservation) plus value
//! consistency, checked after every solve in tests.

use std::error::Error;
use std::fmt;

use swgraph::{Capacity, EdgeId, FlowNetwork, VertexId};

use crate::residual::FlowResult;

/// A violated flow constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowViolation {
    /// The flow vector length does not match the network.
    WrongShape {
        /// Expected directed-edge count.
        expected: usize,
        /// Actual flow vector length.
        actual: usize,
    },
    /// `f(e) > c(e)` on some edge.
    Capacity {
        /// The offending edge.
        edge: EdgeId,
        /// Flow on it.
        flow: Capacity,
        /// Its capacity.
        capacity: Capacity,
    },
    /// `f(e) != -f(e.reverse())`.
    SkewSymmetry {
        /// The offending edge.
        edge: EdgeId,
    },
    /// Net flow out of a non-terminal vertex is nonzero.
    Conservation {
        /// The offending vertex.
        vertex: VertexId,
        /// Its net outflow.
        net_out: Capacity,
    },
    /// The declared value differs from the measured net outflow at `s`.
    Value {
        /// Declared flow value.
        declared: Capacity,
        /// Measured net outflow at the source.
        measured: Capacity,
    },
}

impl fmt::Display for FlowViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowViolation::WrongShape { expected, actual } => {
                write!(
                    f,
                    "flow vector has {actual} entries, network has {expected}"
                )
            }
            FlowViolation::Capacity {
                edge,
                flow,
                capacity,
            } => write!(
                f,
                "capacity violated on {edge}: flow {flow} > cap {capacity}"
            ),
            FlowViolation::SkewSymmetry { edge } => {
                write!(f, "skew symmetry violated on {edge}")
            }
            FlowViolation::Conservation { vertex, net_out } => {
                write!(
                    f,
                    "conservation violated at {vertex}: net outflow {net_out}"
                )
            }
            FlowViolation::Value { declared, measured } => {
                write!(
                    f,
                    "declared value {declared} but measured {measured} at source"
                )
            }
        }
    }
}

impl Error for FlowViolation {}

/// Checks that `result` is a feasible flow from `s` to `t` on `net` and
/// that its declared value matches the source's net outflow.
///
/// Does **not** check maximality — pair it with an oracle (e.g. Dinic)
/// for that.
///
/// # Errors
/// The first [`FlowViolation`] found.
pub fn check_flow(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    result: &FlowResult,
) -> Result<(), FlowViolation> {
    let m = net.num_directed_edges();
    if result.flows.len() != m {
        return Err(FlowViolation::WrongShape {
            expected: m,
            actual: result.flows.len(),
        });
    }
    for raw in 0..m as u64 {
        let e = EdgeId::new(raw);
        let f = result.flow(e);
        if f > net.capacity(e) {
            return Err(FlowViolation::Capacity {
                edge: e,
                flow: f,
                capacity: net.capacity(e),
            });
        }
        if f != -result.flow(e.reverse()) {
            return Err(FlowViolation::SkewSymmetry { edge: e });
        }
    }
    for u in 0..net.num_vertices() as u64 {
        let v = VertexId::new(u);
        if v == s || v == t {
            continue;
        }
        let net_out: Capacity = net.out_edges(v).map(|e| result.flow(e)).sum();
        if net_out != 0 {
            return Err(FlowViolation::Conservation { vertex: v, net_out });
        }
    }
    let measured: Capacity = if s.index() < net.num_vertices() {
        net.out_edges(s).map(|e| result.flow(e)).sum()
    } else {
        0
    };
    if measured != result.value {
        return Err(FlowViolation::Value {
            declared: result.value,
            measured,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;

    fn path_net() -> FlowNetwork {
        FlowNetwork::from_undirected_unit(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn valid_flow_passes() {
        let net = path_net();
        let f = dinic::max_flow(&net, VertexId::new(0), VertexId::new(2));
        check_flow(&net, VertexId::new(0), VertexId::new(2), &f).unwrap();
    }

    #[test]
    fn catches_capacity_violation() {
        let net = path_net();
        let mut f = dinic::max_flow(&net, VertexId::new(0), VertexId::new(2));
        f.flows[0] = 99;
        f.flows[1] = -99;
        let err = check_flow(&net, VertexId::new(0), VertexId::new(2), &f).unwrap_err();
        assert!(matches!(err, FlowViolation::Capacity { .. }));
    }

    #[test]
    fn catches_skew_violation() {
        let net = path_net();
        let mut f = dinic::max_flow(&net, VertexId::new(0), VertexId::new(2));
        f.flows[1] = f.flows[0]; // should be the negation
        let err = check_flow(&net, VertexId::new(0), VertexId::new(2), &f).unwrap_err();
        assert!(matches!(err, FlowViolation::SkewSymmetry { .. }));
    }

    #[test]
    fn catches_conservation_violation() {
        let net = path_net();
        let zero = FlowResult {
            value: 0,
            flows: {
                let mut v = vec![0; net.num_directed_edges()];
                // 1 unit enters vertex 1 but never leaves.
                v[0] = 1;
                v[1] = -1;
                v
            },
        };
        let err = check_flow(&net, VertexId::new(0), VertexId::new(2), &zero).unwrap_err();
        assert!(matches!(err, FlowViolation::Conservation { .. }));
    }

    #[test]
    fn catches_value_mismatch() {
        let net = path_net();
        let mut f = dinic::max_flow(&net, VertexId::new(0), VertexId::new(2));
        f.value += 5;
        let err = check_flow(&net, VertexId::new(0), VertexId::new(2), &f).unwrap_err();
        assert!(matches!(err, FlowViolation::Value { .. }));
    }

    #[test]
    fn catches_wrong_shape() {
        let net = path_net();
        let bad = FlowResult {
            value: 0,
            flows: vec![0; 1],
        };
        let err = check_flow(&net, VertexId::new(0), VertexId::new(2), &bad).unwrap_err();
        assert!(matches!(err, FlowViolation::WrongShape { .. }));
    }

    #[test]
    fn violation_messages_are_informative() {
        let v = FlowViolation::Capacity {
            edge: EdgeId::new(4),
            flow: 7,
            capacity: 3,
        };
        let s = v.to_string();
        assert!(s.contains("e4") && s.contains('7') && s.contains('3'));
    }
}
