//! Per-solve execution counters, returned alongside [`FlowResult`].
//!
//! Every solver exposes a `max_flow_with_report` entry point that
//! returns a [`SolveReport`] next to the flow: the serving tier
//! (`ffmrd`) threads it into the per-query profile so `ffmr query
//! --explain` can name *where the work went* — BFS phases for Dinic,
//! pulses/pushes/relabels for push-relabel — without any solver-side
//! logging. The counters are deterministic for a given network and
//! terminal pair (for the parallel solver, for any thread count), so
//! they are safe to assert on in tests.
//!
//! [`FlowResult`]: crate::FlowResult

/// Deterministic execution counters for one max-flow solve.
///
/// Fields not meaningful for a given algorithm stay zero (e.g. an
/// augmenting-path solver never pushes excess, a push-relabel solver
/// never augments along paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveReport {
    /// Outer progress rounds: BFS phases (Dinic), Δ scaling levels
    /// (capacity scaling), discharge sweeps (sequential push-relabel),
    /// or bulk-synchronous pulses (parallel push-relabel).
    pub phases: u64,
    /// Augmenting paths pushed (Ford–Fulkerson family).
    pub augmenting_paths: u64,
    /// Individual push operations applied (push-relabel family).
    pub pushes: u64,
    /// Individual relabel operations applied, gap lifts excluded
    /// (push-relabel family).
    pub relabels: u64,
    /// Global relabelings, including the initial one (push-relabel
    /// family).
    pub global_relabels: u64,
    /// Times the solver polled its [`Cancel`](crate::Cancel) token.
    pub cancel_polls: u64,
}

impl SolveReport {
    /// The non-zero counters as `(name, value)` pairs, in declaration
    /// order — the shape the serving tier serializes into a profile.
    #[must_use]
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        [
            ("phases", self.phases),
            ("augmenting_paths", self.augmenting_paths),
            ("pushes", self.pushes),
            ("relabels", self.relabels),
            ("global_relabels", self.global_relabels),
            ("cancel_polls", self.cancel_polls),
        ]
        .into_iter()
        .filter(|&(_, v)| v != 0)
        .collect()
    }
}
