//! Sequential maximum-flow reference algorithms.
//!
//! These are the in-memory baselines and correctness oracles for the FFMR
//! reproduction: the Ford–Fulkerson schema the paper parallelizes, the
//! classic strongly-polynomial refinements the paper cites (Edmonds–Karp
//! \[31\], Dinic \[30\]) and the Push–Relabel comparator it argues is
//! MR-unsuitable \[13\].
//!
//! All solvers share the [`FlowResult`] representation over
//! [`swgraph::FlowNetwork`]'s paired edges and are cross-validated against
//! each other in the test suite.
//!
//! # Example
//!
//! ```
//! use swgraph::{FlowNetwork, VertexId};
//! use maxflow::dinic;
//!
//! // Two disjoint unit paths from 0 to 3.
//! let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
//! let result = dinic::max_flow(&net, VertexId::new(0), VertexId::new(3));
//! assert_eq!(result.value, 2);
//! maxflow::validate::check_flow(&net, VertexId::new(0), VertexId::new(3), &result).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cancel;
pub mod capacity_scaling;
pub mod contraction;
pub mod dinic;
pub mod edmonds_karp;
pub mod ford_fulkerson;
pub mod min_cut;
pub mod parallel_push_relabel;
pub mod push_relabel;
pub mod report;
pub mod residual;
pub mod validate;

pub use cancel::{Cancel, Cancelled};
pub use report::SolveReport;
pub use residual::{FlowResult, Residual};

use swgraph::{FlowNetwork, VertexId};

/// Which sequential algorithm to run (handy for parameterized tests and
/// benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Algorithm {
    /// DFS-based Ford–Fulkerson.
    FordFulkerson,
    /// BFS shortest-augmenting-path (Edmonds–Karp).
    EdmondsKarp,
    /// Dinic's layered blocking flow.
    Dinic,
    /// FIFO Push–Relabel with global-relabeling and gap heuristics.
    PushRelabel,
    /// Capacity-scaling Ford–Fulkerson.
    CapacityScaling,
    /// Bulk-synchronous parallel Push–Relabel (deterministic for any
    /// thread count).
    ParallelPushRelabel,
}

impl Algorithm {
    /// Every implemented algorithm.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::FordFulkerson,
        Algorithm::EdmondsKarp,
        Algorithm::Dinic,
        Algorithm::PushRelabel,
        Algorithm::CapacityScaling,
        Algorithm::ParallelPushRelabel,
    ];

    /// Runs this algorithm on `net` from `s` to `t`.
    #[must_use]
    pub fn run(self, net: &FlowNetwork, s: VertexId, t: VertexId) -> FlowResult {
        self.run_cancellable(net, s, t, &Cancel::never())
            .expect("never-cancel solve cannot fail")
    }

    /// Like [`Algorithm::run`] but polls `cancel` at the algorithm's
    /// natural progress boundary (augmenting path, discharge, pulse) and
    /// returns [`Cancelled`] when the token fires.
    pub fn run_cancellable(
        self,
        net: &FlowNetwork,
        s: VertexId,
        t: VertexId,
        cancel: &Cancel,
    ) -> Result<FlowResult, Cancelled> {
        self.run_with_report(net, s, t, cancel).map(|(r, _)| r)
    }

    /// Like [`Algorithm::run_cancellable`] but also returns the solver's
    /// [`SolveReport`] execution counters.
    pub fn run_with_report(
        self,
        net: &FlowNetwork,
        s: VertexId,
        t: VertexId,
        cancel: &Cancel,
    ) -> Result<(FlowResult, SolveReport), Cancelled> {
        match self {
            Algorithm::FordFulkerson => ford_fulkerson::max_flow_with_report(net, s, t, cancel),
            Algorithm::EdmondsKarp => edmonds_karp::max_flow_with_report(net, s, t, cancel),
            Algorithm::Dinic => dinic::max_flow_with_report(net, s, t, cancel),
            Algorithm::PushRelabel => push_relabel::max_flow_with_report(net, s, t, cancel),
            Algorithm::CapacityScaling => capacity_scaling::max_flow_with_report(net, s, t, cancel),
            Algorithm::ParallelPushRelabel => parallel_push_relabel::max_flow_with_cancel(
                net,
                s,
                t,
                &parallel_push_relabel::PrConfig::default(),
                cancel,
            )
            .map(|run| (run.result, run.stats.report())),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Algorithm::FordFulkerson => "ford-fulkerson",
            Algorithm::EdmondsKarp => "edmonds-karp",
            Algorithm::Dinic => "dinic",
            Algorithm::PushRelabel => "push-relabel",
            Algorithm::CapacityScaling => "capacity-scaling",
            Algorithm::ParallelPushRelabel => "parallel-pr",
        };
        f.write_str(name)
    }
}
