//! Capacity-scaling Ford–Fulkerson: augment only along paths whose
//! bottleneck is at least a threshold Δ, halving Δ until 1. Runs in
//! `O(E² log U)` where `U` is the largest capacity — the classic
//! weakly-polynomial refinement in the lineage the paper cites
//! (Edmonds–Karp \[31\] through Goldberg–Rao \[32\]).

use std::collections::VecDeque;

use swgraph::{Capacity, EdgeId, FlowNetwork, VertexId};

use crate::cancel::{Cancel, Cancelled};
use crate::report::SolveReport;
use crate::residual::{FlowResult, Residual};

/// Computes the maximum `s`–`t` flow with capacity scaling.
///
/// # Example
/// ```
/// use swgraph::{FlowNetworkBuilder, VertexId};
/// let mut b = FlowNetworkBuilder::new(3);
/// b.add_edge(0, 1, 1_000_000);
/// b.add_edge(1, 2, 999_999);
/// let net = b.build();
/// let f = maxflow::capacity_scaling::max_flow(&net, VertexId::new(0), VertexId::new(2));
/// assert_eq!(f.value, 999_999);
/// ```
#[must_use]
pub fn max_flow(net: &FlowNetwork, s: VertexId, t: VertexId) -> FlowResult {
    max_flow_cancellable(net, s, t, &Cancel::never()).expect("never-cancel solve cannot fail")
}

/// [`max_flow`] with a cooperative [`Cancel`] token, polled once per
/// augmenting path.
pub fn max_flow_cancellable(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<FlowResult, Cancelled> {
    max_flow_with_report(net, s, t, cancel).map(|(r, _)| r)
}

/// [`max_flow_cancellable`] returning the [`SolveReport`] counters (Δ
/// scaling phases, augmenting paths, cancel polls) alongside the flow.
pub fn max_flow_with_report(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<(FlowResult, SolveReport), Cancelled> {
    let mut residual = Residual::new(net);
    let mut report = SolveReport::default();
    let n = net.num_vertices();
    if s == t || n == 0 || s.index() >= n || t.index() >= n {
        return Ok((residual.into_result(s), report));
    }
    let max_cap = (0..net.num_directed_edges() as u64)
        .map(|e| net.capacity(EdgeId::new(e)))
        .max()
        .unwrap_or(0);
    if max_cap <= 0 {
        return Ok((residual.into_result(s), report));
    }
    // Largest power of two not exceeding the largest capacity.
    let mut delta: Capacity = 1 << (63 - max_cap.leading_zeros().min(62));
    while delta >= 1 {
        report.phases += 1;
        while let Some((path, bottleneck)) = find_wide_path(&residual, s, t, delta) {
            report.cancel_polls += 1;
            cancel.check()?;
            report.augmenting_paths += 1;
            for e in path {
                residual.push(e, bottleneck);
            }
        }
        delta /= 2;
    }
    Ok((residual.into_result(s), report))
}

/// BFS restricted to residual capacity >= `delta`; returns the path and
/// its bottleneck.
fn find_wide_path(
    residual: &Residual<'_>,
    s: VertexId,
    t: VertexId,
    delta: Capacity,
) -> Option<(Vec<EdgeId>, Capacity)> {
    let net = residual.network();
    let n = net.num_vertices();
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[s.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        for e in net.out_edges(u) {
            if residual.residual_capacity(e) < delta {
                continue;
            }
            let v = net.head(e);
            if visited[v.index()] {
                continue;
            }
            visited[v.index()] = true;
            parent[v.index()] = Some(e);
            if v == t {
                let mut path = Vec::new();
                let mut bottleneck = Capacity::MAX;
                let mut cur = t;
                while cur != s {
                    let e = parent[cur.index()].expect("path back to s");
                    bottleneck = bottleneck.min(residual.residual_capacity(e));
                    path.push(e);
                    cur = net.tail(e);
                }
                path.reverse();
                return Some((path, bottleneck));
            }
            queue.push_back(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_flow;
    use swgraph::gen;
    use swgraph::FlowNetworkBuilder;

    #[test]
    fn clrs_network_value() {
        let mut b = FlowNetworkBuilder::new(6);
        b.add_edge(0, 1, 16);
        b.add_edge(0, 2, 13);
        b.add_edge(1, 2, 10);
        b.add_edge(2, 1, 4);
        b.add_edge(1, 3, 12);
        b.add_edge(3, 2, 9);
        b.add_edge(2, 4, 14);
        b.add_edge(4, 3, 7);
        b.add_edge(3, 5, 20);
        b.add_edge(4, 5, 4);
        let net = b.build();
        let f = max_flow(&net, VertexId::new(0), VertexId::new(5));
        assert_eq!(f.value, 23);
        check_flow(&net, VertexId::new(0), VertexId::new(5), &f).unwrap();
    }

    #[test]
    fn huge_capacities_terminate_quickly() {
        // The zigzag trap where plain FF with bad path choice needs |f*|
        // iterations; scaling needs O(log U) phases.
        let mut b = FlowNetworkBuilder::new(4);
        let big = 1 << 40;
        b.add_edge(0, 1, big);
        b.add_edge(0, 2, big);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, big);
        b.add_edge(2, 3, big);
        let net = b.build();
        let f = max_flow(&net, VertexId::new(0), VertexId::new(3));
        assert_eq!(f.value, 2 * big);
    }

    #[test]
    fn matches_dinic_on_random_graphs() {
        for seed in 0..10 {
            let n = 30;
            let edges = gen::erdos_renyi(n, 80, seed);
            let mut b = FlowNetworkBuilder::new(n);
            for (i, &(u, v)) in edges.iter().enumerate() {
                b.add_edge(u, v, 1 + (i as i64 * 7) % 100);
            }
            let net = b.build();
            let (s, t) = (VertexId::new(0), VertexId::new(n - 1));
            let f = max_flow(&net, s, t);
            assert_eq!(
                f.value,
                crate::dinic::max_flow(&net, s, t).value,
                "seed {seed}"
            );
            check_flow(&net, s, t, &f).unwrap();
        }
    }

    #[test]
    fn degenerate_cases() {
        let net = FlowNetworkBuilder::new(0).build();
        assert_eq!(max_flow(&net, VertexId::new(0), VertexId::new(1)).value, 0);
        let net = swgraph::FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
        assert_eq!(max_flow(&net, VertexId::new(0), VertexId::new(0)).value, 0);
        assert_eq!(max_flow(&net, VertexId::new(0), VertexId::new(1)).value, 1);
    }
}
