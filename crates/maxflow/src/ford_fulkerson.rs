//! The plain Ford–Fulkerson method \[10\]: repeatedly find *any* augmenting
//! path (DFS here) and augment along it — the sequential schema the paper
//! parallelizes (its Fig. 1).

use swgraph::{Capacity, EdgeId, FlowNetwork, VertexId};

use crate::cancel::{Cancel, Cancelled};
use crate::report::SolveReport;
use crate::residual::{FlowResult, Residual};

/// Computes the maximum `s`–`t` flow with DFS augmenting paths.
///
/// Runtime is `O(E * |f*|)` for integer capacities — fine for the
/// unit-capacity small-world graphs this workspace targets, and the
/// honest baseline for the paper's schema.
///
/// # Example
/// ```
/// use swgraph::{FlowNetwork, VertexId};
/// let net = FlowNetwork::from_undirected_unit(3, &[(0, 1), (1, 2)]);
/// let f = maxflow::ford_fulkerson::max_flow(&net, VertexId::new(0), VertexId::new(2));
/// assert_eq!(f.value, 1);
/// ```
#[must_use]
pub fn max_flow(net: &FlowNetwork, s: VertexId, t: VertexId) -> FlowResult {
    max_flow_cancellable(net, s, t, &Cancel::never()).expect("never-cancel solve cannot fail")
}

/// [`max_flow`] with a cooperative [`Cancel`] token, polled once per
/// augmenting path.
pub fn max_flow_cancellable(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<FlowResult, Cancelled> {
    max_flow_with_report(net, s, t, cancel).map(|(r, _)| r)
}

/// [`max_flow_cancellable`] returning the [`SolveReport`] counters
/// (augmenting paths, cancel polls) alongside the flow.
pub fn max_flow_with_report(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<(FlowResult, SolveReport), Cancelled> {
    let mut residual = Residual::new(net);
    let mut report = SolveReport::default();
    let n = net.num_vertices();
    if s == t || n == 0 || s.index() >= n || t.index() >= n {
        return Ok((residual.into_result(s), report));
    }
    while let Some((path, bottleneck)) = find_path_dfs(&residual, s, t) {
        report.cancel_polls += 1;
        cancel.check()?;
        report.augmenting_paths += 1;
        for e in path {
            residual.push(e, bottleneck);
        }
    }
    Ok((residual.into_result(s), report))
}

/// Iterative DFS for an augmenting path; returns the edge sequence and its
/// bottleneck residual capacity.
fn find_path_dfs(
    residual: &Residual<'_>,
    s: VertexId,
    t: VertexId,
) -> Option<(Vec<EdgeId>, Capacity)> {
    let net = residual.network();
    let n = net.num_vertices();
    let mut visited = vec![false; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut stack = vec![s];
    visited[s.index()] = true;
    while let Some(u) = stack.pop() {
        for e in net.out_edges(u) {
            if residual.residual_capacity(e) <= 0 {
                continue;
            }
            let v = net.head(e);
            if visited[v.index()] {
                continue;
            }
            visited[v.index()] = true;
            parent[v.index()] = Some(e);
            if v == t {
                let mut path = Vec::new();
                let mut cur = t;
                let mut bottleneck = Capacity::MAX;
                while cur != s {
                    let e = parent[cur.index()].expect("path back to s");
                    bottleneck = bottleneck.min(residual.residual_capacity(e));
                    path.push(e);
                    cur = net.tail(e);
                }
                path.reverse();
                return Some((path, bottleneck));
            }
            stack.push(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_flow;
    use swgraph::FlowNetworkBuilder;

    #[test]
    fn classic_clrs_network() {
        // CLRS figure 26.1-style network, known max flow 23.
        let mut b = FlowNetworkBuilder::new(6);
        b.add_edge(0, 1, 16);
        b.add_edge(0, 2, 13);
        b.add_edge(1, 2, 10);
        b.add_edge(2, 1, 4);
        b.add_edge(1, 3, 12);
        b.add_edge(3, 2, 9);
        b.add_edge(2, 4, 14);
        b.add_edge(4, 3, 7);
        b.add_edge(3, 5, 20);
        b.add_edge(4, 5, 4);
        let net = b.build();
        let f = max_flow(&net, VertexId::new(0), VertexId::new(5));
        assert_eq!(f.value, 23);
        check_flow(&net, VertexId::new(0), VertexId::new(5), &f).unwrap();
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (2, 3)]);
        let f = max_flow(&net, VertexId::new(0), VertexId::new(3));
        assert_eq!(f.value, 0);
    }

    #[test]
    fn source_equals_sink_is_zero() {
        let net = FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
        let f = max_flow(&net, VertexId::new(0), VertexId::new(0));
        assert_eq!(f.value, 0);
    }

    #[test]
    fn needs_flow_cancellation() {
        // The classic trap: a greedy DFS path may use the cross edge and
        // must be undone via the residual arc.
        let mut b = FlowNetworkBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(2, 3, 1);
        let net = b.build();
        let f = max_flow(&net, VertexId::new(0), VertexId::new(3));
        assert_eq!(f.value, 2);
        check_flow(&net, VertexId::new(0), VertexId::new(3), &f).unwrap();
    }
}
