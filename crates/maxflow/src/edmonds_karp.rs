//! Edmonds–Karp \[31\]: Ford–Fulkerson with BFS shortest augmenting paths,
//! `O(V E²)` — the "selecting the shortest augmenting paths" refinement
//! the paper relates its earlier-paths-first behaviour to (Sec. III-C).

use std::collections::VecDeque;

use swgraph::{Capacity, EdgeId, FlowNetwork, VertexId};

use crate::cancel::{Cancel, Cancelled};
use crate::report::SolveReport;
use crate::residual::{FlowResult, Residual};

/// Computes the maximum `s`–`t` flow with BFS shortest augmenting paths.
///
/// # Example
/// ```
/// use swgraph::{FlowNetwork, VertexId};
/// let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
/// let f = maxflow::edmonds_karp::max_flow(&net, VertexId::new(0), VertexId::new(3));
/// assert_eq!(f.value, 2);
/// ```
#[must_use]
pub fn max_flow(net: &FlowNetwork, s: VertexId, t: VertexId) -> FlowResult {
    max_flow_cancellable(net, s, t, &Cancel::never()).expect("never-cancel solve cannot fail")
}

/// [`max_flow`] with a cooperative [`Cancel`] token, polled once per
/// augmenting path.
pub fn max_flow_cancellable(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<FlowResult, Cancelled> {
    max_flow_with_report(net, s, t, cancel).map(|(r, _)| r)
}

/// [`max_flow_cancellable`] returning the [`SolveReport`] counters
/// (augmenting paths, cancel polls) alongside the flow.
pub fn max_flow_with_report(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<(FlowResult, SolveReport), Cancelled> {
    let mut residual = Residual::new(net);
    let mut report = SolveReport::default();
    let n = net.num_vertices();
    if s == t || n == 0 || s.index() >= n || t.index() >= n {
        return Ok((residual.into_result(s), report));
    }
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    loop {
        report.cancel_polls += 1;
        cancel.check()?;
        // BFS over positive-residual edges.
        parent.iter_mut().for_each(|p| *p = None);
        let mut visited = vec![false; n];
        visited[s.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        let mut found = false;
        'bfs: while let Some(u) = queue.pop_front() {
            for e in net.out_edges(u) {
                if residual.residual_capacity(e) <= 0 {
                    continue;
                }
                let v = net.head(e);
                if visited[v.index()] {
                    continue;
                }
                visited[v.index()] = true;
                parent[v.index()] = Some(e);
                if v == t {
                    found = true;
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
        if !found {
            break;
        }
        report.augmenting_paths += 1;
        // Walk back to find the bottleneck, then augment.
        let mut bottleneck = Capacity::MAX;
        let mut cur = t;
        while cur != s {
            let e = parent[cur.index()].expect("path back to s");
            bottleneck = bottleneck.min(residual.residual_capacity(e));
            cur = net.tail(e);
        }
        let mut cur = t;
        while cur != s {
            let e = parent[cur.index()].expect("path back to s");
            residual.push(e, bottleneck);
            cur = net.tail(e);
        }
    }
    Ok((residual.into_result(s), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_flow;
    use swgraph::FlowNetworkBuilder;

    #[test]
    fn agrees_with_hand_computed_value() {
        let mut b = FlowNetworkBuilder::new(4);
        b.add_edge(0, 1, 3);
        b.add_edge(0, 2, 2);
        b.add_edge(1, 2, 5);
        b.add_edge(1, 3, 2);
        b.add_edge(2, 3, 3);
        let net = b.build();
        let f = max_flow(&net, VertexId::new(0), VertexId::new(3));
        assert_eq!(f.value, 5);
        check_flow(&net, VertexId::new(0), VertexId::new(3), &f).unwrap();
    }

    #[test]
    fn zigzag_network_terminates_fast() {
        // The pathological network where naive FF can take |f*| rounds;
        // Edmonds-Karp needs O(VE) regardless of capacities.
        let mut b = FlowNetworkBuilder::new(4);
        let big = 1_000_000;
        b.add_edge(0, 1, big);
        b.add_edge(0, 2, big);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, big);
        b.add_edge(2, 3, big);
        let net = b.build();
        let f = max_flow(&net, VertexId::new(0), VertexId::new(3));
        assert_eq!(f.value, 2 * big);
    }

    #[test]
    fn unreachable_sink() {
        let net = FlowNetwork::from_undirected_unit(3, &[(0, 1)]);
        assert_eq!(max_flow(&net, VertexId::new(0), VertexId::new(2)).value, 0);
    }

    #[test]
    fn empty_network_is_zero() {
        let net = FlowNetworkBuilder::new(0).build();
        assert_eq!(max_flow(&net, VertexId::new(0), VertexId::new(0)).value, 0);
    }
}
