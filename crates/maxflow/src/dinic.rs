//! Dinic's algorithm \[30\]: layered (BFS-level) networks plus blocking
//! flows, `O(V² E)` in general and `O(E √V)` on unit-capacity graphs —
//! the primary correctness oracle of this workspace.

use std::collections::VecDeque;

use swgraph::{Capacity, EdgeId, FlowNetwork, VertexId};

use crate::cancel::{Cancel, Cancelled};
use crate::report::SolveReport;
use crate::residual::{FlowResult, Residual};

/// Computes the maximum `s`–`t` flow with Dinic's algorithm.
///
/// # Example
/// ```
/// use swgraph::{FlowNetwork, VertexId};
/// let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
/// let f = maxflow::dinic::max_flow(&net, VertexId::new(0), VertexId::new(3));
/// assert_eq!(f.value, 2);
/// ```
#[must_use]
pub fn max_flow(net: &FlowNetwork, s: VertexId, t: VertexId) -> FlowResult {
    max_flow_cancellable(net, s, t, &Cancel::never()).expect("never-cancel solve cannot fail")
}

/// [`max_flow`] with a cooperative [`Cancel`] token, polled once per BFS
/// phase and once per blocking-flow augmentation.
pub fn max_flow_cancellable(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<FlowResult, Cancelled> {
    max_flow_with_report(net, s, t, cancel).map(|(r, _)| r)
}

/// [`max_flow_cancellable`] returning the [`SolveReport`] counters (BFS
/// phases, augmenting paths, cancel polls) alongside the flow.
pub fn max_flow_with_report(
    net: &FlowNetwork,
    s: VertexId,
    t: VertexId,
    cancel: &Cancel,
) -> Result<(FlowResult, SolveReport), Cancelled> {
    let mut residual = Residual::new(net);
    let mut report = SolveReport::default();
    let n = net.num_vertices();
    if s == t || n == 0 || s.index() >= n || t.index() >= n {
        return Ok((residual.into_result(s), report));
    }
    let mut level: Vec<i32> = vec![-1; n];
    loop {
        report.cancel_polls += 1;
        cancel.check()?;
        // Build the level graph by BFS over positive-residual edges.
        level.iter_mut().for_each(|l| *l = -1);
        level[s.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for e in net.out_edges(u) {
                let v = net.head(e);
                if residual.residual_capacity(e) > 0 && level[v.index()] < 0 {
                    level[v.index()] = level[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[t.index()] < 0 {
            break;
        }
        report.phases += 1;
        // Blocking flow with the current-arc optimization: each vertex
        // remembers which out-edges it has exhausted this phase.
        let mut next_arc: Vec<Vec<EdgeId>> = Vec::with_capacity(n);
        for u in 0..n {
            let mut arcs: Vec<EdgeId> = net.out_edges(VertexId::new(u as u64)).collect();
            arcs.reverse(); // pop() walks the original order
            next_arc.push(arcs);
        }
        loop {
            report.cancel_polls += 1;
            cancel.check()?;
            let pushed = dfs_push(&mut residual, &level, &mut next_arc, s, t, Capacity::MAX);
            if pushed == 0 {
                break;
            }
            report.augmenting_paths += 1;
        }
    }
    Ok((residual.into_result(s), report))
}

/// Pushes up to `limit` flow along one level-respecting path via iterative
/// DFS; returns the amount actually pushed (0 when blocked).
fn dfs_push(
    residual: &mut Residual<'_>,
    level: &[i32],
    next_arc: &mut [Vec<EdgeId>],
    s: VertexId,
    t: VertexId,
    limit: Capacity,
) -> Capacity {
    let net = residual.network();
    // Stack of edges forming the current partial path.
    let mut path: Vec<EdgeId> = Vec::new();
    let mut cur = s;
    loop {
        if cur == t {
            let bottleneck = path
                .iter()
                .map(|&e| residual.residual_capacity(e))
                .min()
                .unwrap_or(limit)
                .min(limit);
            for &e in &path {
                residual.push(e, bottleneck);
            }
            return bottleneck;
        }
        let advanced = loop {
            let Some(&e) = next_arc[cur.index()].last() else {
                break None;
            };
            let v = net.head(e);
            if residual.residual_capacity(e) > 0 && level[v.index()] == level[cur.index()] + 1 {
                break Some(e);
            }
            next_arc[cur.index()].pop();
        };
        match advanced {
            Some(e) => {
                path.push(e);
                cur = net.head(e);
            }
            None => {
                // Dead end: retreat (or give up at the source).
                let Some(back) = path.pop() else {
                    return 0;
                };
                cur = net.tail(back);
                next_arc[cur.index()].pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_flow;
    use swgraph::gen;
    use swgraph::FlowNetworkBuilder;

    #[test]
    fn clrs_network_value() {
        let mut b = FlowNetworkBuilder::new(6);
        b.add_edge(0, 1, 16);
        b.add_edge(0, 2, 13);
        b.add_edge(1, 2, 10);
        b.add_edge(2, 1, 4);
        b.add_edge(1, 3, 12);
        b.add_edge(3, 2, 9);
        b.add_edge(2, 4, 14);
        b.add_edge(4, 3, 7);
        b.add_edge(3, 5, 20);
        b.add_edge(4, 5, 4);
        let net = b.build();
        let f = max_flow(&net, VertexId::new(0), VertexId::new(5));
        assert_eq!(f.value, 23);
        check_flow(&net, VertexId::new(0), VertexId::new(5), &f).unwrap();
    }

    #[test]
    fn agrees_with_edmonds_karp_on_random_graphs() {
        for seed in 0..10 {
            let edges = gen::erdos_renyi(40, 120, seed);
            let net = FlowNetwork::from_undirected_unit(40, &edges);
            let s = VertexId::new(0);
            let t = VertexId::new(39);
            let d = max_flow(&net, s, t);
            let ek = crate::edmonds_karp::max_flow(&net, s, t);
            assert_eq!(d.value, ek.value, "seed {seed}");
            check_flow(&net, s, t, &d).unwrap();
        }
    }

    #[test]
    fn wide_unit_bipartite() {
        // s=0 connects to 10 middles, all to t=11: flow 10.
        let mut b = FlowNetworkBuilder::new(12);
        for m in 1..=10 {
            b.add_edge(0, m, 1);
            b.add_edge(m, 11, 1);
        }
        let net = b.build();
        let f = max_flow(&net, VertexId::new(0), VertexId::new(11));
        assert_eq!(f.value, 10);
    }

    #[test]
    fn handles_out_of_range_source() {
        let net = FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
        let f = max_flow(&net, VertexId::new(5), VertexId::new(1));
        assert_eq!(f.value, 0);
    }
}
