//! Cross-validation of every sequential solver against each other on
//! random and adversarial networks, plus seeded randomized testing of the
//! max-flow/min-cut relationship.

use ffmr_prng::SplitMix64;
use maxflow::{min_cut, validate, Algorithm};
use swgraph::{gen, FlowNetwork, FlowNetworkBuilder, VertexId};

fn check_all_agree(net: &FlowNetwork, s: VertexId, t: VertexId) -> i64 {
    let oracle = Algorithm::Dinic.run(net, s, t);
    validate::check_flow(net, s, t, &oracle).expect("dinic produces a valid flow");
    for algo in Algorithm::ALL {
        let f = algo.run(net, s, t);
        assert_eq!(f.value, oracle.value, "{algo} disagrees with dinic");
        validate::check_flow(net, s, t, &f)
            .unwrap_or_else(|e| panic!("{algo} produced an invalid flow: {e}"));
    }
    let cut = min_cut::extract_min_cut(net, s, &oracle);
    assert_eq!(cut.value, oracle.value, "min cut != max flow");
    oracle.value
}

#[test]
fn all_algorithms_agree_on_small_world_graphs() {
    for seed in 0..5 {
        let n = 300;
        let edges = gen::barabasi_albert(n, 3, seed);
        let net = FlowNetwork::from_undirected_unit(n, &edges);
        let v = check_all_agree(&net, VertexId::new(0), VertexId::new(n - 1));
        assert!(v > 0, "BA graphs are connected");
    }
}

#[test]
fn all_algorithms_agree_on_watts_strogatz() {
    for seed in 0..5 {
        let n = 200;
        let edges = gen::watts_strogatz(n, 6, 0.2, seed);
        let net = FlowNetwork::from_undirected_unit(n, &edges);
        check_all_agree(&net, VertexId::new(0), VertexId::new(n / 2));
    }
}

#[test]
fn all_algorithms_agree_on_grids() {
    let net = FlowNetwork::from_undirected_unit(100, &gen::grid(10, 10));
    let v = check_all_agree(&net, VertexId::new(0), VertexId::new(99));
    // Corner degree bounds the flow on a unit grid.
    assert_eq!(v, 2);
}

#[test]
fn super_terminal_flow_grows_with_w() {
    let n = 800;
    let edges = gen::barabasi_albert(n, 4, 9);
    let base = FlowNetwork::from_undirected_unit(n, &edges);
    let mut last = 0;
    for w in [1usize, 4, 16] {
        let st = swgraph::super_st::attach_super_terminals(&base, w, 4, 31).unwrap();
        let v = check_all_agree(&st.network, st.source, st.sink);
        assert!(
            v >= last,
            "flow should not shrink as w grows ({last} -> {v} at w={w})"
        );
        last = v;
    }
    assert!(last > 0);
}

#[test]
fn directed_asymmetric_capacities() {
    let mut b = FlowNetworkBuilder::new(5);
    b.add_edge(0, 1, 7);
    b.add_edge(1, 2, 3);
    b.add_edge(2, 1, 9);
    b.add_edge(1, 3, 2);
    b.add_edge(2, 4, 8);
    b.add_edge(3, 4, 10);
    let net = b.build();
    check_all_agree(&net, VertexId::new(0), VertexId::new(4));
}

/// Random directed multigraphs with random capacities: every solver
/// agrees, every flow validates, min-cut matches. Cases come from a
/// seeded SplitMix64 stream, so the corpus is deterministic.
#[test]
fn solvers_agree_on_random_directed_networks() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0xD1D0 + case);
        let n = rng.gen_range(2u64..25);
        let count = rng.gen_range(0usize..80);
        let mut b = FlowNetworkBuilder::new(n);
        for _ in 0..count {
            b.add_edge(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(1i64..20),
            );
        }
        let net = b.build();
        let s = VertexId::new(rng.gen_range(0..n));
        let t = VertexId::new(rng.gen_range(0..n));
        if s == t {
            continue;
        }
        check_all_agree(&net, s, t);
    }
}

/// The bulk-synchronous parallel push-relabel must return the identical
/// per-edge flow assignment (and identical pulse/relabel counts) no
/// matter how many worker threads execute the pulses.
#[test]
fn parallel_pr_is_thread_count_invariant_on_random_networks() {
    use maxflow::parallel_push_relabel::{max_flow_with, PrConfig};
    for case in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(0x9A11 + case);
        let n = rng.gen_range(2u64..40);
        let count = rng.gen_range(0usize..120);
        let mut b = FlowNetworkBuilder::new(n);
        for _ in 0..count {
            b.add_edge(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(1i64..30),
            );
        }
        let net = b.build();
        let s = VertexId::new(0);
        let t = VertexId::new(n - 1);
        let config = |threads| PrConfig {
            threads,
            ..PrConfig::default()
        };
        let single = max_flow_with(&net, s, t, &config(1));
        validate::check_flow(&net, s, t, &single.result).expect("valid flow");
        for threads in [2, 3, 8] {
            let multi = max_flow_with(&net, s, t, &config(threads));
            assert_eq!(
                multi.result, single.result,
                "case {case}, {threads} threads"
            );
            assert_eq!(
                (multi.stats.passes, multi.stats.relabels, multi.stats.pushes),
                (
                    single.stats.passes,
                    single.stats.relabels,
                    single.stats.pushes
                ),
                "case {case}: schedule diverged at {threads} threads"
            );
        }
    }
}

/// Unit-capacity undirected graphs: flow is bounded by both terminal
/// degrees and equals the vertex connectivity bound on edges.
#[test]
fn unit_flow_bounded_by_terminal_degrees() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x0B0D + case);
        let n = rng.gen_range(2u64..30);
        let count = rng.gen_range(1usize..120);
        let edges: Vec<(u64, u64)> = (0..count)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .filter(|&(u, v)| u != v)
            .collect();
        let net = FlowNetwork::from_undirected_unit(n, &edges);
        let s = VertexId::new(0);
        let t = VertexId::new(n - 1);
        let v = check_all_agree(&net, s, t);
        // Parallel input edges merge by capacity summation, so the bound
        // is outgoing capacity, not degree.
        assert!(v <= net.capacity_out(s), "case {case}");
        assert!(v <= net.capacity_out(t), "case {case}");
    }
}

/// Augmenting capacity of one cut edge by delta raises the max flow by
/// at most delta (monotonicity / sensitivity property).
#[test]
fn flow_is_monotone_in_capacity() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x0770 + case);
        let n = rng.gen_range(3u64..15);
        let count = rng.gen_range(1usize..40);
        let bump = rng.gen_range(1i64..10);
        let edges: Vec<(u64, u64, i64)> = (0..count)
            .map(|_| {
                (
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(1i64..10),
                )
            })
            .collect();
        let build = |extra: i64| {
            let mut b = FlowNetworkBuilder::new(n);
            for (i, &(u, v, c)) in edges.iter().enumerate() {
                let c = if i == 0 { c + extra } else { c };
                b.add_edge(u, v, c);
            }
            b.build()
        };
        let s = VertexId::new(0);
        let t = VertexId::new(n - 1);
        let base = Algorithm::Dinic.run(&build(0), s, t).value;
        let bumped = Algorithm::Dinic.run(&build(bump), s, t).value;
        assert!(bumped >= base, "case {case}");
        assert!(bumped <= base + bump, "case {case}");
    }
}
