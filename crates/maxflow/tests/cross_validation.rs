//! Cross-validation of every sequential solver against each other on
//! random and adversarial networks, plus property-based testing of the
//! max-flow/min-cut relationship.

use maxflow::{min_cut, validate, Algorithm};
use proptest::prelude::*;
use swgraph::{gen, FlowNetwork, FlowNetworkBuilder, VertexId};

fn check_all_agree(net: &FlowNetwork, s: VertexId, t: VertexId) -> i64 {
    let oracle = Algorithm::Dinic.run(net, s, t);
    validate::check_flow(net, s, t, &oracle).expect("dinic produces a valid flow");
    for algo in Algorithm::ALL {
        let f = algo.run(net, s, t);
        assert_eq!(f.value, oracle.value, "{algo} disagrees with dinic");
        validate::check_flow(net, s, t, &f)
            .unwrap_or_else(|e| panic!("{algo} produced an invalid flow: {e}"));
    }
    let cut = min_cut::extract_min_cut(net, s, &oracle);
    assert_eq!(cut.value, oracle.value, "min cut != max flow");
    oracle.value
}

#[test]
fn all_algorithms_agree_on_small_world_graphs() {
    for seed in 0..5 {
        let n = 300;
        let edges = gen::barabasi_albert(n, 3, seed);
        let net = FlowNetwork::from_undirected_unit(n, &edges);
        let v = check_all_agree(&net, VertexId::new(0), VertexId::new(n - 1));
        assert!(v > 0, "BA graphs are connected");
    }
}

#[test]
fn all_algorithms_agree_on_watts_strogatz() {
    for seed in 0..5 {
        let n = 200;
        let edges = gen::watts_strogatz(n, 6, 0.2, seed);
        let net = FlowNetwork::from_undirected_unit(n, &edges);
        check_all_agree(&net, VertexId::new(0), VertexId::new(n / 2));
    }
}

#[test]
fn all_algorithms_agree_on_grids() {
    let net = FlowNetwork::from_undirected_unit(100, &gen::grid(10, 10));
    let v = check_all_agree(&net, VertexId::new(0), VertexId::new(99));
    // Corner degree bounds the flow on a unit grid.
    assert_eq!(v, 2);
}

#[test]
fn super_terminal_flow_grows_with_w() {
    let n = 800;
    let edges = gen::barabasi_albert(n, 4, 9);
    let base = FlowNetwork::from_undirected_unit(n, &edges);
    let mut last = 0;
    for w in [1usize, 4, 16] {
        let st = swgraph::super_st::attach_super_terminals(&base, w, 4, 31).unwrap();
        let v = check_all_agree(&st.network, st.source, st.sink);
        assert!(
            v >= last,
            "flow should not shrink as w grows ({last} -> {v} at w={w})"
        );
        last = v;
    }
    assert!(last > 0);
}

#[test]
fn directed_asymmetric_capacities() {
    let mut b = FlowNetworkBuilder::new(5);
    b.add_edge(0, 1, 7);
    b.add_edge(1, 2, 3);
    b.add_edge(2, 1, 9);
    b.add_edge(1, 3, 2);
    b.add_edge(2, 4, 8);
    b.add_edge(3, 4, 10);
    let net = b.build();
    check_all_agree(&net, VertexId::new(0), VertexId::new(4));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random directed multigraphs with random capacities: every solver
    /// agrees, every flow validates, min-cut matches.
    #[test]
    fn solvers_agree_on_random_directed_networks(
        n in 2u64..25,
        edges in proptest::collection::vec((0u64..25, 0u64..25, 1i64..20), 0..80),
        s_raw in 0u64..25,
        t_raw in 0u64..25,
    ) {
        let mut b = FlowNetworkBuilder::new(n);
        for (u, v, c) in edges {
            b.add_edge(u % n, v % n, c);
        }
        let net = b.build();
        let s = VertexId::new(s_raw % n);
        let t = VertexId::new(t_raw % n);
        prop_assume!(s != t);
        check_all_agree(&net, s, t);
    }

    /// Unit-capacity undirected graphs: flow is bounded by both terminal
    /// degrees and equals the vertex connectivity bound on edges.
    #[test]
    fn unit_flow_bounded_by_terminal_degrees(
        n in 2u64..30,
        edges in proptest::collection::vec((0u64..30, 0u64..30), 1..120),
    ) {
        let edges: Vec<(u64, u64)> = edges.into_iter()
            .map(|(u, v)| (u % n, v % n))
            .filter(|&(u, v)| u != v)
            .collect();
        let net = FlowNetwork::from_undirected_unit(n, &edges);
        let s = VertexId::new(0);
        let t = VertexId::new(n - 1);
        let v = check_all_agree(&net, s, t);
        // Parallel input edges merge by capacity summation, so the bound
        // is outgoing capacity, not degree.
        prop_assert!(v <= net.capacity_out(s));
        prop_assert!(v <= net.capacity_out(t));
    }

    /// Augmenting capacity of one cut edge by delta raises the max flow by
    /// at most delta (monotonicity / sensitivity property).
    #[test]
    fn flow_is_monotone_in_capacity(
        n in 3u64..15,
        edges in proptest::collection::vec((0u64..15, 0u64..15, 1i64..10), 1..40),
        bump in 1i64..10,
    ) {
        let edges: Vec<(u64, u64, i64)> =
            edges.into_iter().map(|(u, v, c)| (u % n, v % n, c)).collect();
        let build = |extra: i64| {
            let mut b = FlowNetworkBuilder::new(n);
            for (i, &(u, v, c)) in edges.iter().enumerate() {
                let c = if i == 0 { c + extra } else { c };
                b.add_edge(u, v, c);
            }
            b.build()
        };
        let s = VertexId::new(0);
        let t = VertexId::new(n - 1);
        let base = Algorithm::Dinic.run(&build(0), s, t).value;
        let bumped = Algorithm::Dinic.run(&build(bump), s, t).value;
        prop_assert!(bumped >= base);
        prop_assert!(bumped <= base + bump);
    }
}
