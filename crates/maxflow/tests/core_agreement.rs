//! Core-vs-full agreement corpus: over seeded small-world generators and
//! capacity profiles, every plan the contraction module produces must
//! yield a flow value byte-identical to a full-graph Dinic solve — the
//! acceptance bar for the serving tier's core planner.

use maxflow::contraction::{CoreIndex, CorePlan};
use swgraph::{gen, Capacity, FlowNetwork, FlowNetworkBuilder, VertexId};

/// Resolves a plan exactly as the serving tier does: tree-only answers
/// come straight from the plan, core answers are the min of the tree
/// limit and a solve on the contracted core.
fn planned_value(idx: &CoreIndex, s: VertexId, t: VertexId) -> Capacity {
    match idx.plan(s, t) {
        CorePlan::Direct(value) => value,
        CorePlan::Core {
            source,
            sink,
            limit,
            ..
        } => limit.min(maxflow::dinic::max_flow(idx.core_net(), source, sink).value),
    }
}

/// Deterministic non-unit capacity for edge index `i` of a graph.
fn varied_cap(i: usize) -> Capacity {
    1 + (i as Capacity * 13) % 17
}

fn assert_agreement(net: &FlowNetwork, label: &str) {
    let idx = CoreIndex::build(net);
    let n = net.num_vertices() as u64;
    // A spread of terminal pairs: extremes, mid-graph, adjacent ids —
    // enough to hit core-core, periphery-core and periphery-periphery
    // combinations across the corpus.
    let pairs = [
        (0, n - 1),
        (1, n / 2),
        (n / 3, n - 2),
        (n / 2, n / 2 + 1),
        (2, 3),
        (n - 1, 0),
    ];
    for &(s, t) in &pairs {
        let (s, t) = (VertexId::new(s), VertexId::new(t));
        let full = maxflow::dinic::max_flow(net, s, t).value;
        let planned = planned_value(&idx, s, t);
        assert_eq!(
            planned,
            full,
            "{label}: plan disagrees with full solve for ({}, {}) \
             [core {} / periphery {}]",
            s.index(),
            t.index(),
            idx.core_vertex_count(),
            idx.periphery_vertex_count()
        );
    }
}

#[test]
fn erdos_renyi_unit_capacities_agree() {
    // Sparse ER leaves a real periphery; denser ER is mostly core.
    for seed in 0..8 {
        for &(n, m) in &[(60u64, 55u64), (60, 70), (60, 120)] {
            let edges = gen::erdos_renyi(n, m, seed);
            let net = FlowNetwork::from_undirected_unit(n, &edges);
            assert_agreement(&net, &format!("er n={n} m={m} seed={seed}"));
        }
    }
}

#[test]
fn erdos_renyi_varied_capacities_agree() {
    for seed in 0..8 {
        let edges = gen::erdos_renyi(50, 60, seed);
        let mut b = FlowNetworkBuilder::new(50);
        for (i, &(u, v)) in edges.iter().enumerate() {
            b.add_edge(u, v, varied_cap(i));
            b.add_edge(v, u, varied_cap(i + 1));
        }
        let net = b.build();
        assert_agreement(&net, &format!("er-varied seed={seed}"));
    }
}

#[test]
fn barabasi_albert_trees_and_dense_cores_agree() {
    for seed in 0..6 {
        // m=1: a pure tree, the all-periphery extreme.
        let edges = gen::barabasi_albert(80, 1, seed);
        let net = FlowNetwork::from_undirected_unit(80, &edges);
        assert_agreement(&net, &format!("ba m=1 seed={seed}"));
        // m=2: scale-free with a large core and pendant fringes.
        let edges = gen::barabasi_albert(80, 2, seed);
        let net = FlowNetwork::from_undirected_unit(80, &edges);
        assert_agreement(&net, &format!("ba m=2 seed={seed}"));
    }
}

#[test]
fn watts_strogatz_small_worlds_agree() {
    for seed in 0..6 {
        let edges = gen::watts_strogatz(70, 4, 0.2, seed);
        let net = FlowNetwork::from_undirected_unit(70, &edges);
        assert_agreement(&net, &format!("ws seed={seed}"));
    }
}

#[test]
fn hybrid_core_with_attached_trees_agrees() {
    // A dense ER core with explicit pendant chains and stars grafted on:
    // guarantees deep periphery trees (the pure generators rarely make
    // chains longer than 2) plus varied capacities on the tree edges.
    for seed in 0..5 {
        let core_n = 30u64;
        let edges = gen::erdos_renyi(core_n, 80, seed);
        let total = core_n + 12;
        let mut b = FlowNetworkBuilder::new(total);
        for (i, &(u, v)) in edges.iter().enumerate() {
            b.add_edge(u, v, varied_cap(i));
            b.add_edge(v, u, varied_cap(i + 3));
        }
        // Chain of depth 4 off vertex 0: 30-31-32-33.
        let mut prev = 0u64;
        for (i, x) in (core_n..core_n + 4).enumerate() {
            b.add_edge(prev, x, varied_cap(7 * i + 1));
            b.add_edge(x, prev, varied_cap(5 * i + 2));
            prev = x;
        }
        // Star off vertex 5: centre 34, leaves 35..38.
        b.add_edge(5, core_n + 4, 9);
        b.add_edge(core_n + 4, 5, 4);
        for x in core_n + 5..core_n + 9 {
            b.add_edge(core_n + 4, x, 2);
            b.add_edge(x, core_n + 4, 6);
        }
        // A second chain off vertex 9 sharing no anchor: 39-40-41.
        let mut prev = 9u64;
        for x in core_n + 9..total {
            b.add_edge(prev, x, 3);
            b.add_edge(x, prev, 8);
            prev = x;
        }
        let net = b.build();
        let idx = CoreIndex::build(&net);
        assert!(
            idx.periphery_vertex_count() >= 12,
            "grafted trees must peel"
        );
        // Exhaustive pairs over the interesting vertices: tree tips,
        // tree interiors, anchors, and far core vertices.
        let interesting: Vec<u64> = vec![0, 5, 9, 20, 33, 34, 38, 41, 31, 36];
        for &s in &interesting {
            for &t in &interesting {
                if s == t {
                    continue;
                }
                let (sv, tv) = (VertexId::new(s), VertexId::new(t));
                let full = maxflow::dinic::max_flow(&net, sv, tv).value;
                assert_eq!(
                    planned_value(&idx, sv, tv),
                    full,
                    "hybrid seed={seed} terminals ({s},{t})"
                );
            }
        }
    }
}
