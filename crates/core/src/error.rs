//! Error type for FFMR drivers.

use std::error::Error;
use std::fmt;

use mapreduce::MrError;

/// Errors surfaced by the FFMR drivers.
#[derive(Debug)]
#[non_exhaustive]
pub enum FfError {
    /// An underlying MapReduce job failed.
    Mr(MrError),
    /// The configuration is invalid (e.g. source equals sink).
    InvalidConfig(String),
    /// The round limit was reached before the movement counters
    /// signalled termination.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// The run was cancelled through [`FfHooks`](crate::FfHooks) (e.g. a
    /// serving-layer timeout) before termination.
    Cancelled {
        /// Rounds completed before cancellation was observed.
        rounds_completed: usize,
    },
    /// A checkpoint manifest was missing, corrupt, or written by an
    /// incompatible configuration, so the run cannot be resumed.
    Checkpoint(String),
    /// An injected driver crash (see
    /// [`CrashPoint`](crate::CrashPoint)) fired — the fault-injection
    /// analogue of the driver process dying. The DFS retains everything
    /// written so far, including the latest checkpoint manifest.
    CrashInjected {
        /// The round during/after which the crash fired.
        round: usize,
    },
}

impl fmt::Display for FfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FfError::Mr(e) => write!(f, "mapreduce job failed: {e}"),
            FfError::InvalidConfig(m) => write!(f, "invalid ffmr config: {m}"),
            FfError::RoundLimitExceeded { limit } => {
                write!(f, "round limit of {limit} exceeded before termination")
            }
            FfError::Cancelled { rounds_completed } => {
                write!(f, "run cancelled after {rounds_completed} rounds")
            }
            FfError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            FfError::CrashInjected { round } => {
                write!(f, "injected driver crash at round {round}")
            }
        }
    }
}

impl Error for FfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FfError::Mr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MrError> for FfError {
    fn from(e: MrError) -> Self {
        FfError::Mr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = FfError::from(MrError::FileNotFound("x".into()));
        assert!(e.to_string().contains("x"));
        assert!(e.source().is_some());
        assert!(FfError::InvalidConfig("s == t".into())
            .to_string()
            .contains("s == t"));
        assert!(FfError::RoundLimitExceeded { limit: 9 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<FfError>();
    }
}
