//! FFMR: the MapReduce-based Ford–Fulkerson maximum-flow algorithm for
//! large small-world network graphs (Halim, Yap & Wu, ICDCS 2011).
//!
//! The algorithm finds augmenting paths *incrementally and speculatively*:
//! every vertex holding an "excess path" (a partial path from the source,
//! or to the sink) extends it to its neighbors each MapReduce round.
//! Bi-directional search doubles the active frontier; storing multiple
//! excess paths per vertex keeps vertices active as the residual network
//! changes; an accumulator accepts conflict-free paths greedily. Five
//! variants ([`FfVariant`]) reproduce the paper's optimization ladder:
//!
//! | Variant | Adds |
//! |---------|------|
//! | FF1 | baseline: speculative execution + bi-directional search + multiple excess paths |
//! | FF2 | stateful `aug_proc` service accepting augmenting paths outside MR |
//! | FF3 | schimmy: master vertex records are never shuffled |
//! | FF4 | pooled objects (allocation elimination) |
//! | FF5 | `k = in-degree` + remembered extensions (no redundant re-sends) |
//!
//! # Example
//!
//! ```
//! use mapreduce::{ClusterConfig, MrRuntime};
//! use swgraph::{gen, FlowNetwork, VertexId};
//! use ffmr_core::{FfConfig, FfVariant};
//!
//! # fn main() -> Result<(), ffmr_core::FfError> {
//! let edges = gen::barabasi_albert(200, 3, 7);
//! let net = FlowNetwork::from_undirected_unit(200, &edges);
//! let st = swgraph::super_st::attach_super_terminals(&net, 2, 3, 1).unwrap();
//!
//! let mut rt = MrRuntime::new(ClusterConfig::small_cluster(4));
//! let config = FfConfig::new(st.source, st.sink).variant(FfVariant::ff5());
//! let run = ffmr_core::run_max_flow(&mut rt, &st.network, &config)?;
//! assert!(run.max_flow_value > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accumulator;
pub mod algo;
pub mod aug_service;
pub mod augmented;
pub mod checkpoint;
pub mod error;
pub mod map_reduce_fns;
pub mod mr_bfs;
pub mod mr_components;
pub mod mr_hadi;
pub mod mr_min_cut;
pub mod mr_mst;
pub mod mr_push_relabel;
pub mod path;
pub mod pregel_ff;
pub mod round0;
pub mod verify;
pub mod vertex;
pub mod wire;

pub use accumulator::Accumulator;
pub use algo::{
    history_path, resume_max_flow, run_max_flow, CrashPoint, FfConfig, FfHooks, FfRun, FfVariant,
    KPolicy, RoundStats,
};
pub use aug_service::AugProc;
pub use augmented::AugmentedEdges;
pub use error::FfError;
pub use path::{ExcessPath, PathEdge};
pub use vertex::{VertexEdge, VertexValue};
pub use wire::{ff_task_runner, ff_wire_params, FF_JOB_KIND};
