//! Connected components on MapReduce — the "s-t graph connectivity"
//! family the paper's related work surveys (Karloff, Suri &
//! Vassilvitskii's MR model paper, its reference \[15\], uses precisely
//! this problem to exercise the model).
//!
//! Algorithm: hash-to-min label propagation. Every vertex holds the
//! smallest vertex id it has heard of; each round it broadcasts its label
//! to its neighbors and keeps the minimum of what arrives. Rounds are
//! `O(D)` — small on the small-world graphs this workspace targets, the
//! same property FFMR rides on.
//!
//! Also answers s–t *connectivity* directly: `s` and `t` are connected
//! iff they end with equal labels.

use mapreduce::driver::round_path;
use mapreduce::encode::{get_varint, put_varint};
use mapreduce::error::DecodeError;
use mapreduce::stats::ChainStats;
use mapreduce::{Datum, JobBuilder, MapContext, MrRuntime, ReduceContext};
use swgraph::FlowNetwork;

use crate::error::FfError;
use crate::round0;

/// Per-vertex component state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CcValue {
    /// Smallest vertex id seen so far (the tentative component label).
    pub label: u64,
    /// Whether the label changed last round (only changed labels
    /// propagate, bounding message volume).
    pub fresh: bool,
    /// Neighbor ids; empty marks a fragment.
    pub edges: Vec<u64>,
}

impl Datum for CcValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(self.label, buf);
        buf.push(u8::from(self.fresh));
        put_varint(self.edges.len() as u64, buf);
        for &e in &self.edges {
            put_varint(e, buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let label = get_varint(input)?;
        let (&flag, rest) = input
            .split_first()
            .ok_or_else(|| DecodeError::new("truncated cc flag"))?;
        *input = rest;
        let n = get_varint(input)? as usize;
        let mut edges = Vec::with_capacity(n.min(input.len()));
        for _ in 0..n {
            edges.push(get_varint(input)?);
        }
        Ok(Self {
            label,
            fresh: flag != 0,
            edges,
        })
    }
}

/// The result of a components run.
#[derive(Debug, Clone)]
pub struct ComponentsRun {
    /// `(vertex, component label)` pairs, sorted by vertex.
    pub labels: Vec<(u64, u64)>,
    /// Number of distinct components.
    pub component_count: usize,
    /// MR rounds executed (excluding round 0).
    pub rounds: usize,
    /// Per-round stats.
    pub stats: ChainStats,
}

impl ComponentsRun {
    /// Label of `vertex`, if it exists in the graph.
    #[must_use]
    pub fn label(&self, vertex: u64) -> Option<u64> {
        self.labels
            .binary_search_by_key(&vertex, |&(v, _)| v)
            .ok()
            .map(|i| self.labels[i].1)
    }

    /// Whether two vertices ended up in the same component.
    #[must_use]
    pub fn connected(&self, a: u64, b: u64) -> bool {
        match (self.label(a), self.label(b)) {
            (Some(la), Some(lb)) => la == lb,
            _ => false,
        }
    }
}

/// Runs label-propagation connected components over `net`.
///
/// # Errors
/// Propagates MR failures.
pub fn run_components(
    rt: &mut MrRuntime,
    net: &FlowNetwork,
    base_path: &str,
    reducers: usize,
) -> Result<ComponentsRun, FfError> {
    let raw = format!("{base_path}/raw-edges");
    round0::load_raw_edges(rt, net, &raw, reducers)?;

    let seed_job = JobBuilder::new(format!("{base_path}-round0"))
        .input(&raw)
        .output(round_path(base_path, 0))
        .reducers(reducers)
        .map(
            |u: &u64, e: &round0::RawEdge, ctx: &mut MapContext<u64, u64>| {
                ctx.emit(*u, e.to);
                ctx.emit(e.to, *u);
            },
        )
        .reduce(
            |u: &u64,
             values: &mut dyn Iterator<Item = u64>,
             ctx: &mut ReduceContext<u64, CcValue>| {
                let mut edges: Vec<u64> = values.collect();
                edges.sort_unstable();
                edges.dedup();
                ctx.emit(
                    *u,
                    CcValue {
                        label: *u,
                        fresh: true,
                        edges,
                    },
                );
            },
        );
    let mut stats = ChainStats::new();
    stats.push(rt.run(seed_job).map_err(FfError::Mr)?);

    let mut round = 1usize;
    loop {
        let input = round_path(base_path, round - 1);
        let output = round_path(base_path, round);
        let job = JobBuilder::new(format!("{base_path}-round{round}"))
            .input(&input)
            .output(&output)
            .reducers(reducers)
            .map(|u: &u64, v: &CcValue, ctx: &mut MapContext<u64, CcValue>| {
                if v.fresh {
                    for &to in &v.edges {
                        ctx.emit(
                            to,
                            CcValue {
                                label: v.label,
                                fresh: false,
                                edges: Vec::new(),
                            },
                        );
                    }
                }
                let mut master = v.clone();
                master.fresh = false;
                ctx.emit(*u, master);
            })
            .reduce(
                |u: &u64,
                 values: &mut dyn Iterator<Item = CcValue>,
                 ctx: &mut ReduceContext<u64, CcValue>| {
                    let mut master: Option<CcValue> = None;
                    let mut best: Option<u64> = None;
                    for v in values {
                        if v.edges.is_empty() {
                            best = Some(best.map_or(v.label, |b: u64| b.min(v.label)));
                        } else {
                            master = Some(v);
                        }
                    }
                    let Some(mut master) = master else { return };
                    if best.is_some_and(|b| b < master.label) {
                        master.label = best.expect("checked");
                        master.fresh = true;
                        ctx.incr("relabeled", 1);
                    }
                    ctx.emit(*u, master);
                },
            );
        let job_stats = rt.run(job).map_err(FfError::Mr)?;
        let relabeled = job_stats.counter("relabeled");
        stats.push(job_stats);
        mapreduce::driver::collect_garbage(rt.dfs_mut(), base_path, round, 2);
        if relabeled == 0 {
            break;
        }
        round += 1;
        if round > net.num_vertices() + 2 {
            return Err(FfError::RoundLimitExceeded {
                limit: net.num_vertices() + 2,
            });
        }
    }

    let mut labels: Vec<(u64, u64)> = rt
        .dfs()
        .read_records::<u64, CcValue>(&round_path(base_path, round))
        .map_err(FfError::Mr)?
        .into_iter()
        .map(|(u, v)| (u, v.label))
        .collect();
    labels.sort_unstable();
    let mut distinct: Vec<u64> = labels.iter().map(|&(_, l)| l).collect();
    distinct.sort_unstable();
    distinct.dedup();
    Ok(ComponentsRun {
        component_count: distinct.len(),
        rounds: round,
        labels,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::ClusterConfig;
    use swgraph::gen;

    fn runtime() -> MrRuntime {
        MrRuntime::new(ClusterConfig::small_cluster(2))
    }

    #[test]
    fn cc_value_round_trip() {
        let v = CcValue {
            label: 7,
            fresh: true,
            edges: vec![1, 2, 900],
        };
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut s = buf.as_slice();
        assert_eq!(CcValue::decode(&mut s).unwrap(), v);
    }

    #[test]
    fn two_components_get_two_labels() {
        let net = FlowNetwork::from_undirected_unit(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let mut rt = runtime();
        let run = run_components(&mut rt, &net, "cc", 2).unwrap();
        assert_eq!(run.component_count, 2);
        assert!(run.connected(0, 2));
        assert!(run.connected(3, 5));
        assert!(!run.connected(0, 3));
        assert_eq!(run.label(0), Some(0));
        assert_eq!(run.label(5), Some(3));
        assert_eq!(run.label(99), None);
    }

    #[test]
    fn matches_in_memory_components_on_random_graphs() {
        for seed in 0..4 {
            let n = 120;
            let edges = gen::erdos_renyi(n, 90, seed); // sparse => several comps
            let net = FlowNetwork::from_undirected_unit(n, &edges);
            let mut rt = runtime();
            let run = run_components(&mut rt, &net, "cc", 3).unwrap();
            let expected = swgraph::props::component_sizes(&net);
            // The MR run only sees vertices with edges; isolated vertices
            // are singleton components not present in the edge records.
            let isolated = (0..n)
                .filter(|&v| net.degree(swgraph::VertexId::new(v)) == 0)
                .count();
            assert_eq!(
                run.component_count + isolated,
                expected.len(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rounds_scale_with_diameter_not_size() {
        let n = 500;
        let net = FlowNetwork::from_undirected_unit(n, &gen::barabasi_albert(n, 3, 5));
        let mut rt = runtime();
        let run = run_components(&mut rt, &net, "cc", 4).unwrap();
        assert_eq!(run.component_count, 1);
        let d = swgraph::bfs::estimate_diameter(&net, 8, 1).max_observed as usize;
        assert!(
            run.rounds <= 2 * d + 3,
            "rounds {} vs diameter {d}",
            run.rounds
        );
    }

    #[test]
    fn s_t_connectivity_answers() {
        let net = FlowNetwork::from_undirected_unit(5, &[(0, 1), (2, 3), (3, 4)]);
        let mut rt = runtime();
        let run = run_components(&mut rt, &net, "cc", 2).unwrap();
        assert!(run.connected(2, 4));
        assert!(!run.connected(1, 4));
    }
}
