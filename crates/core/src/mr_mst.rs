//! Borůvka minimum spanning forests on MapReduce — the "MST" entry in
//! the paper's related-work survey of MR graph algorithms (its reference
//! \[15\], Karloff, Suri & Vassilvitskii).
//!
//! One Borůvka phase per MR round: every vertex reports its component's
//! candidate minimum outgoing edges to a stateful `mst_proc` service —
//! the same architectural move as FF2's `aug_proc` (the candidate set is
//! globally small, one edge per component, so it belongs outside the
//! shuffle). Between rounds the driver union-finds the candidates,
//! accumulates chosen forest edges, and broadcasts the relabel map as a
//! side blob, exactly like `AugmentedEdges`. Components at least halve
//! each phase, so the chain runs `O(log V)` rounds.
//!
//! Ties break on `(weight, u, v)`, making the effective weights distinct;
//! the resulting forest is therefore *identical* to Kruskal's, which the
//! tests exploit.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use ffmr_sync::Mutex;
use mapreduce::driver::{round_path, side_path};
use mapreduce::encode::{get_varint, put_varint};
use mapreduce::error::DecodeError;
use mapreduce::stats::ChainStats;
use mapreduce::{Datum, JobBuilder, MapContext, MrRuntime, ReduceContext, Service};
use swgraph::mst::{SpanningForest, UnionFind, WeightedEdge};
use swgraph::FlowNetwork;

use crate::error::FfError;

/// Per-vertex MST state: its component label and weighted adjacency with
/// the last-known component of each neighbor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MstValue {
    /// Current component label.
    pub component: u64,
    /// `(neighbor, weight, neighbor component)` triples.
    pub edges: Vec<(u64, i64, u64)>,
}

impl Datum for MstValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(self.component, buf);
        put_varint(self.edges.len() as u64, buf);
        for &(to, w, comp) in &self.edges {
            put_varint(to, buf);
            w.encode(buf);
            put_varint(comp, buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let component = get_varint(input)?;
        let n = get_varint(input)? as usize;
        let mut edges = Vec::with_capacity(n.min(input.len()));
        for _ in 0..n {
            edges.push((get_varint(input)?, i64::decode(input)?, get_varint(input)?));
        }
        Ok(Self { component, edges })
    }
}

/// Candidate edge ordering key: distinct for distinct edges, so each
/// component has a unique minimum.
fn edge_key(w: i64, u: u64, v: u64) -> (i64, u64, u64) {
    (w, u.min(v), u.max(v))
}

/// The stateful candidate collector (the `aug_proc` of MST).
#[derive(Debug, Default)]
pub struct MstProc {
    /// Per component: the minimum outgoing edge seen this round.
    best: Mutex<HashMap<u64, WeightedEdge>>,
}

impl MstProc {
    /// A fresh collector.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Offers a candidate outgoing edge for `component`.
    pub fn offer(&self, component: u64, u: u64, v: u64, w: i64) {
        let mut best = self.best.lock();
        match best.get(&component) {
            Some(&(bu, bv, bw)) if edge_key(bw, bu, bv) <= edge_key(w, u, v) => {}
            _ => {
                best.insert(component, (u, v, w));
            }
        }
    }

    fn take(&self) -> HashMap<u64, WeightedEdge> {
        std::mem::take(&mut self.best.lock())
    }
}

impl Service for MstProc {
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Serialized relabel map (old component -> new component).
fn relabel_blob(map: &HashMap<u64, u64>) -> Vec<u8> {
    let mut entries: Vec<(u64, u64)> = map.iter().map(|(&a, &b)| (a, b)).collect();
    entries.sort_unstable();
    let mut buf = Vec::new();
    put_varint(entries.len() as u64, &mut buf);
    for (a, b) in entries {
        put_varint(a, &mut buf);
        put_varint(b, &mut buf);
    }
    buf
}

/// The result of an MR Borůvka run.
#[derive(Debug, Clone)]
pub struct MstRun {
    /// The minimum spanning forest.
    pub forest: SpanningForest,
    /// Borůvka phases executed (= MR rounds after round 0).
    pub phases: usize,
    /// Per-round MR stats.
    pub stats: ChainStats,
}

/// Runs Borůvka over `net` with `weights[e/2]` as the weight of edge
/// pair `e` (one weight per undirected pair, in pair order).
///
/// # Errors
/// Propagates MR failures; errors if `weights` does not match the edge
/// count.
pub fn run_mst(
    rt: &mut MrRuntime,
    net: &FlowNetwork,
    weights: &[i64],
    base_path: &str,
    reducers: usize,
) -> Result<MstRun, FfError> {
    if weights.len() != net.num_edge_pairs() {
        return Err(FfError::InvalidConfig(format!(
            "{} weights for {} edge pairs",
            weights.len(),
            net.num_edge_pairs()
        )));
    }
    // Load raw weighted edges.
    let raw = format!("{base_path}/raw-edges");
    let records = (0..net.num_edge_pairs()).map(|p| {
        let e = swgraph::EdgeId::new(2 * p as u64);
        (net.tail(e).raw(), (net.head(e).raw(), weights[p]))
    });
    rt.dfs_mut()
        .write_records(&raw, reducers.max(1), records)
        .map_err(FfError::Mr)?;

    // Round 0: build vertex records (component = self).
    let seed_job = JobBuilder::new(format!("{base_path}-round0"))
        .input(&raw)
        .output(round_path(base_path, 0))
        .reducers(reducers)
        .map(
            |u: &u64, e: &(u64, i64), ctx: &mut MapContext<u64, (u64, i64)>| {
                ctx.emit(*u, *e);
                ctx.emit(e.0, (*u, e.1));
            },
        )
        .reduce(
            |u: &u64,
             values: &mut dyn Iterator<Item = (u64, i64)>,
             ctx: &mut ReduceContext<u64, MstValue>| {
                let mut edges: Vec<(u64, i64, u64)> = values.map(|(to, w)| (to, w, to)).collect();
                edges.sort_unstable();
                edges.dedup();
                ctx.emit(
                    *u,
                    MstValue {
                        component: *u,
                        edges,
                    },
                );
            },
        );
    let mut stats = ChainStats::new();
    stats.push(rt.run(seed_job).map_err(FfError::Mr)?);

    let mst_proc = MstProc::new();
    let mut chosen: Vec<WeightedEdge> = Vec::new();
    let mut relabel: HashMap<u64, u64> = HashMap::new();
    let mut phase = 1usize;
    loop {
        let input = round_path(base_path, phase - 1);
        let output = round_path(base_path, phase);
        let blob_path = side_path(base_path, "relabel", phase - 1);
        rt.dfs_mut().write_blob(&blob_path, relabel_blob(&relabel));
        let map_relabel = Arc::new(relabel.clone());

        let job = JobBuilder::new(format!("{base_path}-phase{phase}"))
            .input(&input)
            .output(&output)
            .reducers(reducers)
            .side_blob(&blob_path)
            .attach_service("mst_proc", Arc::clone(&mst_proc) as Arc<dyn Service>)
            .map(
                move |u: &u64, v: &MstValue, ctx: &mut MapContext<u64, MstValue>| {
                    let mut v = v.clone();
                    let resolve = |c: u64| map_relabel.get(&c).copied().unwrap_or(c);
                    v.component = resolve(v.component);
                    for e in &mut v.edges {
                        e.2 = resolve(e.2);
                    }
                    // Offer this vertex's best outgoing edge.
                    let best = v
                        .edges
                        .iter()
                        .filter(|&&(_, _, comp)| comp != v.component)
                        .min_by_key(|&&(to, w, _)| edge_key(w, *u, to));
                    if let Some(&(to, w, _)) = best {
                        let svc: &MstProc = ctx.service("mst_proc").expect("mst_proc attached");
                        svc.offer(v.component, *u, to, w);
                    }
                    ctx.emit(*u, v);
                },
            )
            .reduce(
                |u: &u64,
                 values: &mut dyn Iterator<Item = MstValue>,
                 ctx: &mut ReduceContext<u64, MstValue>| {
                    for v in values {
                        ctx.emit(*u, v);
                    }
                },
            );
        let job_stats = rt.run(job).map_err(FfError::Mr)?;
        stats.push(job_stats);
        mapreduce::driver::collect_garbage(rt.dfs_mut(), base_path, phase, 2);

        // Master step: union the candidates, build the next relabel map.
        let candidates = mst_proc.take();
        if candidates.is_empty() {
            break;
        }

        // Each endpoint's current component: its vertex id chained
        // through the accumulated relabel map.
        let resolve = |mut c: u64| -> u64 {
            while let Some(&next) = relabel.get(&c) {
                if next == c {
                    break;
                }
                c = next;
            }
            c
        };

        // Two components may nominate the same edge; dedup before union.
        let mut edge_set: Vec<WeightedEdge> = candidates.values().copied().collect();
        edge_set.sort_by_key(|&(u, v, w)| edge_key(w, u, v));
        edge_set.dedup();

        // Dense union-find over the component labels these edges touch.
        let mut index: HashMap<u64, usize> = HashMap::new();
        let mut labels: Vec<u64> = Vec::new();
        let resolved: Vec<(u64, u64, WeightedEdge)> = edge_set
            .iter()
            .map(|&(u, v, w)| (resolve(u), resolve(v), (u, v, w)))
            .collect();
        for &(cu, cv, _) in &resolved {
            for c in [cu, cv] {
                index.entry(c).or_insert_with(|| {
                    labels.push(c);
                    labels.len() - 1
                });
            }
        }
        let mut uf = UnionFind::new(labels.len());
        let mut merged_any = false;
        for (cu, cv, (u, v, w)) in resolved {
            if uf.union(index[&cu], index[&cv]) {
                chosen.push((u.min(v), u.max(v), w));
                merged_any = true;
            }
        }
        if !merged_any {
            break;
        }

        // Merged sets take the minimum member label as their new name.
        let mut root_min: HashMap<usize, u64> = HashMap::new();
        for (i, &label) in labels.iter().enumerate() {
            let root = uf.find(i);
            root_min
                .entry(root)
                .and_modify(|m| *m = (*m).min(label))
                .or_insert(label);
        }
        for (i, &label) in labels.iter().enumerate() {
            let new_label = root_min[&uf.find(i)];
            if new_label != label {
                relabel.insert(label, new_label);
            }
        }
        phase += 1;
        if phase > 2 * (64 - (net.num_vertices() as u64).leading_zeros() as usize) + 8 {
            return Err(FfError::RoundLimitExceeded { limit: phase });
        }
    }

    chosen.sort_by_key(|&(u, v, w)| (w, u, v));
    let total_weight = chosen.iter().map(|&(_, _, w)| w).sum();
    Ok(MstRun {
        forest: SpanningForest {
            edges: chosen,
            total_weight,
        },
        phases: phase,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::ClusterConfig;
    use swgraph::gen;

    fn weighted_graph(n: u64, seed: u64) -> (FlowNetwork, Vec<i64>) {
        let edges = gen::barabasi_albert(n, 3, seed);
        let net = FlowNetwork::from_undirected_unit(n, &edges);
        // Weights assigned per canonical pair, deterministic.
        let weights: Vec<i64> = (0..net.num_edge_pairs())
            .map(|p| 1 + (p as i64 * 131 + 7) % 9973)
            .collect();
        (net, weights)
    }

    fn oracle(net: &FlowNetwork, weights: &[i64]) -> SpanningForest {
        let edges: Vec<WeightedEdge> = (0..net.num_edge_pairs())
            .map(|p| {
                let e = swgraph::EdgeId::new(2 * p as u64);
                (net.tail(e).raw(), net.head(e).raw(), weights[p])
            })
            .collect();
        swgraph::mst::kruskal(net.num_vertices() as u64, &edges)
    }

    #[test]
    fn mst_value_round_trip() {
        let v = MstValue {
            component: 3,
            edges: vec![(1, -5, 9), (2, 7, 2)],
        };
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut s = buf.as_slice();
        assert_eq!(MstValue::decode(&mut s).unwrap(), v);
    }

    #[test]
    fn matches_kruskal_exactly_on_small_world() {
        let (net, weights) = weighted_graph(200, 5);
        let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
        let run = run_mst(&mut rt, &net, &weights, "mst", 3).unwrap();
        let expected = oracle(&net, &weights);
        assert_eq!(run.forest, expected, "tie-broken Boruvka == Kruskal");
        assert!(
            run.phases as u64 <= 64 - 200u64.leading_zeros() as u64 + 3,
            "O(log V) phases, got {}",
            run.phases
        );
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let net = FlowNetwork::from_undirected_unit(6, &[(0, 1), (1, 2), (3, 4)]);
        let weights = vec![5, 2, 9];
        let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
        let run = run_mst(&mut rt, &net, &weights, "mst", 2).unwrap();
        assert_eq!(run.forest.edges.len(), 3);
        assert_eq!(run.forest.total_weight, 16);
    }

    #[test]
    fn weight_count_mismatch_rejected() {
        let net = FlowNetwork::from_undirected_unit(3, &[(0, 1), (1, 2)]);
        let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
        assert!(matches!(
            run_mst(&mut rt, &net, &[1], "mst", 2),
            Err(FfError::InvalidConfig(_))
        ));
    }

    #[test]
    fn several_random_graphs_match_kruskal() {
        for seed in 0..4 {
            let n = 80;
            let edges = gen::erdos_renyi(n, 240, seed);
            let net = FlowNetwork::from_undirected_unit(n, &edges);
            let weights: Vec<i64> = (0..net.num_edge_pairs())
                .map(|p| ((p as i64 * 37 + seed as i64) % 500) - 100) // incl. negatives
                .collect();
            let mut rt = MrRuntime::new(ClusterConfig::small_cluster(2));
            let run = run_mst(&mut rt, &net, &weights, "mst", 2).unwrap();
            let expected = oracle(&net, &weights);
            assert_eq!(run.forest, expected, "seed {seed}");
        }
    }
}
