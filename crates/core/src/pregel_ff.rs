//! FFMR on Pregel — the translation the paper's conclusion predicts:
//! *"We believe the ideas presented in this paper also translate to
//! Pregel."*
//!
//! The mapping is direct: one MR round becomes one superstep; excess-path
//! fragments become messages; the `AugmentedEdges` side file becomes the
//! master's broadcast; `aug_proc` becomes the aggregator + master compute
//! (candidate paths are *contributions*, acceptance happens in
//! [`pregel::VertexProgram::master`]); the `source move`/`sink move`
//! counters become aggregated contributions driving the master's halt
//! decision. Schimmy and FF5's re-send suppression are unnecessary:
//! Pregel keeps vertex state resident between supersteps, which is
//! exactly the inefficiency those MR optimizations existed to paper over
//! — reproducing *why* the paper expected the ideas to transfer well.

use ffmr_sync::Mutex;
use pregel::{ComputeContext, Engine, Graph, MasterDecision, VertexProgram};
use swgraph::{Capacity, FlowNetwork, VertexId};

use crate::accumulator::Accumulator;
use crate::augmented::AugmentedEdges;
use crate::error::FfError;
use crate::path::ExcessPath;
use crate::vertex::VertexEdge;

/// Per-vertex state: the same ⟨Su, Tu, Eu⟩ as the MR version, resident
/// in the engine instead of round-tripping through a DFS.
#[derive(Debug, Clone, Default)]
pub struct PfState {
    /// Source excess paths.
    pub source_paths: Vec<ExcessPath>,
    /// Sink excess paths.
    pub sink_paths: Vec<ExcessPath>,
    /// Residual adjacency.
    pub edges: Vec<VertexEdge>,
}

/// Path-extension messages.
#[derive(Debug, Clone)]
pub enum PfMessage {
    /// A source excess path extended to the receiver.
    Source(ExcessPath),
    /// A sink excess path extended to the receiver.
    Sink(ExcessPath),
}

/// Aggregated per-superstep observations (Pregel aggregator payload).
#[derive(Debug, Default)]
pub struct PfAgg {
    /// Augmenting-path candidates found this superstep.
    pub candidates: Vec<ExcessPath>,
    /// Vertices that newly gained a source path.
    pub source_moves: u64,
    /// Vertices that newly gained a sink path.
    pub sink_moves: u64,
}

#[derive(Debug, Default)]
struct MasterState {
    total_value: Capacity,
    accepted_paths: u64,
    supersteps_with_flow: usize,
}

/// The FFMR vertex program.
#[derive(Debug)]
pub struct FfProgram {
    source: u64,
    sink: u64,
    k: usize,
    master_state: Mutex<MasterState>,
}

impl FfProgram {
    /// A program for the given terminals with excess-path limit `k`
    /// (`usize::MAX` ≈ the FF5 in-degree policy: storage never rejects
    /// for lack of space).
    #[must_use]
    pub fn new(source: VertexId, sink: VertexId, k: usize) -> Self {
        Self {
            source: source.raw(),
            sink: sink.raw(),
            k,
            master_state: Mutex::new(MasterState::default()),
        }
    }

    /// Max-flow value accepted so far.
    #[must_use]
    pub fn max_flow_value(&self) -> Capacity {
        self.master_state.lock().total_value
    }

    /// Augmenting paths accepted so far.
    #[must_use]
    pub fn accepted_paths(&self) -> u64 {
        self.master_state.lock().accepted_paths
    }
}

impl VertexProgram for FfProgram {
    type State = PfState;
    type Edge = ();
    type Message = PfMessage;
    type Contribution = PfAgg;
    type Broadcast = AugmentedEdges;

    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, Self>,
        state: &mut PfState,
        inbox: &[PfMessage],
    ) {
        let u = ctx.vertex_id();
        let is_source = u == self.source;
        let is_sink = u == self.sink;

        // (a) Fold in the deltas the master accepted last superstep.
        let deltas = ctx.broadcast();
        if !deltas.is_empty() {
            for e in &mut state.edges {
                e.flow += deltas.flow_change(e.eid);
            }
            state.source_paths.retain_mut(|p| p.refresh(deltas));
            state.sink_paths.retain_mut(|p| p.refresh(deltas));
        }
        // Resident state makes FF5's re-send suppression free: forget
        // markers whose remembered path died or whose edge saturated.
        {
            let live_src: Vec<u64> = state
                .source_paths
                .iter()
                .map(ExcessPath::route_hash)
                .collect();
            let live_snk: Vec<u64> = state
                .sink_paths
                .iter()
                .map(ExcessPath::route_hash)
                .collect();
            for e in &mut state.edges {
                if e.residual() <= 0 || e.sent_source.is_some_and(|h| !live_src.contains(&h)) {
                    e.sent_source = None;
                }
                if e.rev_residual() <= 0 || e.sent_sink.is_some_and(|h| !live_snk.contains(&h)) {
                    e.sent_sink = None;
                }
            }
        }

        let had_source = !state.source_paths.is_empty();
        let had_sink = !state.sink_paths.is_empty();

        // (b) Merge arriving extensions under the k-limited accumulator;
        // at the terminals, arrivals complete augmenting paths instead.
        let mut agg = PfAgg::default();
        {
            let mut acc_s = Accumulator::new();
            for p in &state.source_paths {
                let _ = acc_s.try_accept(p);
            }
            let mut acc_t = Accumulator::new();
            for p in &state.sink_paths {
                let _ = acc_t.try_accept(p);
            }
            // Unlike MR (where extensions arrive within the same round),
            // Pregel messages were composed BEFORE this superstep's
            // broadcast deltas existed — refresh them first, or stale
            // copies of just-augmented paths would be re-accepted.
            for msg in inbox {
                match msg {
                    PfMessage::Source(p) => {
                        let mut p = p.clone();
                        if !p.refresh(deltas) {
                            continue;
                        }
                        if is_sink {
                            agg.candidates.push(p);
                        } else if state.source_paths.len() < self.k
                            && acc_s.try_accept(&p).is_some()
                        {
                            state.source_paths.push(p);
                        }
                    }
                    PfMessage::Sink(p) => {
                        let mut p = p.clone();
                        if !p.refresh(deltas) {
                            continue;
                        }
                        if is_source {
                            agg.candidates.push(p);
                        } else if state.sink_paths.len() < self.k && acc_t.try_accept(&p).is_some()
                        {
                            state.sink_paths.push(p);
                        }
                    }
                }
            }
        }
        if !had_source && !state.source_paths.is_empty() {
            agg.source_moves = 1;
        }
        if !had_sink && !state.sink_paths.is_empty() {
            agg.sink_moves = 1;
        }

        // (c) Candidates from freshly met source x sink pairs.
        if !is_source && !is_sink {
            let mut acc = Accumulator::new();
            for se in &state.source_paths {
                for te in &state.sink_paths {
                    let cand = ExcessPath::concat(se, te);
                    if !cand.is_empty() && acc.try_accept(&cand).is_some() {
                        agg.candidates.push(cand);
                    }
                }
            }
        }

        // (d) Speculatively extend one path per direction per edge,
        // remembering what was sent so live extensions are never re-sent.
        for i in 0..state.edges.len() {
            let e = state.edges[i];
            if e.residual() > 0 && e.sent_source.is_none() {
                if let Some(se) = state
                    .source_paths
                    .iter()
                    .find(|p| !p.is_saturated() && !p.contains_vertex(e.to))
                {
                    ctx.send(e.to, PfMessage::Source(se.extended(e.forward_hop(u))));
                    state.edges[i].sent_source = Some(se.route_hash());
                }
            }
            let e = state.edges[i];
            if e.rev_residual() > 0 && e.sent_sink.is_none() {
                if let Some(te) = state
                    .sink_paths
                    .iter()
                    .find(|p| !p.is_saturated() && !p.contains_vertex(e.to))
                {
                    ctx.send(e.to, PfMessage::Sink(te.prepended(e.backward_hop(u))));
                    state.edges[i].sent_sink = Some(te.route_hash());
                }
            }
        }

        ctx.contribute(agg);
        // Never vote to halt: the master owns termination, mirroring the
        // MR driver's movement-counter loop.
    }

    fn fold(&self, mut a: PfAgg, mut b: PfAgg) -> PfAgg {
        a.candidates.append(&mut b.candidates);
        a.source_moves += b.source_moves;
        a.sink_moves += b.sink_moves;
        a
    }

    fn master(&self, folded: PfAgg, superstep: usize) -> MasterDecision<Self> {
        // The aggregator IS aug_proc: accept conflict-free candidates.
        let mut acc = Accumulator::new();
        let mut deltas = AugmentedEdges::new(superstep + 1);
        let mut accepted = 0u64;
        let mut value: Capacity = 0;
        for cand in &folded.candidates {
            if let Some(delta) = acc.try_accept(cand) {
                for hop in cand.edges() {
                    deltas.add(hop.eid, delta);
                }
                accepted += 1;
                value += delta;
            }
        }
        {
            let mut ms = self.master_state.lock();
            ms.total_value += value;
            ms.accepted_paths += accepted;
            if accepted > 0 {
                ms.supersteps_with_flow += 1;
            }
        }
        let moved = folded.source_moves > 0 && folded.sink_moves > 0;
        if superstep > 0 && accepted == 0 && !moved {
            MasterDecision::halt()
        } else {
            MasterDecision::continue_with(deltas)
        }
    }
}

/// The result of a Pregel FFMR run.
#[derive(Debug, Clone)]
pub struct PregelFfRun {
    /// Computed max-flow value.
    pub max_flow_value: Capacity,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Total messages exchanged.
    pub total_messages: usize,
    /// Augmenting paths accepted.
    pub accepted_paths: u64,
    /// Engine statistics.
    pub stats: pregel::RunStats,
}

/// Builds the Pregel graph for `net` and runs FFMR on it.
///
/// # Errors
/// Propagates engine failures (superstep limit) as
/// [`FfError::RoundLimitExceeded`].
pub fn run_max_flow_pregel(
    net: &FlowNetwork,
    source: VertexId,
    sink: VertexId,
    max_supersteps: usize,
) -> Result<PregelFfRun, FfError> {
    if source == sink || source.index() >= net.num_vertices() || sink.index() >= net.num_vertices()
    {
        return Err(FfError::InvalidConfig("bad pregel terminals".into()));
    }
    let mut graph: Graph<PfState, ()> = Graph::new();
    for v in 0..net.num_vertices() as u64 {
        let vid = VertexId::new(v);
        let mut edges: Vec<VertexEdge> = Vec::new();
        for e in net.out_edges(vid) {
            // One entry per incident pair, in the outgoing direction.
            edges.push(VertexEdge {
                to: net.head(e).raw(),
                eid: e,
                flow: 0,
                cap: net.capacity(e),
                rev_cap: net.capacity(e.reverse()),
                sent_source: None,
                sent_sink: None,
            });
        }
        edges.sort_by_key(|e| (e.to, e.eid));
        edges.dedup_by_key(|e| e.eid);
        let mut state = PfState {
            edges,
            ..PfState::default()
        };
        if vid == source {
            state.source_paths.push(ExcessPath::empty());
        }
        if vid == sink {
            state.sink_paths.push(ExcessPath::empty());
        }
        graph.add_vertex(v, state, Vec::new());
    }

    let program = FfProgram::new(source, sink, usize::MAX);
    let engine = Engine::new(program);
    let mut span = ffmr_obs::span("pregel.run");
    let stats =
        engine
            .run(&mut graph, max_supersteps)
            .map_err(|_| FfError::RoundLimitExceeded {
                limit: max_supersteps,
            })?;
    span.field("supersteps", stats.supersteps);
    drop(span);
    let m = ffmr_obs::global();
    m.counter("ffmr_pregel_runs_total", &[]).inc();
    m.counter("ffmr_pregel_supersteps_total", &[])
        .add(stats.supersteps as u64);
    m.counter("ffmr_pregel_messages_total", &[])
        .add(stats.total_messages as u64);
    Ok(PregelFfRun {
        max_flow_value: engine.program().max_flow_value(),
        supersteps: stats.supersteps,
        total_messages: stats.total_messages,
        accepted_paths: engine.program().accepted_paths(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgraph::gen;

    #[test]
    fn path_graph() {
        let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (1, 2), (2, 3)]);
        let run = run_max_flow_pregel(&net, VertexId::new(0), VertexId::new(3), 100).unwrap();
        assert_eq!(run.max_flow_value, 1);
        assert!(run.supersteps <= 8);
    }

    #[test]
    fn matches_oracle_on_small_world() {
        let n = 200;
        let net = FlowNetwork::from_undirected_unit(n, &gen::barabasi_albert(n, 3, 5));
        let (s, t) = (VertexId::new(0), VertexId::new(n - 1));
        let run = run_max_flow_pregel(&net, s, t, 200).unwrap();
        let oracle = maxflow::dinic::max_flow(&net, s, t);
        assert_eq!(run.max_flow_value, oracle.value);
    }

    #[test]
    fn matches_oracle_on_random_directed() {
        for seed in 0..5 {
            let n = 40;
            let edges = gen::erdos_renyi(n, 100, seed);
            let net = FlowNetwork::from_undirected_unit(n, &edges);
            let (s, t) = (VertexId::new(0), VertexId::new(n - 1));
            let run = run_max_flow_pregel(&net, s, t, 500).unwrap();
            let oracle = maxflow::dinic::max_flow(&net, s, t);
            assert_eq!(run.max_flow_value, oracle.value, "seed {seed}");
        }
    }

    #[test]
    fn supersteps_track_mr_rounds() {
        // The paper's translation claim, quantified: Pregel supersteps on
        // the same workload land in the same band as MR rounds.
        let n = 300;
        let net = FlowNetwork::from_undirected_unit(n, &gen::barabasi_albert(n, 3, 9));
        let st = swgraph::super_st::attach_super_terminals(&net, 4, 3, 2).unwrap();
        let run = run_max_flow_pregel(&st.network, st.source, st.sink, 200).unwrap();

        let mut rt = mapreduce::MrRuntime::new(mapreduce::ClusterConfig::small_cluster(2));
        let config = crate::FfConfig::new(st.source, st.sink).variant(crate::FfVariant::ff2());
        let mr = crate::run_max_flow(&mut rt, &st.network, &config).unwrap();

        assert_eq!(run.max_flow_value, mr.max_flow_value);
        assert!(
            run.supersteps <= 2 * mr.num_flow_rounds() + 4,
            "supersteps ({}) should track MR rounds ({})",
            run.supersteps,
            mr.num_flow_rounds()
        );
    }

    #[test]
    fn rejects_bad_terminals() {
        let net = FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
        assert!(run_max_flow_pregel(&net, VertexId::new(0), VertexId::new(0), 10).is_err());
        assert!(run_max_flow_pregel(&net, VertexId::new(0), VertexId::new(9), 10).is_err());
    }

    #[test]
    fn disconnected_is_zero() {
        let net = FlowNetwork::from_undirected_unit(4, &[(0, 1), (2, 3)]);
        let run = run_max_flow_pregel(&net, VertexId::new(0), VertexId::new(3), 100).unwrap();
        assert_eq!(run.max_flow_value, 0);
    }
}
