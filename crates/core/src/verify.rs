//! Extraction and audit of the flow function computed by FFMR.
//!
//! A real deployment only needs the max-flow *value* (and the final
//! records stay in the DFS), but tests and the min-cut applications want
//! the full flow function — and want to audit it against the network.

use std::collections::HashMap;

use mapreduce::{Dfs, MrError};
use swgraph::{Capacity, EdgeId, FlowNetwork, VertexId};

use crate::augmented::AugmentedEdges;
use crate::vertex::VertexValue;

/// A flow function reassembled from the final round's vertex records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedFlow {
    /// Flow per directed edge slot, indexed by [`EdgeId`].
    pub flows: Vec<Capacity>,
}

impl ExtractedFlow {
    /// Net outflow at `s` — the flow value when `s` is the source.
    #[must_use]
    pub fn value_from(&self, net: &FlowNetwork, s: VertexId) -> Capacity {
        if s.index() >= net.num_vertices() {
            return 0;
        }
        net.out_edges(s).map(|e| self.flows[e.index()]).sum()
    }
}

/// Reads the final vertex records at `path`, folds in `pending` deltas
/// (the last round's acceptances no mapper applied), and reassembles the
/// flow function over `net`.
///
/// # Errors
/// Fails if the records are missing/corrupt, reference unknown edges, or
/// the two endpoints of any edge disagree about its flow (which would
/// mean the residual views diverged — a bug this audit exists to catch).
pub fn extract_flow(
    dfs: &Dfs,
    path: &str,
    pending: &AugmentedEdges,
    net: &FlowNetwork,
) -> Result<ExtractedFlow, MrError> {
    let records: Vec<(u64, VertexValue)> = dfs.read_records(path)?;
    let m = net.num_directed_edges();
    let mut flows: Vec<Option<Capacity>> = vec![None; m];
    for (_, mut value) in records {
        value.apply_deltas(pending);
        for e in &value.edges {
            if e.eid.index() >= m {
                return Err(MrError::InvalidJob(format!(
                    "record references unknown edge {}",
                    e.eid
                )));
            }
            match flows[e.eid.index()] {
                None => flows[e.eid.index()] = Some(e.flow),
                Some(prev) if prev == e.flow => {}
                Some(prev) => {
                    return Err(MrError::InvalidJob(format!(
                        "inconsistent flow on {}: {} vs {}",
                        e.eid, prev, e.flow
                    )));
                }
            }
        }
    }
    // Cross-check skew symmetry between the two endpoints' copies.
    let flows: Vec<Capacity> = flows.into_iter().map(Option::unwrap_or_default).collect();
    for pair in 0..m / 2 {
        let e = EdgeId::new(2 * pair as u64);
        if flows[e.index()] != -flows[e.reverse().index()] {
            return Err(MrError::InvalidJob(format!(
                "skew symmetry broken on {e}: {} vs {}",
                flows[e.index()],
                flows[e.reverse().index()]
            )));
        }
    }
    Ok(ExtractedFlow { flows })
}

/// Checks whether the residual network implied by `flow` still has an
/// augmenting `s -> t` path (BFS). A maximal flow must return `false`.
#[must_use]
pub fn has_augmenting_path(
    net: &FlowNetwork,
    flow: &ExtractedFlow,
    s: VertexId,
    t: VertexId,
) -> bool {
    let n = net.num_vertices();
    if s.index() >= n || t.index() >= n {
        return false;
    }
    let mut visited = vec![false; n];
    visited[s.index()] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        for e in net.out_edges(u) {
            let v = net.head(e);
            if !visited[v.index()] && net.capacity(e) - flow.flows[e.index()] > 0 {
                if v == t {
                    return true;
                }
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    false
}

/// Summarizes excess-path storage across the final records — useful for
/// asserting the space behaviour of the k-policies.
#[must_use]
pub fn storage_histogram(dfs: &Dfs, path: &str) -> HashMap<u64, (usize, usize)> {
    let mut out = HashMap::new();
    if let Ok(records) = dfs.read_records::<u64, VertexValue>(path) {
        for (u, v) in records {
            out.insert(u, (v.source_paths.len(), v.sink_paths.len()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{ExcessPath, PathEdge};
    use crate::vertex::VertexEdge;

    fn edge_copy(to: u64, eid: u64, flow: i64) -> VertexEdge {
        VertexEdge {
            to,
            eid: EdgeId::new(eid),
            flow,
            cap: 1,
            rev_cap: 1,
            sent_source: None,
            sent_sink: None,
        }
    }

    fn write_records(dfs: &mut Dfs, path: &str, records: Vec<(u64, VertexValue)>) {
        dfs.write_records(path, 2, records).unwrap();
    }

    #[test]
    fn extracts_consistent_flows() {
        let net = FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
        let mut dfs = Dfs::new();
        write_records(
            &mut dfs,
            "final",
            vec![
                (
                    0,
                    VertexValue {
                        edges: vec![edge_copy(1, 0, 1)],
                        ..VertexValue::default()
                    },
                ),
                (
                    1,
                    VertexValue {
                        edges: vec![edge_copy(0, 1, -1)],
                        ..VertexValue::default()
                    },
                ),
            ],
        );
        let f = extract_flow(&dfs, "final", &AugmentedEdges::new(0), &net).unwrap();
        assert_eq!(f.flows, vec![1, -1]);
        assert_eq!(f.value_from(&net, VertexId::new(0)), 1);
        assert!(!has_augmenting_path(
            &net,
            &f,
            VertexId::new(0),
            VertexId::new(1)
        ));
    }

    #[test]
    fn pending_deltas_are_folded_in() {
        let net = FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
        let mut dfs = Dfs::new();
        write_records(
            &mut dfs,
            "final",
            vec![
                (
                    0,
                    VertexValue {
                        edges: vec![edge_copy(1, 0, 0)],
                        ..VertexValue::default()
                    },
                ),
                (
                    1,
                    VertexValue {
                        edges: vec![edge_copy(0, 1, 0)],
                        ..VertexValue::default()
                    },
                ),
            ],
        );
        let mut pending = AugmentedEdges::new(9);
        pending.add(EdgeId::new(0), 1);
        let f = extract_flow(&dfs, "final", &pending, &net).unwrap();
        assert_eq!(f.flows, vec![1, -1]);
    }

    #[test]
    fn detects_inconsistent_copies() {
        let net = FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
        let mut dfs = Dfs::new();
        write_records(
            &mut dfs,
            "final",
            vec![
                (
                    0,
                    VertexValue {
                        edges: vec![edge_copy(1, 0, 1)],
                        ..VertexValue::default()
                    },
                ),
                (
                    1,
                    VertexValue {
                        edges: vec![edge_copy(0, 1, 0)], // should be -1
                        ..VertexValue::default()
                    },
                ),
            ],
        );
        assert!(extract_flow(&dfs, "final", &AugmentedEdges::new(0), &net).is_err());
    }

    #[test]
    fn detects_unknown_edges() {
        let net = FlowNetwork::from_undirected_unit(2, &[(0, 1)]);
        let mut dfs = Dfs::new();
        write_records(
            &mut dfs,
            "final",
            vec![(
                0,
                VertexValue {
                    edges: vec![edge_copy(1, 99, 0)],
                    ..VertexValue::default()
                },
            )],
        );
        assert!(extract_flow(&dfs, "final", &AugmentedEdges::new(0), &net).is_err());
    }

    #[test]
    fn augmenting_path_detected_on_zero_flow() {
        let net = FlowNetwork::from_undirected_unit(3, &[(0, 1), (1, 2)]);
        let f = ExtractedFlow {
            flows: vec![0; net.num_directed_edges()],
        };
        assert!(has_augmenting_path(
            &net,
            &f,
            VertexId::new(0),
            VertexId::new(2)
        ));
    }

    #[test]
    fn storage_histogram_reads_paths() {
        let mut dfs = Dfs::new();
        write_records(
            &mut dfs,
            "final",
            vec![(
                3,
                VertexValue {
                    source_paths: vec![ExcessPath::from_edges(vec![PathEdge {
                        eid: EdgeId::new(0),
                        from: 0,
                        to: 3,
                        cap: 1,
                        flow: 0,
                    }])],
                    sink_paths: Vec::new(),
                    edges: vec![edge_copy(0, 1, 0)],
                },
            )],
        );
        let hist = storage_histogram(&dfs, "final");
        assert_eq!(hist.get(&3), Some(&(1, 0)));
        assert!(storage_histogram(&dfs, "missing").is_empty());
    }
}
