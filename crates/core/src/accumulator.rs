//! The accumulator (paper Sec. III-C): greedy, first-come-first-served
//! acceptance of conflict-free excess/augmenting paths.
//!
//! Two paths *conflict* when accepting both would push some directed
//! edge's flow past its capacity. The accumulator tracks tentatively
//! granted flow per edge and accepts a path iff it still has positive
//! residual after all prior grants.

use std::collections::HashMap;

use swgraph::{Capacity, EdgeId};

use crate::path::ExcessPath;

/// Tracks tentative flow grants and accepts conflict-free paths greedily.
///
/// # Example
/// ```
/// use ffmr_core::{Accumulator, ExcessPath, PathEdge};
/// use swgraph::EdgeId;
///
/// let hop = PathEdge { eid: EdgeId::new(0), from: 0, to: 1, cap: 1, flow: 0 };
/// let path = ExcessPath::from_edges(vec![hop]);
/// let mut acc = Accumulator::new();
/// assert_eq!(acc.try_accept(&path), Some(1));
/// assert_eq!(acc.try_accept(&path), None, "the unit edge is now spoken for");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    granted: HashMap<EdgeId, Capacity>,
    accepted: usize,
}

impl Accumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bottleneck capacity `path` could still carry after earlier grants
    /// (without accepting it).
    #[must_use]
    pub fn available(&self, path: &ExcessPath) -> Capacity {
        path.edges()
            .iter()
            .map(|hop| hop.residual() - self.granted.get(&hop.eid).copied().unwrap_or(0))
            .min()
            .unwrap_or(Capacity::MAX)
    }

    /// Accepts `path` if it is conflict-free, granting and returning its
    /// bottleneck `delta`; `None` if any hop is exhausted.
    ///
    /// Empty paths are accepted with an unbounded delta (they constrain
    /// nothing) — callers that treat the result as a flow amount should
    /// only pass non-empty paths.
    pub fn try_accept(&mut self, path: &ExcessPath) -> Option<Capacity> {
        let delta = self.available(path);
        if delta <= 0 {
            return None;
        }
        if !path.edges().is_empty() && delta < Capacity::MAX {
            for hop in path.edges() {
                *self.granted.entry(hop.eid).or_insert(0) += delta;
            }
        }
        self.accepted += 1;
        Some(delta)
    }

    /// Number of paths accepted so far.
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Clears all grants (reused between rounds).
    pub fn reset(&mut self) {
        self.granted.clear();
        self.accepted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathEdge;

    /// Builds a connected path whose hop `i` runs from vertex `i` to
    /// `i + 1` (vertices are irrelevant to the accumulator).
    fn path(hops: &[(u64, i64, i64)]) -> ExcessPath {
        ExcessPath::from_edges(
            hops.iter()
                .enumerate()
                .map(|(i, &(eid, cap, flow))| PathEdge {
                    eid: EdgeId::new(eid),
                    from: i as u64,
                    to: i as u64 + 1,
                    cap,
                    flow,
                })
                .collect(),
        )
    }

    #[test]
    fn grants_bottleneck_and_blocks_conflicts() {
        let mut acc = Accumulator::new();
        let p1 = path(&[(0, 3, 0), (2, 2, 0)]);
        assert_eq!(acc.try_accept(&p1), Some(2));
        // A second pass over edge 0 has 1 unit left; edge 2 has none.
        let p2 = path(&[(0, 3, 0)]);
        assert_eq!(acc.try_accept(&p2), Some(1));
        let p3 = path(&[(2, 2, 0)]);
        assert_eq!(acc.try_accept(&p3), None);
        assert_eq!(acc.accepted(), 2);
    }

    #[test]
    fn saturated_paths_are_rejected_outright() {
        let mut acc = Accumulator::new();
        let p = path(&[(0, 1, 1)]);
        assert_eq!(acc.try_accept(&p), None);
        assert_eq!(acc.accepted(), 0);
    }

    #[test]
    fn disjoint_paths_all_accepted() {
        let mut acc = Accumulator::new();
        for i in 0..10 {
            let p = path(&[(i * 2, 1, 0)]);
            assert_eq!(acc.try_accept(&p), Some(1));
        }
        assert_eq!(acc.accepted(), 10);
    }

    #[test]
    fn opposite_directions_do_not_conflict() {
        // Traversing e and e.reverse() are tracked independently (both
        // feasible: the flows cancel).
        let mut acc = Accumulator::new();
        let fwd = path(&[(4, 1, 0)]);
        let bwd = path(&[(5, 1, 0)]);
        assert!(acc.try_accept(&fwd).is_some());
        assert!(acc.try_accept(&bwd).is_some());
    }

    #[test]
    fn reset_clears_grants() {
        let mut acc = Accumulator::new();
        let p = path(&[(0, 1, 0)]);
        assert!(acc.try_accept(&p).is_some());
        assert!(acc.try_accept(&p).is_none());
        acc.reset();
        assert!(acc.try_accept(&p).is_some());
        assert_eq!(acc.accepted(), 1);
    }

    #[test]
    fn empty_path_is_accepted_without_grants() {
        let mut acc = Accumulator::new();
        assert_eq!(acc.try_accept(&ExcessPath::empty()), Some(i64::MAX));
    }
}
